//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes plain data to JSON (bench tables,
//! reports), so this shim replaces serde's data model with one trait:
//! [`Serialize::json_emit`], writing through a [`JsonEmitter`] that
//! handles separators and pretty-printing. `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` come from the sibling `serde_derive` shim
//! (Deserialize expands to nothing — nothing in the workspace reads JSON
//! back).

// Let the derive macro's `::serde::...` paths resolve inside this crate's
// own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Incremental JSON writer: tracks nesting and element counts so that
/// commas, newlines and indentation land in the right places.
#[derive(Debug)]
pub struct JsonEmitter {
    out: String,
    pretty: bool,
    counts: Vec<usize>,
}

impl JsonEmitter {
    /// Creates an emitter; `pretty` enables two-space indentation.
    pub fn new(pretty: bool) -> JsonEmitter {
        JsonEmitter {
            out: String::new(),
            pretty,
            counts: Vec::new(),
        }
    }

    /// Consumes the emitter, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.counts.len() {
                self.out.push_str("  ");
            }
        }
    }

    fn separate(&mut self) {
        if let Some(c) = self.counts.last_mut() {
            if *c > 0 {
                self.out.push(',');
            }
            *c += 1;
            self.newline_indent();
        }
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.counts.push(0);
    }

    /// Closes a JSON object.
    pub fn end_object(&mut self) {
        let n = self.counts.pop().expect("unbalanced end_object");
        if n > 0 {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.counts.push(0);
    }

    /// Closes a JSON array.
    pub fn end_array(&mut self) {
        let n = self.counts.pop().expect("unbalanced end_array");
        if n > 0 {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Starts the next array element (handles the comma).
    pub fn elem(&mut self) {
        self.separate();
    }

    /// Writes an object key (handles the comma) and the `: ` separator.
    pub fn key(&mut self, name: &str) {
        self.separate();
        self.string(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Writes an escaped JSON string value.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Writes a raw (already JSON-valid) token such as a number.
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }
}

/// Types that can write themselves as JSON. The derive macro generates
/// implementations for plain structs and enums.
pub trait Serialize {
    /// Writes `self` as a JSON value.
    fn json_emit(&self, e: &mut JsonEmitter);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_emit(&self, e: &mut JsonEmitter) {
        (**self).json_emit(e);
    }
}

impl Serialize for bool {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.raw(if *self { "true" } else { "false" });
    }
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_emit(&self, e: &mut JsonEmitter) {
                e.raw(&self.to_string());
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_emit(&self, e: &mut JsonEmitter) {
                if self.is_finite() {
                    let mut s = format!("{self}");
                    // JSON has no float/int distinction, but keep floats
                    // recognizably floating-point, like serde_json does
                    // not — this is for human readers of bench files.
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                        s.push_str(".0");
                    }
                    e.raw(&s);
                } else {
                    // serde_json writes null for non-finite floats.
                    e.raw("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for str {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.string(self);
    }
}

impl Serialize for String {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.string(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_emit(&self, e: &mut JsonEmitter) {
        match self {
            Some(v) => v.json_emit(e),
            None => e.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.begin_array();
        for v in self {
            e.elem();
            v.json_emit(e);
        }
        e.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_emit(&self, e: &mut JsonEmitter) {
        self.as_slice().json_emit(e);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_emit(&self, e: &mut JsonEmitter) {
        self.as_slice().json_emit(e);
    }
}

impl Serialize for std::time::Duration {
    fn json_emit(&self, e: &mut JsonEmitter) {
        // Matches serde's {secs, nanos} encoding of Duration.
        e.begin_object();
        e.key("secs");
        self.as_secs().json_emit(e);
        e.key("nanos");
        self.subsec_nanos().json_emit(e);
        e.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Serialize)]
    enum Kind {
        Plain,
        Weighted { w: f64 },
        Pair(u32, u32),
    }

    #[derive(Serialize)]
    struct Id(u32);

    fn compact<T: Serialize>(v: &T) -> String {
        let mut e = JsonEmitter::new(false);
        v.json_emit(&mut e);
        e.finish()
    }

    #[test]
    fn named_struct() {
        let p = Point {
            x: 1.5,
            y: -2.0,
            label: "a\"b".into(),
        };
        assert_eq!(compact(&p), r#"{"x":1.5,"y":-2.0,"label":"a\"b"}"#);
    }

    #[test]
    fn enums() {
        assert_eq!(compact(&Kind::Plain), r#""Plain""#);
        assert_eq!(
            compact(&Kind::Weighted { w: 0.5 }),
            r#"{"Weighted":{"w":0.5}}"#
        );
        assert_eq!(compact(&Kind::Pair(1, 2)), r#"{"Pair":[1,2]}"#);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(compact(&Id(7)), "7");
    }

    #[test]
    fn vec_and_option() {
        assert_eq!(compact(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(compact(&Option::<u32>::None), "null");
        assert_eq!(compact(&Some(4u32)), "4");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(compact(&f64::NAN), "null");
        assert_eq!(compact(&f64::INFINITY), "null");
    }

    #[test]
    fn pretty_indents() {
        let p = Point {
            x: 0.0,
            y: 0.0,
            label: "l".into(),
        };
        let mut e = JsonEmitter::new(true);
        p.json_emit(&mut e);
        let s = e.finish();
        assert!(s.contains("\n  \"x\": 0.0"), "{s}");
    }
}
