//! Offline stand-in for `serde`.
//!
//! The shim replaces serde's data model with two traits over a concrete
//! JSON tree: [`Serialize::json_emit`], writing through a [`JsonEmitter`]
//! that handles separators and pretty-printing, and
//! [`Deserialize::from_json`], reading back from a parsed [`JsonValue`].
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` come from the
//! sibling `serde_derive` shim and generate mirror-image encodings, so a
//! derived type round-trips: unit enum variants are strings, data
//! variants are single-key objects, newtype structs are transparent.
//!
//! Numbers are kept as their source literal in [`JsonValue::Number`], so
//! 64/128-bit integers survive parsing exactly (a plain `f64` tree would
//! corrupt `u64` hashes and `u128` fingerprints). Non-finite floats
//! serialize as `null` (matching serde_json) and deserialize back as
//! `NaN`.

// Let the derive macro's `::serde::...` paths resolve inside this crate's
// own tests too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Incremental JSON writer: tracks nesting and element counts so that
/// commas, newlines and indentation land in the right places.
#[derive(Debug)]
pub struct JsonEmitter {
    out: String,
    pretty: bool,
    counts: Vec<usize>,
}

impl JsonEmitter {
    /// Creates an emitter; `pretty` enables two-space indentation.
    pub fn new(pretty: bool) -> JsonEmitter {
        JsonEmitter {
            out: String::new(),
            pretty,
            counts: Vec::new(),
        }
    }

    /// Consumes the emitter, returning the JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.counts.len() {
                self.out.push_str("  ");
            }
        }
    }

    fn separate(&mut self) {
        if let Some(c) = self.counts.last_mut() {
            if *c > 0 {
                self.out.push(',');
            }
            *c += 1;
            self.newline_indent();
        }
    }

    /// Opens a JSON object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.counts.push(0);
    }

    /// Closes a JSON object.
    pub fn end_object(&mut self) {
        let n = self.counts.pop().expect("unbalanced end_object");
        if n > 0 {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a JSON array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.counts.push(0);
    }

    /// Closes a JSON array.
    pub fn end_array(&mut self) {
        let n = self.counts.pop().expect("unbalanced end_array");
        if n > 0 {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Starts the next array element (handles the comma).
    pub fn elem(&mut self) {
        self.separate();
    }

    /// Writes an object key (handles the comma) and the `: ` separator.
    pub fn key(&mut self, name: &str) {
        self.separate();
        self.string(name);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
    }

    /// Writes an escaped JSON string value.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Writes a raw (already JSON-valid) token such as a number.
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }
}

/// Types that can write themselves as JSON. The derive macro generates
/// implementations for plain structs and enums.
pub trait Serialize {
    /// Writes `self` as a JSON value.
    fn json_emit(&self, e: &mut JsonEmitter);
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_emit(&self, e: &mut JsonEmitter) {
        (**self).json_emit(e);
    }
}

impl Serialize for bool {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.raw(if *self { "true" } else { "false" });
    }
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_emit(&self, e: &mut JsonEmitter) {
                e.raw(&self.to_string());
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_emit(&self, e: &mut JsonEmitter) {
                if self.is_finite() {
                    let mut s = format!("{self}");
                    // JSON has no float/int distinction, but keep floats
                    // recognizably floating-point, like serde_json does
                    // not — this is for human readers of bench files.
                    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
                        s.push_str(".0");
                    }
                    e.raw(&s);
                } else {
                    // serde_json writes null for non-finite floats.
                    e.raw("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for str {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.string(self);
    }
}

impl Serialize for String {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.string(self);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_emit(&self, e: &mut JsonEmitter) {
        match self {
            Some(v) => v.json_emit(e),
            None => e.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_emit(&self, e: &mut JsonEmitter) {
        e.begin_array();
        for v in self {
            e.elem();
            v.json_emit(e);
        }
        e.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_emit(&self, e: &mut JsonEmitter) {
        self.as_slice().json_emit(e);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_emit(&self, e: &mut JsonEmitter) {
        self.as_slice().json_emit(e);
    }
}

impl Serialize for std::time::Duration {
    fn json_emit(&self, e: &mut JsonEmitter) {
        // Matches serde's {secs, nanos} encoding of Duration.
        e.begin_object();
        e.key("secs");
        self.as_secs().json_emit(e);
        e.key("nanos");
        self.subsec_nanos().json_emit(e);
        e.end_object();
    }
}

/// A parsed JSON document.
///
/// Objects preserve key order as a vector of pairs (duplicate keys keep
/// the first occurrence on lookup); numbers keep their literal text so
/// integer precision is never lost to an intermediate `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its literal text (e.g. `"-1.5e3"`).
    Number(String),
    /// A string (escapes already resolved).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<JsonValue, DeError> {
        let mut p = Parser {
            src: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value's JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Number(_) => "number",
            JsonValue::String(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message with field context
/// accumulated as it propagates out of nested structures.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: String) -> DeError {
        DeError { msg }
    }

    /// "expected X, found `<kind>`" constructor.
    pub fn expected(what: &str, found: &JsonValue) -> DeError {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }

    /// Wraps the error with the path component it occurred under.
    pub fn context(self, at: &str) -> DeError {
        DeError::new(format!("{at}: {}", self.msg))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

use std::fmt;

/// Nesting-depth cap for the recursive-descent parser: malformed frames
/// must be rejected, not crash the server with a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, DeError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(DeError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, DeError> {
        if depth > MAX_DEPTH {
            return Err(DeError::new("nesting too deep".to_string()));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(JsonValue::Array(items));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(JsonValue::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(JsonValue::Object(pairs));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(DeError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<JsonValue, DeError> {
        let start = self.pos;
        self.eat(b'-');
        let mut digits = 0;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(DeError::new(format!("invalid number at byte {start}")));
        }
        if self.eat(b'.') {
            let mut frac = 0;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(DeError::new(format!("invalid number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(DeError::new(format!("invalid number at byte {start}")));
            }
        }
        let lit = std::str::from_utf8(&self.src[start..self.pos])
            .expect("number literals are ASCII")
            .to_string();
        Ok(JsonValue::Number(lit))
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Find the next byte of interest; everything else is copied
            // verbatim (UTF-8 passes through untouched).
            let start = self.pos;
            while let Some(&b) = self.src.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| DeError::new("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(DeError::new(
                                        "unpaired surrogate in \\u escape".to_string(),
                                    ));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(DeError::new(
                                        "invalid low surrogate in \\u escape".to_string(),
                                    ));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| DeError::new("invalid \\u escape".to_string()))?,
                            );
                            continue;
                        }
                        _ => {
                            return Err(DeError::new(format!(
                                "invalid escape at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    return Err(DeError::new(format!(
                        "unterminated or invalid string at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| DeError::new(format!("invalid \\u escape at byte {}", self.pos)))?;
            v = v * 16 + b;
            self.pos += 1;
        }
        Ok(v)
    }
}

/// Types reconstructible from a parsed [`JsonValue`]. The derive macro
/// generates implementations mirroring the `Serialize` encoding.
pub trait Deserialize: Sized {
    /// Reads `Self` from a JSON value.
    fn from_json(v: &JsonValue) -> Result<Self, DeError>;

    /// Whether a *missing* struct field of this type is acceptable
    /// (deserializing from `null`). Only `Option` opts in — every other
    /// type must error on a missing key, even ones like floats that
    /// accept an explicit `null` *value* (non-finite round-trip).
    fn accepts_missing() -> bool {
        false
    }
}

/// Extracts and deserializes a struct field; a missing key is an error
/// unless the field type [`Deserialize::accepts_missing`] (`Option` ⇒
/// `None`). Used by the derive macro.
pub fn de_field<T: Deserialize>(v: &JsonValue, key: &str, ty: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(field) => T::from_json(field).map_err(|e| e.context(&format!("{ty}.{key}"))),
        None if T::accepts_missing() => T::from_json(&JsonValue::Null),
        None => Err(DeError::new(format!("{ty}: missing field `{key}`"))),
    }
}

impl Deserialize for bool {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! int_deserialize {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                let JsonValue::Number(lit) = v else {
                    return Err(DeError::expected(stringify!($t), v));
                };
                // Exact integer literal first; tolerate float-formatted
                // integrals ("3.0", "1e3") from hand-written clients.
                // The bound is `MAX + 1` (exact as f64: a power of two),
                // not `MAX as f64` — the latter rounds *up* to MAX + 1
                // for 64/128-bit types, which would let an out-of-range
                // literal saturate silently instead of erroring.
                lit.parse::<$t>().ok().or_else(|| {
                    lit.parse::<f64>().ok().and_then(|f| {
                        (f.fract() == 0.0
                            && f >= <$t>::MIN as f64
                            && f < (<$t>::MAX as f64 + 1.0))
                            .then_some(f as $t)
                    })
                }).ok_or_else(|| {
                    DeError::new(format!(
                        "invalid {} literal `{lit}`", stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_deserialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_deserialize {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &JsonValue) -> Result<Self, DeError> {
                match v {
                    JsonValue::Number(lit) => lit.parse::<$t>().map_err(|_| {
                        DeError::new(format!("invalid float literal `{lit}`"))
                    }),
                    // Serialization writes null for non-finite floats.
                    JsonValue::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

float_deserialize!(f32, f64);

impl Deserialize for String {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn accepts_missing() -> bool {
        true
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl Deserialize for std::time::Duration {
    fn from_json(v: &JsonValue) -> Result<Self, DeError> {
        let secs: u64 = de_field(v, "secs", "Duration")?;
        let nanos: u32 = de_field(v, "nanos", "Duration")?;
        // Duration::new panics when the nanos carry overflows secs;
        // hostile input must become an error, not a panic.
        if nanos >= 1_000_000_000 {
            return Err(DeError::new(format!(
                "Duration nanos {nanos} out of range (must be < 1e9)"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: f64,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Weighted { w: f64 },
        Pair(u32, u32),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Id(u32);

    fn compact<T: Serialize>(v: &T) -> String {
        let mut e = JsonEmitter::new(false);
        v.json_emit(&mut e);
        e.finish()
    }

    #[test]
    fn named_struct() {
        let p = Point {
            x: 1.5,
            y: -2.0,
            label: "a\"b".into(),
        };
        assert_eq!(compact(&p), r#"{"x":1.5,"y":-2.0,"label":"a\"b"}"#);
    }

    #[test]
    fn enums() {
        assert_eq!(compact(&Kind::Plain), r#""Plain""#);
        assert_eq!(
            compact(&Kind::Weighted { w: 0.5 }),
            r#"{"Weighted":{"w":0.5}}"#
        );
        assert_eq!(compact(&Kind::Pair(1, 2)), r#"{"Pair":[1,2]}"#);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(compact(&Id(7)), "7");
    }

    #[test]
    fn vec_and_option() {
        assert_eq!(compact(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(compact(&Option::<u32>::None), "null");
        assert_eq!(compact(&Some(4u32)), "4");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(compact(&f64::NAN), "null");
        assert_eq!(compact(&f64::INFINITY), "null");
    }

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let json = compact(v);
        let parsed = JsonValue::parse(&json).expect("parses");
        let back = T::from_json(&parsed).expect("deserializes");
        assert_eq!(&back, v, "through {json}");
    }

    #[test]
    fn derived_round_trips() {
        round_trip(&Point {
            x: 1.5,
            y: -2.0,
            label: "a\"b\nc".into(),
        });
        round_trip(&Kind::Plain);
        round_trip(&Kind::Weighted { w: 0.1 });
        round_trip(&Kind::Pair(7, u32::MAX));
        round_trip(&Id(9));
        round_trip(&Some(Id(3)));
        round_trip(&Option::<Id>::None);
        round_trip(&std::time::Duration::new(3, 450));
    }

    #[test]
    fn missing_required_field_errors_missing_option_defaults() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Mix {
            a: u32,
            b: Option<u32>,
        }
        let v = JsonValue::parse(r#"{"a":1}"#).unwrap();
        assert_eq!(Mix::from_json(&v).unwrap(), Mix { a: 1, b: None });
        let v = JsonValue::parse(r#"{"b":2}"#).unwrap();
        let err = Mix::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("missing field `a`"), "{err}");
    }

    #[test]
    fn missing_float_field_errors_rather_than_nan() {
        // Floats accept an explicit null *value* (non-finite round-trip)
        // but a missing key must still be an error, not a silent NaN.
        let v = JsonValue::parse(r#"{"y":1.0,"label":"l"}"#).unwrap();
        let err = Point::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("missing field `x`"), "{err}");
        let v = JsonValue::parse(r#"{"x":null,"y":1.0,"label":"l"}"#).unwrap();
        assert!(Point::from_json(&v).unwrap().x.is_nan());
    }

    #[test]
    fn duration_rejects_overflowing_nanos() {
        let v = JsonValue::parse(r#"{"secs":18446744073709551615,"nanos":1999999999}"#).unwrap();
        let err = std::time::Duration::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn out_of_range_float_literals_error_instead_of_saturating() {
        // 2^64 is exactly representable as f64; it must NOT deserialize
        // as u64::MAX.
        let v = JsonValue::parse("18446744073709551616.0").unwrap();
        assert!(u64::from_json(&v).is_err());
        let v = JsonValue::parse("-1").unwrap();
        assert!(u64::from_json(&v).is_err());
        let v = JsonValue::parse("9223372036854775808.0").unwrap(); // 2^63
        assert!(i64::from_json(&v).is_err());
        // In-range float-formatted integrals still parse.
        let v = JsonValue::parse("1e3").unwrap();
        assert_eq!(u64::from_json(&v).unwrap(), 1000);
        let v = JsonValue::parse("255.0").unwrap();
        assert_eq!(u8::from_json(&v).unwrap(), 255);
    }

    #[test]
    fn wrong_shapes_error_with_context() {
        let v = JsonValue::parse(r#"{"x":1,"y":"no","label":"l"}"#).unwrap();
        let err = Point::from_json(&v).unwrap_err().to_string();
        assert!(err.contains("Point.y"), "{err}");
        let v = JsonValue::parse(r#""NotAVariant""#).unwrap();
        assert!(Kind::from_json(&v).is_err());
        let v = JsonValue::parse(r#"{"Pair":[1]}"#).unwrap();
        assert!(Kind::from_json(&v).is_err(), "arity mismatch");
    }

    #[test]
    fn pretty_indents() {
        let p = Point {
            x: 0.0,
            y: 0.0,
            label: "l".into(),
        };
        let mut e = JsonEmitter::new(true);
        p.json_emit(&mut e);
        let s = e.finish();
        assert!(s.contains("\n  \"x\": 0.0"), "{s}");
    }
}
