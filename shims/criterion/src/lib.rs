//! Offline stand-in for `criterion`.
//!
//! Implements the group/bencher API surface the qCORAL benches use with a
//! simple wall-clock harness: each benchmark runs `sample_size` timed
//! iterations after one warm-up and reports min / median / mean to
//! stdout. No statistical analysis, plotting, or baselines — but the
//! numbers are honest medians and the API is source-compatible.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary of one benchmark: the timings of its samples.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// Benchmark id (`group/name`).
    pub id: String,
    /// Per-sample wall-clock times.
    pub times: Vec<Duration>,
}

impl Sampled {
    /// Median sample time.
    pub fn median(&self) -> Duration {
        let mut t = self.times.clone();
        t.sort();
        t[t.len() / 2]
    }

    /// Mean sample time.
    pub fn mean(&self) -> Duration {
        self.times.iter().sum::<Duration>() / self.times.len().max(1) as u32
    }

    /// Minimum sample time.
    pub fn min(&self) -> Duration {
        self.times.iter().min().copied().unwrap_or_default()
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Sampled>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// All results collected so far.
    pub fn results(&self) -> &[Sampled] {
        &self.results
    }
}

/// A benchmark id with an attached parameter, `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            sample_size: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        let s = Sampled {
            id: id.clone(),
            times: b.times,
        };
        println!(
            "bench {id:<48} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
            s.min(),
            s.median(),
            s.mean(),
            s.times.len()
        );
        self.criterion.results.push(s);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.into_id(), |b| f(b, input))
    }

    /// Ends the group (separator line for readability).
    pub fn finish(self) {
        println!();
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    sample_size: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once for warm-up, then `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        self.times.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// Declares a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].times.len(), 5);
        assert_eq!(c.results()[1].id, "g/param/3");
    }
}
