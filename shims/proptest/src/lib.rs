//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! range and tuple strategies, `prop::collection::vec`, [`Just`],
//! `any::<bool>()`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the
//! case number and the assertion message only) and a fixed,
//! deterministic seed derivation per test name and case index, so
//! failures reproduce exactly across runs.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Test-runner configuration (`cases` is the only knob the shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-test, per-case RNG.
    pub fn new(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values.
pub trait Strategy: Clone + 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone + 'static,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.sample(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf; `recurse` maps a
    /// strategy for depth `d` trees to one for depth `d+1`. `depth`
    /// bounds the construction; the size hints are accepted for
    /// compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            // One part leaf to two parts branch keeps generated trees
            // interesting without blowup (depth is already bounded).
            strat = Union::new(vec![leaf.clone(), branch.clone(), branch]).boxed();
        }
        strat
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone + 'static,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-valued strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool`.
#[derive(Clone)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespaced module mirror (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniformly picks one of the argument strategies each sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property assertion (no shrinking in the shim; equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::new(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)+) = ($($crate::Strategy::sample(&$strat, &mut rng),)+);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest shim: property `{}` failed at case #{case}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let s = (0.0f64..1.0).prop_map(|x| x * 2.0);
        let mut r1 = crate::TestRng::new("t", 0);
        let mut r2 = crate::TestRng::new("t", 0);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in -2.0f64..2.0, n in 0u32..10) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(k == 1 || k == 2);
        }

        #[test]
        fn tuples_and_bool((a, b) in (0u8..3, 0u8..3), flag in any::<bool>()) {
            prop_assert!(a < 3 && b < 3);
            let _ = flag;
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::TestRng::new("rec", 7);
        for _ in 0..100 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4, "{t:?}");
        }
    }
}
