//! Offline stand-in for `rayon`.
//!
//! Provides the subset the qCORAL hot path uses: `par_iter()` /
//! `into_par_iter()` with `map(...).collect::<Vec<_>>()`, plus [`join`].
//! Work is fanned out over `std::thread::scope` in contiguous,
//! order-preserving chunks, so `collect` returns results in input order —
//! exactly the property qCORAL's determinism story relies on.
//!
//! Unlike real rayon there is no work-stealing pool; instead a global
//! counter bounds the number of live worker threads at
//! [`current_num_threads`]. Nested parallel calls (path conditions →
//! factors → sample chunks) degrade to inline execution once the budget
//! is spent, which keeps the thread count flat and the outermost —
//! coarsest — level parallel.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Live worker threads beyond the callers (nested-parallelism guard).
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Releases reserved worker slots on drop, so a panicking closure (even
/// one later caught with `catch_unwind`) cannot permanently deflate the
/// thread budget and silently serialize the rest of the process.
struct WorkerReservation(usize);

impl WorkerReservation {
    fn take(n: usize) -> WorkerReservation {
        ACTIVE_WORKERS.fetch_add(n, Ordering::Relaxed);
        WorkerReservation(n)
    }
}

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Test-only thread-budget override (0 = none). An atomic rather than an
/// env write: `set_var` mid-process races concurrent `env::var` readers.
static BUDGET_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The thread budget: `RAYON_NUM_THREADS` if set, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let o = BUDGET_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if ACTIVE_WORKERS.load(Ordering::Relaxed) + 1 >= current_num_threads() {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|s| {
        let _reservation = WorkerReservation::take(1);
        let hb = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match hb.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        };
        (ra, rb)
    })
}

/// Order-preserving parallel map over owned items. Splits `items` into at
/// most `budget` contiguous chunks, maps each chunk on its own scoped
/// thread, and concatenates the per-chunk outputs in input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_init_vec(items, &|| (), &|_: &mut (), t| f(t))
}

/// [`par_map_vec`] with per-worker state, mirroring rayon's `map_init`:
/// `init` runs once per contiguous chunk (≈ once per worker thread) and
/// the resulting state is threaded through that chunk's calls — the
/// scratch-buffer reuse pattern of the sampling hot path.
fn par_map_init_vec<T, S, R, INIT, F>(items: Vec<T>, init: &INIT, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let budget = current_num_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    let threads = budget.min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }
    // Contiguous chunking: ceil(n / threads) per chunk.
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let spawned = chunks.len().saturating_sub(1);
    let _reservation = WorkerReservation::take(spawned);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(spawned);
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("at least one chunk");
        for c in iter {
            handles.push(s.spawn(move || {
                let mut state = init();
                c.into_iter().map(|t| f(&mut state, t)).collect::<Vec<R>>()
            }));
        }
        // The caller's thread works on the first chunk instead of idling.
        let mut state = init();
        let mut out: Vec<R> = first.into_iter().map(|t| f(&mut state, t)).collect();
        for h in handles {
            match h.join() {
                Ok(mut v) => out.append(&mut v),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        out
    })
}

/// A materialized parallel iterator (items are collected up front).
pub struct ParIter<T> {
    items: Vec<T>,
}

/// A mapped parallel iterator; execution happens at `collect`/`for_each`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (lazily; runs at `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Rayon compatibility no-op: chunking is decided by the shim.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    /// Maps each item through `f` with per-worker state created by
    /// `init` (rayon's `map_init`): the state is built once per
    /// contiguous chunk and reused across that chunk's items.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        par_map_vec(self.items, &self.f).into_iter().sum()
    }

    /// Runs the map in parallel, discarding results.
    pub fn for_each(self) {
        let _ = self.collect::<Vec<R>>();
    }
}

/// A mapped parallel iterator with per-worker state (see
/// [`ParIter::map_init`]); execution happens at `collect`/`sum`.
pub struct ParMapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T, S, R, INIT, F> ParMapInit<T, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_init_vec(self.items, &self.init, &self.f)
            .into_iter()
            .collect()
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<Sum: std::iter::Sum<R>>(self) -> Sum {
        par_map_init_vec(self.items, &self.init, &self.f)
            .into_iter()
            .sum()
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize);

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// `par_iter()` over borrowed collections, mirroring rayon's trait.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_parallelism_stays_bounded() {
        // Nested maps must not explode the thread count; just verify the
        // results are correct and the call completes.
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..8usize)
                    .into_par_iter()
                    .map(move |j| i * 8 + j)
                    .collect()
            })
            .collect();
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn caught_panics_release_the_worker_budget() {
        // Atomic override, not set_var: mutating the environment races
        // concurrent env readers in sibling tests. Other tests seeing a
        // 4-thread budget transiently is harmless (all are count-agnostic).
        super::BUDGET_OVERRIDE.store(4, std::sync::atomic::Ordering::Relaxed);
        let before = super::ACTIVE_WORKERS.load(std::sync::atomic::Ordering::Relaxed);
        for _ in 0..3 {
            let r = std::panic::catch_unwind(|| {
                (0..8usize)
                    .into_par_iter()
                    .map(|i| if i == 5 { panic!("boom") } else { i })
                    .collect::<Vec<_>>()
            });
            assert!(r.is_err(), "the panic must propagate");
        }
        // The reservation guard must have restored the counter; poll
        // briefly to tolerate other tests' transient reservations.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let now = super::ACTIVE_WORKERS.load(std::sync::atomic::Ordering::Relaxed);
            if now <= before {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "budget leaked: {now} > {before}"
            );
            std::thread::yield_now();
        }
        super::BUDGET_OVERRIDE.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}
