//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! plain (non-generic) structs and enums this workspace (de)serializes,
//! generating implementations of the shim `serde::Serialize` /
//! `serde::Deserialize` traits. The two derives are mirror images, so a
//! derived type round-trips through JSON: named structs are objects,
//! newtype structs are transparent, unit enum variants are strings, and
//! data-carrying variants are single-key objects.
//!
//! The parser walks the raw `TokenStream` (no `syn`/`quote`; those are
//! unavailable offline). Supported shapes: unit/tuple/named structs and
//! enums with unit, tuple, and named-field variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim `serde::Serialize` (JSON emission).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::UnitStruct => "e.begin_object(); e.end_object();".to_owned(),
        Shape::TupleStruct(1) => "::serde::Serialize::json_emit(&self.0, e);".to_owned(),
        Shape::TupleStruct(n) => {
            let mut s = String::from("e.begin_array();");
            for i in 0..*n {
                s.push_str(&format!(
                    "e.elem(); ::serde::Serialize::json_emit(&self.{i}, e);"
                ));
            }
            s.push_str("e.end_array();");
            s
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("e.begin_object();");
            for f in fields {
                s.push_str(&format!(
                    "e.key(\"{f}\"); ::serde::Serialize::json_emit(&self.{f}, e);"
                ));
            }
            s.push_str("e.end_object();");
            s
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => {
                        arms.push_str(&format!("{name}::{v} => e.string(\"{v}\"),", v = v.name));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binds.join(", ");
                        let mut body = String::from("{ e.begin_object(); e.key(\"");
                        body.push_str(&v.name);
                        body.push_str("\");");
                        if *n == 1 {
                            body.push_str("::serde::Serialize::json_emit(__f0, e);");
                        } else {
                            body.push_str("e.begin_array();");
                            for b in &binds {
                                body.push_str(&format!(
                                    "e.elem(); ::serde::Serialize::json_emit({b}, e);"
                                ));
                            }
                            body.push_str("e.end_array();");
                        }
                        body.push_str("e.end_object(); }");
                        arms.push_str(&format!("{name}::{v}({pat}) => {body},", v = v.name));
                    }
                    VariantShape::Named(fields) => {
                        let pat = fields.join(", ");
                        let mut body = String::from("{ e.begin_object(); e.key(\"");
                        body.push_str(&v.name);
                        body.push_str("\"); e.begin_object();");
                        for f in fields {
                            body.push_str(&format!(
                                "e.key(\"{f}\"); ::serde::Serialize::json_emit({f}, e);"
                            ));
                        }
                        body.push_str("e.end_object(); e.end_object(); }");
                        arms.push_str(&format!("{name}::{v} {{ {pat} }} => {body},", v = v.name));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n\
             fn json_emit(&self, e: &mut ::serde::JsonEmitter) {{ {} }}\n\
         }}",
        item.name, body
    );
    out.parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Derives the shim `serde::Deserialize` (reconstruction from a parsed
/// `serde::JsonValue`), mirroring the `Serialize` encoding.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        // Unit structs serialize as `{}`; accept any object (or null, for
        // symmetry with missing optional fields).
        Shape::UnitStruct => format!(
            "match __v {{ \
                 ::serde::JsonValue::Object(_) | ::serde::JsonValue::Null => Ok({name}), \
                 __other => Err(::serde::DeError::expected(\"object for {name}\", __other)), \
             }}"
        ),
        // Newtype structs are transparent.
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_json(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let mut s = format!(
                "let __arr = match __v {{ \
                     ::serde::JsonValue::Array(__a) if __a.len() == {n} => __a, \
                     __other => return Err(::serde::DeError::expected(\
                         \"array of {n} for {name}\", __other)), \
                 }};"
            );
            let fields: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", fields.join(", ")));
            s
        }
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "if !matches!(__v, ::serde::JsonValue::Object(_)) {{ \
                     return Err(::serde::DeError::expected(\"object for {name}\", __v)); \
                 }}"
            );
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__v, \"{f}\", \"{name}\")?"))
                .collect();
            s.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
            s
        }
        Shape::Enum(variants) => {
            // Unit variants: a bare string. Data variants: an object with
            // exactly the variant name as key.
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantShape::Tuple(1) => {
                        data_arms.push_str(&format!(
                            "if let Some(__inner) = __v.get(\"{vn}\") {{ \
                                 return Ok({name}::{vn}(\
                                     ::serde::Deserialize::from_json(__inner)\
                                         .map_err(|e| e.context(\"{name}::{vn}\"))?)); \
                             }}"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let fields: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_json(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "if let Some(__inner) = __v.get(\"{vn}\") {{ \
                                 let __arr = match __inner {{ \
                                     ::serde::JsonValue::Array(__a) if __a.len() == {n} => __a, \
                                     __other => return Err(::serde::DeError::expected(\
                                         \"array of {n} for {name}::{vn}\", __other)), \
                                 }}; \
                                 return Ok({name}::{vn}({fields})); \
                             }}",
                            fields = fields.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::de_field(__inner, \"{f}\", \"{name}::{vn}\")?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "if let Some(__inner) = __v.get(\"{vn}\") {{ \
                                 return Ok({name}::{vn} {{ {} }}); \
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            // Keep the generated code lint-clean: a `match` over the
            // variant name only when there are unit variants to match.
            let string_arm = if unit_arms.is_empty() {
                format!(
                    "Err(::serde::DeError::new(format!(\
                         \"unknown variant `{{__s}}` for {name}\")))"
                )
            } else {
                format!(
                    "match __s.as_str() {{ \
                         {unit_arms} \
                         __other => Err(::serde::DeError::new(format!(\
                             \"unknown variant `{{__other}}` for {name}\"))), \
                     }}"
                )
            };
            format!(
                "match __v {{ \
                     ::serde::JsonValue::String(__s) => {{ {string_arm} }} \
                     ::serde::JsonValue::Object(_) => {{ \
                         {data_arms} \
                         Err(::serde::DeError::new(\
                             \"unknown variant object for {name}\".to_string())) \
                     }} \
                     __other => Err(::serde::DeError::expected(\"{name}\", __other)), \
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(__v: &::serde::JsonValue) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim generated invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        k => panic!("serde_derive shim: cannot derive for `{k}`"),
    };
    Item { name, shape }
}

/// Extracts field names from `{ a: T, pub b: U, ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:`, got {other:?}"),
        }
        // Consume the type: everything until a top-level comma. Generic
        // angle brackets contain no top-level commas in token-tree form
        // only when balanced; track `<`/`>` depth explicitly.
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                _ => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for t in stream {
        saw_tokens = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        // N commas separate N+1 fields unless there is a trailing comma;
        // a trailing comma overcounts by one but trailing commas in tuple
        // structs are rare — handled by the parser seeing the final comma
        // as a separator with nothing after it. Counting conservatively:
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes.
        while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            toks.next();
            toks.next();
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}
