//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal surface qCORAL uses: [`RngCore`], the [`Rng`] extension
//! trait with `gen_range`, [`SeedableRng::seed_from_u64`], and a
//! [`rngs::SmallRng`] backed by xoshiro256++ (seeded via SplitMix64, like
//! upstream). The streams differ from upstream `rand`, but every consumer
//! in this workspace goes through this shim, so results are
//! self-consistent and deterministic.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range a uniform sample can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty sampling range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating-point rounding can land exactly on `end`; clamp back
        // into the half-open interval.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty sampling range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed via SplitMix64 state expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the standard seed expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // Guard against the (astronomically unlikely) all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let n = rng.gen_range(3u32..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(0u32..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
