//! Deterministic, named fault-injection points ("failpoints").
//!
//! A failpoint is a named site in production code that asks "should I
//! fail here, this time?":
//!
//! ```
//! if qcoral_failpoints::failpoint!("store.wal.append") {
//!     // simulate the injected failure
//! }
//! ```
//!
//! Whether it fires is governed by a [`Plan`] configured per name —
//! fail the first K evaluations, every Nth, or a seeded probability —
//! so a chaos test replays the *exact same* fault sequence on every
//! run: plans are pure functions of a per-name evaluation counter (and
//! a seed), never of wall-clock time or a global RNG.
//!
//! Without the `enabled` cargo feature the whole registry is compiled
//! out and [`should_fail`] is a constant `false` the optimizer deletes,
//! so shipping binaries carry zero overhead. Tests either call
//! [`configure`] directly or set the `QCORAL_FAILPOINTS` environment
//! variable before the first evaluation:
//!
//! ```text
//! QCORAL_FAILPOINTS="store.wal.append=first(2);wire.write=every(3);worker.job=prob(0.5:42)"
//! ```
//!
//! Failpoints are process-global; tests that configure them must
//! serialize themselves (e.g. behind a shared mutex) and [`reset`] when
//! done.

#![warn(missing_docs)]

/// How a named failpoint decides whether to fire on each evaluation.
///
/// All plans are deterministic in the per-name evaluation counter, so a
/// fixed configuration yields a fixed fault sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Plan {
    /// Never fire (the default for unconfigured names).
    Off,
    /// Fire on the first K evaluations, then never again.
    FirstK(u64),
    /// Fire on every Nth evaluation (the Nth, 2Nth, …). `EveryNth(1)`
    /// fires always; `EveryNth(0)` is treated as `Off`.
    EveryNth(u64),
    /// Fire with probability `p` per evaluation, decided by a seeded
    /// hash of the evaluation counter (still fully deterministic).
    Prob {
        /// Firing probability in `[0, 1]`.
        p: f64,
        /// Seed mixed into the per-evaluation hash.
        seed: u64,
    },
}

/// Evaluation counters for one named failpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailpointStat {
    /// The failpoint name.
    pub name: String,
    /// How many times the site was evaluated.
    pub evaluations: u64,
    /// How many evaluations fired.
    pub fired: u64,
}

/// Evaluates the named failpoint: returns whether the caller should
/// simulate a failure now. See [`failpoint!`].
#[macro_export]
macro_rules! failpoint {
    ($name:expr) => {
        $crate::should_fail($name)
    };
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{FailpointStat, Plan};
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct Point {
        plan: Plan,
        evaluations: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Point>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
        REGISTRY.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("QCORAL_FAILPOINTS") {
                for (name, plan) in super::parse_env(&spec) {
                    map.insert(
                        name,
                        Point {
                            plan,
                            evaluations: 0,
                            fired: 0,
                        },
                    );
                }
            }
            Mutex::new(map)
        })
    }

    /// SplitMix64 finalizer: a high-quality 64-bit mix.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn plan_fires(plan: Plan, evaluation: u64) -> bool {
        match plan {
            Plan::Off => false,
            Plan::FirstK(k) => evaluation < k,
            Plan::EveryNth(0) => false,
            Plan::EveryNth(n) => (evaluation + 1).is_multiple_of(n),
            Plan::Prob { p, seed } => {
                let h =
                    mix(seed ^ (evaluation.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                ((h >> 11) as f64 / (1u64 << 53) as f64) < p
            }
        }
    }

    pub fn should_fail(name: &str) -> bool {
        let mut map = registry().lock().expect("failpoint registry");
        let point = map.entry(name.to_string()).or_insert(Point {
            plan: Plan::Off,
            evaluations: 0,
            fired: 0,
        });
        let fires = plan_fires(point.plan, point.evaluations);
        point.evaluations += 1;
        if fires {
            point.fired += 1;
        }
        fires
    }

    pub fn configure(name: &str, plan: Plan) {
        let mut map = registry().lock().expect("failpoint registry");
        map.insert(
            name.to_string(),
            Point {
                plan,
                evaluations: 0,
                fired: 0,
            },
        );
    }

    pub fn reset() {
        registry().lock().expect("failpoint registry").clear();
    }

    pub fn stats() -> Vec<FailpointStat> {
        let map = registry().lock().expect("failpoint registry");
        let mut out: Vec<FailpointStat> = map
            .iter()
            .map(|(name, p)| FailpointStat {
                name: name.clone(),
                evaluations: p.evaluations,
                fired: p.fired,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{FailpointStat, Plan};

    #[inline(always)]
    pub fn should_fail(_name: &str) -> bool {
        false
    }

    #[inline(always)]
    pub fn configure(_name: &str, _plan: Plan) {}

    #[inline(always)]
    pub fn reset() {}

    #[inline(always)]
    pub fn stats() -> Vec<FailpointStat> {
        Vec::new()
    }
}

/// Evaluates the named failpoint, advancing its counter. Prefer the
/// [`failpoint!`] macro at call sites.
pub fn should_fail(name: &str) -> bool {
    imp::should_fail(name)
}

/// Installs (or replaces) the plan for one failpoint name, resetting
/// its counters. No-op without the `enabled` feature.
pub fn configure(name: &str, plan: Plan) {
    imp::configure(name, plan)
}

/// Clears every configured plan and all counters.
pub fn reset() {
    imp::reset()
}

/// Snapshot of all failpoint counters, sorted by name. Empty without
/// the `enabled` feature.
pub fn stats() -> Vec<FailpointStat> {
    imp::stats()
}

/// Parses a `QCORAL_FAILPOINTS` specification: `;`-separated
/// `name=plan` entries where plan is `off`, `first(K)`, `every(N)` or
/// `prob(P:SEED)`. Unparseable entries are ignored (a chaos harness
/// typo must not take the service down).
pub fn parse_env(spec: &str) -> Vec<(String, Plan)> {
    spec.split(';')
        .filter_map(|entry| {
            let entry = entry.trim();
            let (name, plan) = entry.split_once('=')?;
            let (name, plan) = (name.trim(), plan.trim());
            if name.is_empty() {
                return None;
            }
            Some((name.to_string(), parse_plan(plan)?))
        })
        .collect()
}

fn parse_plan(s: &str) -> Option<Plan> {
    if s.eq_ignore_ascii_case("off") {
        return Some(Plan::Off);
    }
    let (kind, rest) = s.split_once('(')?;
    let args = rest.strip_suffix(')')?;
    match kind.trim() {
        "first" => Some(Plan::FirstK(args.trim().parse().ok()?)),
        "every" => Some(Plan::EveryNth(args.trim().parse().ok()?)),
        "prob" => {
            let (p, seed) = args.split_once(':')?;
            let p: f64 = p.trim().parse().ok()?;
            if !(0.0..=1.0).contains(&p) {
                return None;
            }
            Some(Plan::Prob {
                p,
                seed: seed.trim().parse().ok()?,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_spec_parses() {
        let plans = parse_env("a=first(2); b=every(3);c=prob(0.5:42);bad=wat(1);d=off");
        assert_eq!(
            plans,
            vec![
                ("a".to_string(), Plan::FirstK(2)),
                ("b".to_string(), Plan::EveryNth(3)),
                ("c".to_string(), Plan::Prob { p: 0.5, seed: 42 }),
                ("d".to_string(), Plan::Off),
            ]
        );
        assert!(parse_env("").is_empty());
        assert!(parse_env("noequals").is_empty());
        assert!(parse_env("p=prob(1.5:1)").is_empty());
    }

    // Everything below exercises the real registry, which only exists
    // with the feature on. Registry state is process-global, so these
    // tests serialize themselves behind one mutex.
    #[cfg(feature = "enabled")]
    mod live {
        use super::*;
        use std::sync::{Mutex, MutexGuard, OnceLock};

        fn lock() -> MutexGuard<'static, ()> {
            static GATE: OnceLock<Mutex<()>> = OnceLock::new();
            let guard = GATE
                .get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            reset();
            guard
        }

        #[test]
        fn unconfigured_points_never_fire_but_are_counted() {
            let _g = lock();
            assert!(!should_fail("nope"));
            assert!(!should_fail("nope"));
            let s = stats();
            assert_eq!(s.len(), 1);
            assert_eq!((s[0].evaluations, s[0].fired), (2, 0));
        }

        #[test]
        fn first_k_fires_exactly_k_times() {
            let _g = lock();
            configure("fk", Plan::FirstK(3));
            let fired: Vec<bool> = (0..6).map(|_| failpoint!("fk")).collect();
            assert_eq!(fired, [true, true, true, false, false, false]);
        }

        #[test]
        fn every_nth_fires_periodically() {
            let _g = lock();
            configure("nth", Plan::EveryNth(3));
            let fired: Vec<bool> = (0..7).map(|_| failpoint!("nth")).collect();
            assert_eq!(fired, [false, false, true, false, false, true, false]);
            configure("zero", Plan::EveryNth(0));
            assert!(!failpoint!("zero"));
        }

        #[test]
        fn prob_is_seed_deterministic_and_roughly_calibrated() {
            let _g = lock();
            configure("p", Plan::Prob { p: 0.25, seed: 7 });
            let a: Vec<bool> = (0..1000).map(|_| failpoint!("p")).collect();
            configure("p", Plan::Prob { p: 0.25, seed: 7 });
            let b: Vec<bool> = (0..1000).map(|_| failpoint!("p")).collect();
            assert_eq!(a, b, "same seed, same sequence");
            let hits = a.iter().filter(|&&x| x).count();
            assert!((150..350).contains(&hits), "p=0.25 fired {hits}/1000");
            configure("p", Plan::Prob { p: 0.25, seed: 8 });
            let c: Vec<bool> = (0..1000).map(|_| failpoint!("p")).collect();
            assert_ne!(a, c, "different seed, different sequence");
        }

        #[test]
        fn configure_resets_counters() {
            let _g = lock();
            configure("r", Plan::FirstK(1));
            assert!(failpoint!("r"));
            assert!(!failpoint!("r"));
            configure("r", Plan::FirstK(1));
            assert!(failpoint!("r"), "reconfigure restarts the plan");
        }
    }
}
