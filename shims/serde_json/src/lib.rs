//! Offline stand-in for `serde_json`: serialization only, over the shim
//! `serde::Serialize` JSON emitter.

use std::fmt;

use serde::{JsonEmitter, Serialize};

/// Serialization error. The shim emitter is infallible, so this is never
/// produced; it exists to keep call sites source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = JsonEmitter::new(false);
    value.json_emit(&mut e);
    Ok(e.finish())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = JsonEmitter::new(true);
    value.json_emit(&mut e);
    Ok(e.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_shapes() {
        let rows = vec![vec![1u64, 2], vec![3]];
        assert_eq!(super::to_string(&rows).unwrap(), "[[1,2],[3]]");
        let pretty = super::to_string_pretty(&rows).unwrap();
        assert!(pretty.starts_with("[\n  [\n    1,"), "{pretty}");
    }
}
