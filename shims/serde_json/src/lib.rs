//! Offline stand-in for `serde_json`: serialization over the shim
//! `serde::Serialize` JSON emitter, and deserialization through the shim
//! parser into [`Value`] / `serde::Deserialize`.

use std::fmt;

use serde::{Deserialize, JsonEmitter, Serialize};

/// A parsed JSON document (re-export of the shim's value tree).
pub type Value = serde::JsonValue;

/// Serialization or deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = JsonEmitter::new(false);
    value.json_emit(&mut e);
    Ok(e.finish())
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut e = JsonEmitter::new(true);
    value.json_emit(&mut e);
    Ok(e.finish())
}

/// Parses a JSON document into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = Value::parse(s)?;
    T::from_json(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_shapes() {
        let rows = vec![vec![1u64, 2], vec![3]];
        assert_eq!(super::to_string(&rows).unwrap(), "[[1,2],[3]]");
        let pretty = super::to_string_pretty(&rows).unwrap();
        assert!(pretty.starts_with("[\n  [\n    1,"), "{pretty}");
        let back: Vec<Vec<u64>> = super::from_str("[[1,2],[3]]").unwrap();
        assert_eq!(back, rows);
        let from_pretty: Vec<Vec<u64>> = super::from_str(&pretty).unwrap();
        assert_eq!(from_pretty, rows);
    }

    #[test]
    fn big_integers_survive() {
        let xs = vec![u64::MAX, 0, 1 << 63];
        let json = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
        let fp = vec![u128::MAX - 7];
        let back: Vec<u128> = from_str(&to_string(&fp).unwrap()).unwrap();
        assert_eq!(back, fp);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1_f64,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            6.02e23,
        ] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
            "nul",
            "-",
            "1e",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}é".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
        // \u escapes, including surrogate pairs.
        let v: String = from_str("\"A\\u00e9\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v, "Aé\u{1F600}");
    }
}
