//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives with
//! parking_lot's poison-free API (`lock()` returns the guard directly).

use std::sync;

/// A mutual-exclusion lock. Poisoning is swallowed, matching
/// parking_lot's semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
