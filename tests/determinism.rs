//! Determinism of the parallel hot path: for a fixed seed, the parallel
//! analyzer must return the *bit-identical* estimate of the serial
//! analyzer on every VolComp-suite subject — the contract that makes
//! rayon fan-out safe to enable by default.
//!
//! Three properties are pinned down:
//!
//! 1. serial(seed) == serial(seed)   (repeatability)
//! 2. serial(seed) == parallel(seed) (schedule independence)
//! 3. the per-PC breakdown matches, not just the total (no compensating
//!    errors across path conditions).

use std::sync::Arc;

use qcoral::{Analyzer, CompiledPred, FactorStore, Options};
use qcoral_icp::{domain_box, PavingCache};
use qcoral_mc::{
    hit_or_miss_plan, hit_or_miss_plan_bulk, mix_seed, stratified_plan, stratified_plan_bulk,
    Allocation, SamplePlan, Stratum, UsageProfile,
};
use qcoral_subjects::{nonuniform_subjects, rare_subjects, table3_subjects};
use qcoral_symexec::SymConfig;

fn check_subject(name: &str, samples: u64, seed: u64) {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("subject {name} exists"));
    for idx in 0..subj.assertions.len() {
        let (domain, cs) = subj.system_for(idx, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let profile = UsageProfile::uniform(domain.len());
        let opts = Options::strat_partcache()
            .with_samples(samples)
            .with_seed(seed);
        let a = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        assert_eq!(
            a.estimate, b.estimate,
            "{name}[{idx}]: serial runs disagree"
        );
        let c = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &domain, &profile);
        assert_eq!(
            a.estimate, c.estimate,
            "{name}[{idx}]: parallel vs serial estimate"
        );
        assert_eq!(
            a.per_pc, c.per_pc,
            "{name}[{idx}]: per-PC breakdown differs"
        );
    }
}

#[test]
fn atrial_parallel_matches_serial() {
    check_subject("ATRIAL", 4_000, 11);
}

#[test]
fn cart_parallel_matches_serial() {
    check_subject("CART", 4_000, 12);
}

#[test]
fn coronary_parallel_matches_serial() {
    check_subject("CORONARY", 4_000, 13);
}

#[test]
fn egfr_parallel_matches_serial() {
    check_subject("EGFR EPI", 2_000, 14);
}

#[test]
fn invpend_parallel_matches_serial() {
    check_subject("INVPEND", 4_000, 15);
}

#[test]
fn pack_parallel_matches_serial() {
    check_subject("PACK", 2_000, 16);
}

#[test]
fn vol_parallel_matches_serial() {
    check_subject("VOL", 2_000, 17);
}

/// The plain (unstratified, unpartitioned) configuration exercises the
/// chunked hit-or-miss path directly.
#[test]
fn plain_config_parallel_matches_serial() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "ATRIAL").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::plain().with_samples(50_000).with_seed(5);
    let a = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
    let b = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &domain, &profile);
    assert_eq!(a.estimate, b.estimate);
}

/// The iterative engine's contract over the VolComp suite: for a fixed
/// seed and fixed iterative knobs,
///
/// 1. repeated runs are bit-identical (repeatability),
/// 2. serial and parallel runs agree bit-for-bit — including the round
///    count, since every reallocation decision is a pure function of
///    deterministic estimates (schedule independence), and
/// 3. a *warm restart* through a snapshotted `FactorStore` recomposes
///    the bit-identical estimate with zero pavings and zero samples
///    (same seeds ⇒ same rounds ⇒ same estimate).
#[test]
fn analyze_iterative_is_deterministic_and_restart_stable() {
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let profile = UsageProfile::uniform(domain.len());
        let opts = Options::strat_partcache()
            .with_samples(800)
            .with_seed(21)
            .with_target_stderr(1e-3)
            .with_round_budget(800)
            .with_max_rounds(4);

        let a = Analyzer::new(opts.clone()).analyze_iterative(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone()).analyze_iterative(&cs, &domain, &profile);
        assert_eq!(
            a.estimate, b.estimate,
            "{}: repeat runs disagree",
            subj.name
        );
        assert_eq!(a.per_pc, b.per_pc, "{}: per-PC repeat differs", subj.name);

        let c = Analyzer::new(opts.clone().with_parallel(true))
            .analyze_iterative(&cs, &domain, &profile);
        assert_eq!(a.estimate, c.estimate, "{}: parallel vs serial", subj.name);
        assert_eq!(a.per_pc, c.per_pc, "{}: per-PC parallel differs", subj.name);
        assert_eq!(
            a.stats.rounds, c.stats.rounds,
            "{}: parallel round trajectory differs",
            subj.name
        );
        assert_eq!(
            a.stats.samples_drawn, c.stats.samples_drawn,
            "{}",
            subj.name
        );

        // Warm restart: snapshot the store, absorb it into a fresh one
        // (what the service does across process restarts), re-run.
        let store = Arc::new(FactorStore::new(4096));
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze_iterative(&cs, &domain, &profile);
        assert_eq!(
            cold.estimate, a.estimate,
            "{}: store changed result",
            subj.name
        );
        let restarted = Arc::new(FactorStore::new(4096));
        restarted.absorb(store.entries());
        let warm = Analyzer::new(opts)
            .with_factor_store(restarted)
            .analyze_iterative(&cs, &domain, &profile);
        assert_eq!(
            warm.estimate, a.estimate,
            "{}: warm restart diverged",
            subj.name
        );
        assert_eq!(warm.per_pc, a.per_pc, "{}: warm per-PC differs", subj.name);
        assert_eq!(
            warm.stats.samples_drawn, 0,
            "{}: warm run sampled",
            subj.name
        );
        assert_eq!(warm.stats.pavings, 0, "{}: warm run paved", subj.name);
        assert_eq!(
            warm.stats.target_met, a.stats.target_met,
            "{}: warm target flag differs",
            subj.name
        );
    }
}

/// The same contract under *non-uniform* usage profiles, over the
/// profiled VolComp suite: for a fixed seed,
///
/// 1. repeated runs are bit-identical (the continuous inverse-CDF
///    sampler and the profile-aligned stratifier are deterministic),
/// 2. serial and parallel runs agree bit-for-bit, and
/// 3. a warm restart through a snapshot-absorbed `FactorStore`
///    recomposes the bit-identical estimate with zero pavings and zero
///    samples — non-uniform profile bits key the store exactly.
#[test]
fn nonuniform_profiles_are_deterministic_and_restart_stable() {
    for subj in nonuniform_subjects() {
        let (domain, cs, profile) = subj.system(&SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let opts = Options::strat_partcache().with_samples(2_000).with_seed(31);

        let a = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        assert_eq!(
            a.estimate, b.estimate,
            "{}: repeat runs disagree",
            subj.name
        );

        let c = Analyzer::new(opts.clone().with_parallel(true)).analyze(&cs, &domain, &profile);
        assert_eq!(a.estimate, c.estimate, "{}: parallel vs serial", subj.name);
        assert_eq!(a.per_pc, c.per_pc, "{}: per-PC breakdown", subj.name);

        // Warm restart through a snapshot-style store round trip.
        let store = Arc::new(FactorStore::new(4096));
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &domain, &profile);
        assert_eq!(
            cold.estimate, a.estimate,
            "{}: store changed result",
            subj.name
        );
        let restarted = Arc::new(FactorStore::new(4096));
        restarted.absorb(store.entries());
        let warm = Analyzer::new(opts)
            .with_factor_store(restarted)
            .analyze(&cs, &domain, &profile);
        assert_eq!(
            warm.estimate, a.estimate,
            "{}: warm restart diverged",
            subj.name
        );
        assert_eq!(
            warm.stats.samples_drawn, 0,
            "{}: warm run sampled",
            subj.name
        );
        assert_eq!(warm.stats.pavings, 0, "{}: warm run paved", subj.name);
    }
}

/// The columnar bulk path is pinned **bit-identical to the scalar row
/// path** on every VolComp-suite subject: for each path condition, the
/// plan-layer samplers must return the same `Estimate` whether the
/// predicate is a scalar closure over the row tape or the compiled
/// columnar `BulkPred` — serial and parallel, plain hit-or-miss and
/// stratified composition alike. (The analyzer rides the bulk path
/// unconditionally, so together with the serial/parallel and
/// warm-restart suites above — which CI runs under
/// `RAYON_NUM_THREADS=1` and `=4` — this pins the whole chain: bulk ==
/// scalar == parallel == warm restart.)
#[test]
fn bulk_path_matches_scalar_path_bit_for_bit() {
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let profile = UsageProfile::uniform(domain.len());
        let boxed = domain_box(&domain);
        for (i, pc) in cs.pcs().iter().enumerate().take(6) {
            let pred = CompiledPred::compile(pc);
            let scalar_pred = |x: &[f64]| pred.scalar().holds(x);
            let plan = SamplePlan::serial(mix_seed(97, i as u64));
            let scalar = hit_or_miss_plan(&scalar_pred, &boxed, &profile, 3_000, plan);
            let bulk = hit_or_miss_plan_bulk(&pred, &boxed, &profile, 3_000, plan);
            assert_eq!(scalar, bulk, "{}[pc {i}]: bulk diverged", subj.name);
            let par = hit_or_miss_plan_bulk(
                &pred,
                &boxed,
                &profile,
                3_000,
                SamplePlan::parallel(mix_seed(97, i as u64)),
            );
            assert_eq!(scalar, par, "{}[pc {i}]: parallel bulk diverged", subj.name);

            // Stratified composition over a two-way split of the domain.
            let d0 = boxed.dims()[0];
            let mid = 0.5 * (d0.lo() + d0.hi());
            let mut lo_box: Vec<_> = boxed.dims().to_vec();
            lo_box[0] = qcoral_interval::Interval::new(d0.lo(), mid);
            let mut hi_box: Vec<_> = boxed.dims().to_vec();
            hi_box[0] = qcoral_interval::Interval::new(mid, d0.hi());
            let strata = vec![
                Stratum::boundary(lo_box.into_iter().collect()),
                Stratum::boundary(hi_box.into_iter().collect()),
            ];
            let s_scalar = stratified_plan(
                &scalar_pred,
                &strata,
                &boxed,
                &profile,
                2_000,
                Allocation::Proportional,
                plan,
            );
            let s_bulk = stratified_plan_bulk(
                &pred,
                &strata,
                &boxed,
                &profile,
                2_000,
                Allocation::Proportional,
                plan,
            );
            assert_eq!(s_scalar, s_bulk, "{}[pc {i}]: stratified bulk", subj.name);
        }
    }
}

/// A warm `FactorStore` restart over the bulk-path analyzer: snapshots
/// written by a bulk-path run recompose bit-identically after a restart
/// (store keys and sample streams are untouched by the columnar
/// rewrite).
#[test]
fn bulk_path_warm_restart_is_bit_identical() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "VOL").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache().with_samples(2_000).with_seed(23);
    let store = Arc::new(FactorStore::new(4096));
    let cold = Analyzer::new(opts.clone())
        .with_factor_store(Arc::clone(&store))
        .analyze(&cs, &domain, &profile);
    assert!(cold.stats.samples_drawn > 0);
    let restarted = Arc::new(FactorStore::new(4096));
    restarted.absorb(store.entries());
    let warm = Analyzer::new(opts)
        .with_factor_store(restarted)
        .analyze(&cs, &domain, &profile);
    assert_eq!(warm.estimate, cold.estimate, "warm restart diverged");
    assert_eq!(warm.per_pc, cold.per_pc);
    assert_eq!(warm.stats.samples_drawn, 0, "warm run must not sample");
    assert_eq!(warm.stats.pavings, 0, "warm run must not pave");
}

/// Every report names the backend that served it, and the name is the
/// process-wide one: `"jit"` exactly when the `jit` feature is on and
/// runtime CPU detection accepted this host, `"bulk"` otherwise. The
/// CI matrix runs this suite with the feature on and off, and
/// `bulk_path_matches_scalar_path_bit_for_bit` above compiles its
/// predicates through the same full `CompiledPred::compile` path — so
/// under `--features jit` that test pins native kernels == scalar tape
/// bit for bit on every subject, and this one pins that the report
/// admits which path ran.
#[test]
fn reported_backend_matches_process_backend() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "VOL").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let opts = Options::strat_partcache().with_samples(1_000).with_seed(41);
    let report = Analyzer::new(opts).analyze(&cs, &domain, &profile);
    assert_eq!(report.stats.backend, qcoral::active_backend());
    assert!(
        report.stats.backend == "jit" || report.stats.backend == "bulk",
        "unexpected backend {:?}",
        report.stats.backend
    );
    #[cfg(not(feature = "jit"))]
    assert_eq!(report.stats.backend, "bulk");
}

/// Tracing must be a pure observer: with `Options::trace` on, every
/// estimate (total and per-PC) is bit-identical to the untraced run —
/// span clocks are monotonic timers that never touch an RNG stream, and
/// no instrumented path branches on a span's value. Checked serial and
/// parallel (the CI matrix reruns this at RAYON_NUM_THREADS=1 and 4),
/// one-shot and iterative; the traced runs must actually produce spans,
/// the untraced ones none.
#[test]
fn tracing_never_perturbs_estimates() {
    // The tape compile cache is process-wide, so its hit/miss split
    // depends on which test ran first — cache warmth, not tracing.
    // Everything else in Stats is per-run and must match exactly.
    let norm = |mut s: qcoral::Stats| {
        s.tape_cache_hits = 0;
        s.tape_cache_misses = 0;
        s
    };
    for subj in table3_subjects() {
        let (domain, cs) = subj.system_for(0, &SymConfig::default());
        if cs.is_empty() {
            continue;
        }
        let profile = UsageProfile::uniform(domain.len());
        for parallel in [false, true] {
            let opts = Options::strat_partcache()
                .with_samples(2_000)
                .with_seed(41)
                .with_parallel(parallel);
            let off = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
            let on = Analyzer::new(opts.clone().with_trace(true)).analyze(&cs, &domain, &profile);
            assert_eq!(
                off.estimate, on.estimate,
                "{} parallel={parallel}: tracing changed the estimate",
                subj.name
            );
            assert_eq!(
                off.per_pc, on.per_pc,
                "{} parallel={parallel}: tracing changed the per-PC breakdown",
                subj.name
            );
            assert_eq!(
                norm(off.stats.clone()),
                norm(on.stats.clone()),
                "{} parallel={parallel}: tracing changed the counters",
                subj.name
            );
            assert!(off.trace.is_none(), "untraced run returned spans");
            let spans = on.trace.as_ref().expect("traced run returns spans");
            assert!(!spans.spans.is_empty(), "trace must hold spans");

            let iter_opts = opts
                .with_target_stderr(1e-3)
                .with_round_budget(800)
                .with_max_rounds(3);
            let i_off = Analyzer::new(iter_opts.clone()).analyze_iterative(&cs, &domain, &profile);
            let i_on =
                Analyzer::new(iter_opts.with_trace(true)).analyze_iterative(&cs, &domain, &profile);
            assert_eq!(
                i_off.estimate, i_on.estimate,
                "{} parallel={parallel}: tracing changed the iterative estimate",
                subj.name
            );
            assert_eq!(i_off.per_pc, i_on.per_pc, "{}", subj.name);
            assert_eq!(
                norm(i_off.stats.clone()),
                norm(i_on.stats.clone()),
                "{} parallel={parallel}: tracing changed the round trajectory",
                subj.name
            );
            assert!(i_on.trace.is_some(), "iterative traced run returns spans");
        }
    }
}

/// Chunk size changes the stream (like a reseed) but never the
/// serial/parallel agreement.
#[test]
fn chunk_size_preserves_schedule_independence() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "CORONARY").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    for chunk in [64, 1_000, 100_000] {
        let mut opts = Options::strat_partcache().with_samples(10_000).with_seed(3);
        opts.chunk = chunk;
        let serial = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        let parallel = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &domain, &profile);
        assert_eq!(
            serial.estimate, parallel.estimate,
            "chunk {chunk}: schedules disagree"
        );
    }
}

/// Crash-recovery bit-identity: a process that dies after depositing
/// factor estimates — write-ahead log appended, but no snapshot ever
/// completed (only a torn `.tmp` from a save that never reached its
/// rename) — must recover warm answers bit-for-bit from the WAL alone,
/// serial and parallel alike (the CI matrix additionally runs this at
/// RAYON_NUM_THREADS=1 and 4).
#[test]
fn recovery_is_bit_identical() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "VOL").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    for parallel in [false, true] {
        let path = std::env::temp_dir().join(format!(
            "qcoral-recovery-{}-{parallel}.json",
            std::process::id()
        ));
        let wal = qcoral_service::store::wal_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        let opts = Options::strat_partcache()
            .with_samples(2_000)
            .with_seed(23)
            .with_parallel(parallel);

        let store = qcoral_service::PersistentStore::open(Some(path.clone()), 4096);
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(store.factor_store()))
            .analyze(&cs, &domain, &profile);
        assert!(cold.stats.samples_drawn > 0, "cold run must sample");
        // Crash simulation: the process dies before any save() — all
        // that reached disk is the WAL, plus a torn tmp of a snapshot
        // whose rename never happened.
        std::fs::write(path.with_extension("tmp"), "{\"version\": 2, \"entr").unwrap();
        drop(store);
        assert!(!path.exists(), "no snapshot must exist pre-recovery");
        assert!(wal.exists(), "the WAL is the only durable artifact");

        let store2 = qcoral_service::PersistentStore::open(Some(path.clone()), 4096);
        let report = store2.recovery_report().clone();
        assert!(report.recovered(), "parallel={parallel}: WAL recovery");
        assert!(report.wal_replayed_entries > 0);
        assert_eq!(report.wal_corrupt_entries, 0, "clean WAL, zero loss");
        let warm = Analyzer::new(opts)
            .with_factor_store(Arc::clone(store2.factor_store()))
            .analyze(&cs, &domain, &profile);
        assert_eq!(
            warm.estimate, cold.estimate,
            "parallel={parallel}: recovered estimate diverged"
        );
        assert_eq!(warm.per_pc, cold.per_pc);
        assert_eq!(warm.stats.samples_drawn, 0, "recovery must be fully warm");
        assert_eq!(warm.stats.pavings, 0);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal);
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }
}

/// Same recovery contract when the crash additionally tears the WAL's
/// final record mid-append: the torn tail is truncated away and every
/// complete record still recomposes bit-identically.
#[test]
fn recovery_with_torn_wal_tail_is_bit_identical() {
    let subjects = table3_subjects();
    let subj = subjects.iter().find(|s| s.name == "CORONARY").unwrap();
    let (domain, cs) = subj.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());
    let path =
        std::env::temp_dir().join(format!("qcoral-recovery-torn-{}.json", std::process::id()));
    let wal = qcoral_service::store::wal_path(&path);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
    let opts = Options::strat_partcache().with_samples(2_000).with_seed(7);

    let store = qcoral_service::PersistentStore::open(Some(path.clone()), 4096);
    let cold = Analyzer::new(opts.clone())
        .with_factor_store(Arc::clone(store.factor_store()))
        .analyze(&cs, &domain, &profile);
    drop(store);
    // Crash mid-append: a partial record with no terminating newline.
    let mut bytes = std::fs::read(&wal).expect("wal written");
    let complete_lines = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
    assert!(complete_lines > 0);
    bytes.extend_from_slice(b"{\"entry\": {\"opts_fp\": 99, \"finger");
    std::fs::write(&wal, &bytes).unwrap();

    let store2 = qcoral_service::PersistentStore::open(Some(path.clone()), 4096);
    let report = store2.recovery_report().clone();
    assert!(report.wal_torn_tail, "torn tail detected");
    assert_eq!(report.wal_replayed_entries, complete_lines);
    assert_eq!(report.wal_corrupt_entries, 0);
    let warm = Analyzer::new(opts)
        .with_factor_store(Arc::clone(store2.factor_store()))
        .analyze(&cs, &domain, &profile);
    assert_eq!(warm.estimate, cold.estimate, "torn-tail recovery diverged");
    assert_eq!(warm.stats.samples_drawn, 0);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal);
}

/// The adaptive importance-sampling engine under the full determinism
/// contract, over every closed-form rare-event subject: for a fixed
/// seed,
///
/// 1. repeated runs are bit-identical (the counter-derived proposal
///    RNG and the fixed chunk-fold reduction order leave nothing to the
///    schedule),
/// 2. serial and parallel runs agree bit-for-bit — the CI matrix
///    reruns this at `RAYON_NUM_THREADS=1` and `=4` — and
/// 3. a warm restart through a snapshot-absorbed `FactorStore`
///    recomposes the bit-identical estimate with zero pavings and zero
///    samples (IS fingerprint bits key the store exactly).
///
/// Subjects whose proposal degenerates (sin-peaks) ride the same loop:
/// the *fallback* decision and the stratified follow-up it triggers are
/// themselves part of the deterministic contract.
#[test]
fn importance_sampling_is_deterministic_and_restart_stable() {
    for subj in rare_subjects() {
        let (cs, domain, profile) = subj.system();
        let cache = Arc::new(PavingCache::new());
        let mut opts = Options::strat_partcache()
            .with_samples(8_192)
            .with_seed(29)
            .with_allocation(Allocation::ImportanceAdaptive);
        opts.paver.max_boxes = 128;

        let a = Analyzer::new(opts.clone())
            .with_paving_cache(Arc::clone(&cache))
            .analyze(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone())
            .with_paving_cache(Arc::clone(&cache))
            .analyze(&cs, &domain, &profile);
        assert_eq!(a.estimate, b.estimate, "{}: repeat runs", subj.name);
        assert_eq!(a.per_pc, b.per_pc, "{}: per-PC repeat", subj.name);
        // Every subject must at least reach the escalation decision;
        // the reachable ones must come out the IS side of it. (The
        // degenerate-fallback side is pinned in tests/statistics.rs.)
        assert!(
            a.stats.is_factors + a.stats.is_fallbacks > 0,
            "{}: escalation never ran",
            subj.name
        );
        if subj.is_reachable {
            assert!(a.stats.is_factors > 0, "{}: IS must engage", subj.name);
        }

        let c = Analyzer::new(opts.clone().with_parallel(true))
            .with_paving_cache(Arc::clone(&cache))
            .analyze(&cs, &domain, &profile);
        assert_eq!(a.estimate, c.estimate, "{}: parallel vs serial", subj.name);
        assert_eq!(a.per_pc, c.per_pc, "{}: per-PC parallel", subj.name);
        assert_eq!(
            a.stats.is_factors, c.stats.is_factors,
            "{}: escalation decisions must not depend on the schedule",
            subj.name
        );

        // Warm restart through a snapshot-style store round trip.
        let store = Arc::new(FactorStore::new(4096));
        let cold = Analyzer::new(opts.clone())
            .with_paving_cache(Arc::clone(&cache))
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &domain, &profile);
        assert_eq!(
            cold.estimate, a.estimate,
            "{}: store changed result",
            subj.name
        );
        let restarted = Arc::new(FactorStore::new(4096));
        restarted.absorb(store.entries());
        let warm = Analyzer::new(opts)
            .with_factor_store(restarted)
            .analyze(&cs, &domain, &profile);
        assert_eq!(
            warm.estimate, a.estimate,
            "{}: warm restart diverged",
            subj.name
        );
        assert_eq!(warm.per_pc, a.per_pc, "{}: warm per-PC", subj.name);
        assert_eq!(warm.stats.samples_drawn, 0, "{}: warm sampled", subj.name);
        assert_eq!(warm.stats.pavings, 0, "{}: warm paved", subj.name);
    }
}

/// The iterative engine's escalation pass under the same contract: a
/// round trajectory that hands rare factors to the IS engine must stay
/// bit-identical across repeats and schedules — every escalation
/// decision is a pure function of deterministic round estimates.
#[test]
fn iterative_importance_sampling_matches_across_schedules() {
    for subj in rare_subjects() {
        if !subj.is_reachable {
            continue;
        }
        let (cs, domain, profile) = subj.system();
        let cache = Arc::new(PavingCache::new());
        let mut opts = Options::strat_partcache()
            .with_samples(8_192)
            .with_seed(37)
            .with_allocation(Allocation::ImportanceAdaptive)
            .with_target_stderr(0.0)
            .with_round_budget(8_192)
            .with_max_rounds(3);
        opts.paver.max_boxes = 128;

        let a = Analyzer::new(opts.clone())
            .with_paving_cache(Arc::clone(&cache))
            .analyze_iterative(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone())
            .with_paving_cache(Arc::clone(&cache))
            .analyze_iterative(&cs, &domain, &profile);
        assert_eq!(a.estimate, b.estimate, "{}: repeat runs", subj.name);
        assert!(a.stats.is_factors > 0, "{}: IS must engage", subj.name);

        let c = Analyzer::new(opts.with_parallel(true))
            .with_paving_cache(Arc::clone(&cache))
            .analyze_iterative(&cs, &domain, &profile);
        assert_eq!(a.estimate, c.estimate, "{}: parallel vs serial", subj.name);
        assert_eq!(a.per_pc, c.per_pc, "{}: per-PC parallel", subj.name);
        assert_eq!(
            a.stats.rounds, c.stats.rounds,
            "{}: round trajectory differs",
            subj.name
        );
        assert_eq!(
            a.stats.samples_drawn, c.stats.samples_drawn,
            "{}",
            subj.name
        );
    }
}
