//! Statistical soundness of the reported variances: the numbers qCORAL
//! prints must *mean* something.
//!
//! For subjects with known ground truth, every engine — plain
//! hit-or-miss, ICP-stratified, and the iterative variance-driven
//! engine — is run many times under independent seeds, and the reported
//! variance must bracket the truth at (at least) the coverage a sound
//! variance bound implies: we require ≥ 90% of runs within
//! `3σ_reported + 3σ_truth` of the ground truth. Chebyshev alone
//! guarantees ≈ 88.9% for *exact* variances at 3σ; the composed
//! variance is an upper bound (Theorem 1) and the per-stratum
//! estimators are binomial, so real coverage sits near 99% — a run
//! under 90% means the variance accounting is broken, not unlucky.
//!
//! Ground truth is the paper's exact value where known (§4.4) and a
//! large fixed-seed direct Monte Carlo elsewhere, with its own 3σ folded
//! into the tolerance.
//!
//! The rare-event suite (`coverage_importance_sampling_rare_events`)
//! holds the adaptive importance-sampling engine to the same standard
//! on ~1e-8 probabilities with closed-form truth — a regime where the
//! stratified engines report `0 ± 0` — and
//! `degenerate_proposal_falls_back_deterministically` pins down the
//! engine's behavior when the proposal cannot find a single hit.

use std::sync::Arc;

use qcoral::{Analyzer, Options, Report};
use qcoral_constraints::parse::parse_system;
use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_icp::PavingCache;
use qcoral_mc::{Allocation, Moments, UsageProfile};
use qcoral_subjects::{rare_subjects, table3_subjects};
use qcoral_symexec::SymConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RUNS: u64 = 25;
const SAMPLES: u64 = 1_500;
/// Minimum fraction of runs whose reported 3σ interval covers the truth.
const MIN_COVERAGE: f64 = 0.9;
/// Sample budget of the rare-event (importance-sampling) runs: ~1e-8
/// probabilities need more draws than the percent-scale subjects above,
/// and still about six orders of magnitude fewer than direct sampling
/// would.
const RARE_SAMPLES: u64 = 16_384;
/// Paver budget of the rare-event runs: rare-event work wants a finer
/// paving than the paper's 10-box default, because the boundary boxes
/// both seed the IS proposal and bound the importance weights
/// (`w ≤ M_b/const` — the smaller the boundary mass, the lighter the
/// weight tail).
const RARE_BOXES: usize = 256;

/// Ground truth with its standard error: direct Monte Carlo over the
/// constraint set with a fixed seed, independent of every analyzer
/// path. Predicates run on compiled tapes — symexec-generated
/// expressions share sub-terms a plain tree walk re-evaluates
/// exponentially often (the INVPEND blowup).
fn ground_truth(cs: &ConstraintSet, domain: &Domain, n: u64) -> (f64, f64) {
    let tapes: Vec<qcoral_constraints::EvalTape> = cs
        .pcs()
        .iter()
        .map(qcoral_constraints::EvalTape::compile)
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x6706_1713);
    let bounds: Vec<(f64, f64)> = domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
    let mut p = vec![0.0; bounds.len()];
    let mut hits = 0u64;
    for _ in 0..n {
        for (x, &(lo, hi)) in p.iter_mut().zip(&bounds) {
            *x = rng.gen_range(lo..hi);
        }
        if tapes.iter().any(|t| t.holds(&p)) {
            hits += 1;
        }
    }
    let mean = hits as f64 / n as f64;
    (mean, (mean * (1.0 - mean) / n as f64).sqrt())
}

/// One engine under test: a name plus how to run it for a given seed.
struct Engine {
    name: &'static str,
    run: Box<dyn Fn(u64) -> Report>,
}

fn engines(cs: ConstraintSet, domain: Domain, profile: UsageProfile) -> Vec<Engine> {
    // One paving cache per engine family: seeds never change pavings, so
    // all RUNS runs pave once. (Plain never paves.)
    let strat_cache = Arc::new(PavingCache::new());
    let adaptive_cache = Arc::new(PavingCache::new());
    let mk = move |opts: Options, cache: Option<Arc<PavingCache>>, iterative: bool| {
        let (cs, domain, profile) = (cs.clone(), domain.clone(), profile.clone());
        Box::new(move |seed: u64| {
            let mut analyzer = Analyzer::new(opts.clone().with_seed(seed));
            if let Some(cache) = &cache {
                analyzer = analyzer.with_paving_cache(Arc::clone(cache));
            }
            if iterative {
                analyzer.analyze_iterative(&cs, &domain, &profile)
            } else {
                analyzer.analyze(&cs, &domain, &profile)
            }
        }) as Box<dyn Fn(u64) -> Report>
    };
    // The adaptive run chases an unreachable target for a few rounds, so
    // every run exercises cross-round merging and reallocation before
    // reporting its variance.
    let adaptive_opts = Options::strat_partcache()
        .with_samples(SAMPLES)
        .with_target_stderr(0.0)
        .with_round_budget(SAMPLES)
        .with_max_rounds(3);
    vec![
        Engine {
            name: "plain",
            run: mk(Options::plain().with_samples(SAMPLES), None, false),
        },
        Engine {
            name: "stratified",
            run: mk(
                Options::strat().with_samples(SAMPLES),
                Some(strat_cache),
                false,
            ),
        },
        Engine {
            name: "adaptive",
            run: mk(adaptive_opts, Some(adaptive_cache), true),
        },
    ]
}

/// Runs every engine `RUNS` times under a uniform profile and asserts
/// the coverage bound.
fn assert_coverage(subject: &str, cs: ConstraintSet, domain: Domain, truth: f64, truth_sigma: f64) {
    let profile = UsageProfile::uniform(domain.len());
    assert_coverage_with(subject, cs, domain, profile, truth, truth_sigma);
}

/// Runs every engine `RUNS` times under the given usage profile and
/// asserts the coverage bound.
fn assert_coverage_with(
    subject: &str,
    cs: ConstraintSet,
    domain: Domain,
    profile: UsageProfile,
    truth: f64,
    truth_sigma: f64,
) {
    for engine in engines(cs, domain, profile) {
        let mut covered = 0u64;
        let mut dispersion = Moments::default();
        let mut worst: Option<(f64, f64)> = None;
        for seed in 0..RUNS {
            let r = (engine.run)(seed);
            let err = (r.estimate.mean - truth).abs();
            let tolerance = 3.0 * r.estimate.std_dev() + 3.0 * truth_sigma + 1e-12;
            if err <= tolerance {
                covered += 1;
            } else if worst.is_none_or(|(w, _)| err > w) {
                worst = Some((err, r.estimate.std_dev()));
            }
            dispersion.push(r.estimate.mean);
        }
        let coverage = covered as f64 / RUNS as f64;
        assert!(
            coverage >= MIN_COVERAGE,
            "{subject}/{}: only {covered}/{RUNS} runs within 3σ of truth {truth} \
             (worst miss {worst:?}, run dispersion σ {:.3e})",
            engine.name,
            dispersion.sample_variance().sqrt(),
        );
        // Sanity on the other side: the runs actually scatter around the
        // truth, not somewhere else entirely.
        assert!(
            (dispersion.mean() - truth).abs() <= 5.0 * truth_sigma + 0.02,
            "{subject}/{}: run mean {} far from truth {truth}",
            engine.name,
            dispersion.mean(),
        );
    }
}

/// The paper's §4.4 worked example, with the exact probability the paper
/// reports — no Monte Carlo truth needed.
#[test]
fn coverage_paper_safety_monitor() {
    let sys = parse_system(
        "var altitude in [0, 20000];
         var headFlap in [-10, 10];
         var tailFlap in [-10, 10];
         pc altitude > 9000;
         pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
    )
    .unwrap();
    assert_coverage(
        "safety-monitor",
        sys.constraint_set,
        sys.domain,
        0.737848,
        0.0,
    );
}

fn volcomp_system(name: &str, idx: usize) -> (Domain, ConstraintSet) {
    let subjects = table3_subjects();
    let subj = subjects
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("subject {name} exists"));
    subj.system_for(idx, &SymConfig::default())
}

#[test]
fn coverage_volcomp_cart() {
    let (domain, cs) = volcomp_system("CART", 1); // count >= 1
    let (truth, sigma) = ground_truth(&cs, &domain, 200_000);
    assert_coverage("CART[count>=1]", cs, domain, truth, sigma);
}

#[test]
fn coverage_volcomp_invpend() {
    let (domain, cs) = volcomp_system("INVPEND", 0);
    let (truth, sigma) = ground_truth(&cs, &domain, 200_000);
    assert_coverage("INVPEND", cs, domain, truth, sigma);
}

#[test]
fn coverage_volcomp_vol() {
    let (domain, cs) = volcomp_system("VOL", 0); // count >= 20
    let (truth, sigma) = ground_truth(&cs, &domain, 200_000);
    assert_coverage("VOL", cs, domain, truth, sigma);
}

/// Non-uniform ground truth, closed form: `P[x < 0.5]` under
/// `N(0.5, 0.1)` truncated to `[0, 1]` is exactly 1/2 by symmetry, and
/// the `y` factor's probability under its uniform marginal is an
/// interval length — so the product truth needs no Monte Carlo at all.
#[test]
fn coverage_nonuniform_truncated_normal() {
    use qcoral_mc::Dist;
    let sys = parse_system(
        "var x in [0, 1]; var y in [0, 1];
         pc x < 0.5 && sin(3 * y) > 0.5;",
    )
    .unwrap();
    let profile = UsageProfile::uniform(2).with_dist(0, Dist::truncated_normal(0.5, 0.1, 0.0, 1.0));
    // sin(3y) > 0.5 ⇔ 3y ∈ (π/6, 5π/6) ⇔ y ∈ (π/18, 5π/18): length 2π/9.
    let truth = 0.5 * (2.0 * std::f64::consts::PI / 9.0);
    assert_coverage_with(
        "TN-safety",
        sys.constraint_set,
        sys.domain,
        profile,
        truth,
        0.0,
    );
}

/// Same harness under an exponential marginal:
/// `P[x < 0.5 | x ∈ [0, 1]] = (1 − e⁻¹)/(1 − e⁻²)` for `x ~ Exp(2)`.
#[test]
fn coverage_nonuniform_exponential() {
    use qcoral_mc::Dist;
    let sys = parse_system(
        "var x in [0, 1]; var y in [0, 1];
         pc x < 0.5 && sin(3 * y) > 0.5;",
    )
    .unwrap();
    let profile = UsageProfile::uniform(2).with_dist(0, Dist::exponential(2.0));
    let px = (1.0 - (-1.0f64).exp()) / (1.0 - (-2.0f64).exp());
    let truth = px * (2.0 * std::f64::consts::PI / 9.0);
    assert_coverage_with(
        "Exp-safety",
        sys.constraint_set,
        sys.domain,
        profile,
        truth,
        0.0,
    );
}

/// Rare-event coverage of the adaptive importance-sampling engine
/// ([`Allocation::ImportanceAdaptive`]): on every closed-form ~1e-8
/// subject, at least 90% of 25 seeded one-shot runs must land within
/// `3σ_reported` of the exact truth, and every run must actually have
/// escalated to IS (no silent fallbacks). The classic stratified
/// engines are structurally unable to do this at any comparable budget
/// — nearly every stratum reports zero hits and `0 ± 0` — which is
/// exactly the failure mode the IS escalation exists to fix.
#[test]
fn coverage_importance_sampling_rare_events() {
    for subj in rare_subjects() {
        let (cs, domain, profile) = subj.system();
        let truth = subj.truth();
        let cache = Arc::new(PavingCache::new());
        let mut covered = 0u64;
        let mut escalated = 0u64;
        let mut dispersion = Moments::default();
        let mut worst: Option<(f64, f64)> = None;
        for seed in 0..RUNS {
            let mut opts = Options::strat()
                .with_samples(RARE_SAMPLES)
                .with_seed(seed)
                .with_allocation(Allocation::ImportanceAdaptive);
            opts.paver.max_boxes = RARE_BOXES;
            let r = Analyzer::new(opts)
                .with_paving_cache(Arc::clone(&cache))
                .analyze(&cs, &domain, &profile);
            if r.stats.is_factors > 0 {
                escalated += 1;
            }
            let err = (r.estimate.mean - truth).abs();
            if err <= 3.0 * r.estimate.std_dev() + 1e-14 {
                covered += 1;
            } else if worst.is_none_or(|(w, _)| err > w) {
                worst = Some((err, r.estimate.std_dev()));
            }
            dispersion.push(r.estimate.mean);
        }
        assert_eq!(
            escalated, RUNS,
            "{}: every run must escalate to IS",
            subj.name
        );
        let coverage = covered as f64 / RUNS as f64;
        assert!(
            coverage >= MIN_COVERAGE,
            "{}: only {covered}/{RUNS} IS runs within 3σ of truth {truth:.4e} \
             (worst miss {worst:?})",
            subj.name,
        );
        // The runs scatter around the truth itself, not around some
        // other value with coincidentally wide error bars.
        assert!(
            (dispersion.mean() - truth).abs() <= 0.5 * truth,
            "{}: run mean {:.4e} far from truth {truth:.4e}",
            subj.name,
            dispersion.mean(),
        );
    }
}

/// A proposal whose pilot round finds zero hits is degenerate, and the
/// analyzer's reaction is *deterministic*: fall back to the stratified
/// Neyman follow-up and flag it in [`qcoral::Stats::is_fallbacks`].
/// The sin-peaks subject at the paper's default 10-box paving is
/// engineered to trigger this: the satisfying needles occupy ~1e-7 of
/// the coarse peak boxes, so no IS pilot at this budget ever hits one.
#[test]
fn degenerate_proposal_falls_back_deterministically() {
    let subj = rare_subjects()
        .into_iter()
        .find(|s| !s.is_reachable)
        .expect("a designed-fallback subject exists");
    let (cs, domain, profile) = subj.system();
    let run = |seed: u64| {
        // Default paver: 10 boxes, too coarse for the needles.
        let opts = Options::strat()
            .with_samples(8_192)
            .with_seed(seed)
            .with_allocation(Allocation::ImportanceAdaptive);
        Analyzer::new(opts).analyze(&cs, &domain, &profile)
    };
    for seed in [1, 7, 42] {
        let r = run(seed);
        assert_eq!(r.stats.is_fallbacks, 1, "seed {seed}: fallback flagged");
        assert_eq!(r.stats.is_factors, 0, "seed {seed}: no IS factor");
        // Same seed, same degenerate pilot, same fallback estimate.
        let again = run(seed);
        assert_eq!(r.estimate.mean.to_bits(), again.estimate.mean.to_bits());
        assert_eq!(
            r.estimate.variance.to_bits(),
            again.estimate.variance.to_bits()
        );
    }
}

/// Exact subjects must be *exactly* right with zero reported variance,
/// under every engine that can see the exactness (the plain engine has
/// no ICP, so it is only required to cover).
#[test]
fn exact_subjects_report_zero_variance_truthfully() {
    let sys = parse_system(
        "var x in [-2, 2]; var y in [-2, 2];
         pc x >= -1 && x <= 1 && y >= -1 && y <= 1;",
    )
    .unwrap();
    let profile = UsageProfile::uniform(2);
    for (name, report) in [
        (
            "stratified",
            Analyzer::new(Options::strat().with_samples(200)).analyze(
                &sys.constraint_set,
                &sys.domain,
                &profile,
            ),
        ),
        (
            "adaptive",
            Analyzer::new(
                Options::strat_partcache()
                    .with_samples(200)
                    .with_target_stderr(0.0)
                    .with_max_rounds(5),
            )
            .analyze_iterative(&sys.constraint_set, &sys.domain, &profile),
        ),
    ] {
        assert_eq!(report.estimate.variance, 0.0, "{name}");
        assert!(
            (report.estimate.mean - 0.25).abs() < 1e-12,
            "{name}: {}",
            report.estimate.mean
        );
    }
}
