//! End-to-end pipeline tests: MiniJ program → symbolic execution →
//! qCORAL quantification, validated against concrete simulation of the
//! same program (differential testing across the whole stack).

use qcoral::{Analyzer, Options};
use qcoral_mc::UsageProfile;
use qcoral_symexec::{parse_program, run, symbolic_execute, Outcome, SymConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Estimates the target probability by concretely executing the program
/// on uniform samples — the ground truth for the symbolic pipeline.
fn simulate(src: &str, n: u64, seed: u64) -> f64 {
    let prog = parse_program(src).expect("program parses");
    let bounds: Vec<(f64, f64)> = prog.params.iter().map(|(_, lo, hi)| (*lo, *hi)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inputs = vec![0.0; bounds.len()];
    let mut hits = 0u64;
    for _ in 0..n {
        for (x, &(lo, hi)) in inputs.iter_mut().zip(&bounds) {
            *x = if lo == hi { lo } else { rng.gen_range(lo..hi) };
        }
        if run(&prog, &inputs, 100_000) == Outcome::Target {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

/// Quantifies the same program through the symbolic pipeline.
fn quantify(src: &str, opts: Options) -> f64 {
    let prog = parse_program(src).expect("program parses");
    let sym = symbolic_execute(&prog, &SymConfig::default());
    assert!(
        sym.bound_hit.is_empty(),
        "test programs must be fully explorable"
    );
    let profile = UsageProfile::uniform(sym.domain.len());
    Analyzer::new(opts)
        .analyze(&sym.target, &sym.domain, &profile)
        .estimate
        .mean
}

fn check_agreement(src: &str, tolerance: f64) {
    let truth = simulate(src, 200_000, 17);
    for (label, opts) in [
        ("plain", Options::plain().with_samples(40_000)),
        ("strat", Options::strat().with_samples(40_000)),
        (
            "strat+partcache",
            Options::strat_partcache().with_samples(40_000),
        ),
    ] {
        let est = quantify(src, opts);
        assert!(
            (est - truth).abs() < tolerance,
            "{label}: estimate {est} vs simulated {truth}"
        );
    }
}

#[test]
fn safety_monitor_matches_simulation() {
    check_agreement(
        "program monitor(altitude in [0, 20000], headFlap in [-10, 10], tailFlap in [-10, 10]) {
           if (altitude <= 9000) {
             if (sin(headFlap * tailFlap) > 0.25) { target(); }
           } else { target(); }
         }",
        0.01,
    );
}

#[test]
fn branching_dataflow_matches_simulation() {
    check_agreement(
        "program p(x in [0, 2], y in [-1, 1]) {
           double a = x * x - y;
           double b = 0;
           if (a > 1) { b = a - 1; } else { b = 1 - a; }
           if (b * b < 0.5 && x + y > 0.3) { target(); }
         }",
        0.015,
    );
}

#[test]
fn concrete_loop_matches_simulation() {
    check_agreement(
        "program p(x in [0, 1], y in [0, 1]) {
           double acc = 0;
           double i = 0;
           while (i < 5) { acc = acc + x * y; i = i + 1; }
           if (acc > 1) { target(); }
         }",
        0.01,
    );
}

#[test]
fn symbolic_loop_matches_simulation() {
    // The loop's exit iteration depends on the input; all paths complete
    // within the depth bound because the gain is bounded below.
    check_agreement(
        "program p(rate in [0.25, 1]) {
           double level = 0;
           double n = 0;
           while (level < 2 && n < 10) { level = level + rate; n = n + 1; }
           if (n >= 5) { target(); }
         }",
        0.01,
    );
}

#[test]
fn transcendental_heavy_matches_simulation() {
    check_agreement(
        "program p(a in [-3, 3], b in [-3, 3]) {
           double r = sqrt(a * a + b * b);
           if (r > 0.5) {
             double ang = atan2(b, a);
             if (cos(ang) > 0.3 && r < 2.5) { target(); }
           }
         }",
        0.015,
    );
}

#[test]
fn disjoint_pcs_partition_the_hit_region() {
    // For every sampled input, *exactly one* complete-path PC holds, and
    // it is a target PC iff the concrete run hits the target.
    let src = "program p(x in [0, 1], y in [0, 1]) {
       if (x < 0.3 || y < 0.6) {
         if (x + y > 0.5) { target(); }
       } else {
         if (x * y > 0.5) { target(); }
       }
     }";
    let prog = parse_program(src).unwrap();
    let sym = symbolic_execute(&prog, &SymConfig::default());
    let mut rng = SmallRng::seed_from_u64(5);
    for _ in 0..2_000 {
        let p = [rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)];
        let holding: Vec<bool> = sym
            .complete
            .iter()
            .filter(|(pc, _)| pc.holds(&p))
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(
            holding.len(),
            1,
            "input {p:?} satisfied {} PCs",
            holding.len()
        );
        let concrete = run(&prog, &p, 10_000) == Outcome::Target;
        assert_eq!(holding[0], concrete, "symbolic/concrete disagree at {p:?}");
    }
}

#[test]
fn bound_hit_mass_bounds_confidence() {
    // §3.1: the probability of the bound-hit set measures confidence.
    // With a tight depth bound, target + no_target + bound_hit masses
    // must still sum to ~1.
    let src = "program p(rate in [0.1, 1]) {
       double level = 0;
       double n = 0;
       while (level < 3 && n < 40) { level = level + rate; n = n + 1; }
       target();
     }";
    let prog = parse_program(src).unwrap();
    let cfg = SymConfig {
        max_depth: 12,
        ..SymConfig::default()
    };
    let sym = symbolic_execute(&prog, &cfg);
    assert!(!sym.bound_hit.is_empty(), "depth 12 must cut some paths");
    let profile = UsageProfile::uniform(1);
    let analyzer = Analyzer::new(Options::strat().with_samples(20_000));
    let pt = analyzer
        .analyze(&sym.target, &sym.domain, &profile)
        .estimate
        .mean;
    let pf = analyzer
        .analyze(&sym.no_target, &sym.domain, &profile)
        .estimate
        .mean;
    let pb = analyzer
        .analyze(&sym.bound_hit, &sym.domain, &profile)
        .estimate
        .mean;
    let total = pt + pf + pb;
    assert!((total - 1.0).abs() < 0.02, "masses sum to {total}");
    assert!(pb > 0.0);
}
