//! Tests pinning the paper's headline quantitative claims — the "shape"
//! of every table, at reduced budgets so the suite stays fast.

use qcoral::{Analyzer, Options};
use qcoral_baselines::{adaptive_probability, volcomp_bounds, AdaptiveConfig, VolCompConfig};
use qcoral_constraints::parse::parse_system;
use qcoral_icp::domain_box;
use qcoral_mc::UsageProfile;
use qcoral_subjects::{aerospace_subjects_with, all_solids, table3_subjects};
use qcoral_symexec::SymConfig;

/// §4.4: the worked example's exact probability is 0.737848; qCORAL's
/// composition (Eq. 5–8) reproduces it.
#[test]
fn section_4_4_worked_example() {
    let sys = parse_system(
        "var altitude in [0, 20000];
         var headFlap in [-10, 10];
         var tailFlap in [-10, 10];
         pc altitude > 9000;
         pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
    )
    .unwrap();
    let profile = UsageProfile::uniform(3);
    let report = Analyzer::new(Options::strat_partcache().with_samples(60_000).with_seed(1))
        .analyze(&sys.constraint_set, &sys.domain, &profile);
    // PCT1 is a pure box: exact 0.55 with variance 0.
    assert!((report.per_pc[0].mean - 0.55).abs() < 1e-9);
    assert_eq!(report.per_pc[0].variance, 0.0);
    // Combined estimate near the exact value.
    assert!((report.estimate.mean - 0.737848).abs() < 0.01);
    // The reported variance is small (paper: ~1.6e-6 at their budgets).
    assert!(report.estimate.variance < 1e-4);
}

/// Table 1: stratified sampling with the paper's four boxes cuts variance
/// by well over an order of magnitude at 10⁴ samples.
#[test]
fn table1_variance_reduction_factor() {
    let rows = qcoral_bench::table1::run(10_000, 99);
    let plain = rows[0].variance;
    let strat = rows[1].variance;
    // The paper reports .19131 → .00586 (factor ≈ 33) for the *population*
    // variance; our per-estimator variances show the same order-of-
    // magnitude drop.
    assert!(
        strat < plain / 10.0,
        "stratified {strat} vs plain {plain}: expected ≥10x reduction"
    );
}

/// Table 2 shape: the Cube row is exact (σ = 0) at every budget; errors
/// shrink as budgets grow for the non-exact rows.
#[test]
fn table2_shape() {
    let solids = all_solids();
    let cube = solids.iter().find(|s| s.name == "Cube").unwrap();
    let row = qcoral_bench::table2::run_one(cube, 1_000, 5, 3);
    assert_eq!(row.error_sigma, 0.0);
    assert_eq!(row.estimate, 8.0);

    let sphere = solids.iter().find(|s| s.name == "Sphere").unwrap();
    let s1k = qcoral_bench::table2::run_one(sphere, 1_000, 10, 3);
    let s100k = qcoral_bench::table2::run_one(sphere, 100_000, 10, 3);
    assert!(s100k.error_sigma < s1k.error_sigma);
    assert!((s100k.estimate - sphere.analytic_volume).abs() / sphere.analytic_volume < 0.01);
}

/// Table 3 shape: on a linear subject all three methods agree; the
/// qCORAL estimate falls inside the VolComp bounds (the paper's
/// consistency observation).
#[test]
fn table3_methods_consistent_on_linear_subject() {
    let subjects = table3_subjects();
    let egfr = subjects
        .iter()
        .find(|s| s.name == "EGFR EPI (SIMPLE)")
        .unwrap();
    let (domain, cs) = egfr.system_for(0, &SymConfig::default());
    let dbox = domain_box(&domain);
    let profile = UsageProfile::uniform(domain.len());

    let adaptive = adaptive_probability(&cs, &dbox, &AdaptiveConfig::default());
    let bounds = volcomp_bounds(&cs, &dbox, &VolCompConfig::default());
    let report = Analyzer::new(Options::strat_partcache().with_samples(30_000).with_seed(5))
        .analyze(&cs, &domain, &profile);

    let sigma = report.std_dev().max(1e-3);
    assert!(
        report.estimate.mean >= bounds.lo - 3.0 * sigma
            && report.estimate.mean <= bounds.hi + 3.0 * sigma,
        "qCORAL {} outside VolComp {bounds}",
        report.estimate.mean
    );
    assert!(
        (adaptive.value - report.estimate.mean).abs() < 0.02 + 3.0 * sigma,
        "adaptive {} vs qCORAL {}",
        adaptive.value,
        report.estimate.mean
    );
}

/// Table 3 shape: PACK's totalWeight assertions couple all inputs, so
/// the dependency partition is a single class (the paper's explanation
/// for its slow rows), while ATRIAL's folded-score assertions decompose.
#[test]
fn table3_dependence_structure() {
    use qcoral::dependency_partition;
    let subjects = table3_subjects();

    let pack = subjects.iter().find(|s| s.name == "PACK").unwrap();
    let (pdom, pcs) = pack.system_for(4, &SymConfig::default()); // totalWeight >= 6
    let classes = dependency_partition(&pcs, pdom.len());
    let largest = classes.iter().map(|c| c.count()).max().unwrap();
    assert!(largest >= 7, "PACK totalWeight couples (almost) all inputs");

    let atrial = subjects.iter().find(|s| s.name == "ATRIAL").unwrap();
    let (adom, acs) = atrial.system_for(0, &SymConfig::default()); // points >= 10
    let aclasses = dependency_partition(&acs, adom.len());
    assert_eq!(
        aclasses.len(),
        adom.len(),
        "ATRIAL bracket constraints are univariate: every input its own class"
    );
}

/// Table 4 shape: on Apollo, STRAT reduces σ vs plain, and PARTCACHE is
/// not slower than STRAT alone while agreeing on the estimate.
#[test]
fn table4_shape_on_apollo() {
    let subj = &aerospace_subjects_with(3)[0];
    let rows = qcoral_bench::table4::run_subject(subj, &[4_000], 21);
    let by = |label: &str| {
        rows.iter()
            .find(|r| r.config == label)
            .unwrap_or_else(|| panic!("row {label}"))
    };
    let plain = by("qCORAL{}");
    let strat = by("qCORAL{STRAT}");
    let cache = by("qCORAL{STRAT,PARTCACHE}");
    assert!(
        strat.sigma <= plain.sigma,
        "STRAT sigma {} vs plain {}",
        strat.sigma,
        plain.sigma
    );
    assert!(
        (cache.estimate - strat.estimate).abs() < 0.05,
        "PARTCACHE changes the estimate: {} vs {}",
        cache.estimate,
        strat.estimate
    );
    assert!(
        cache.sigma <= strat.sigma * 1.5,
        "PARTCACHE sigma should stay comparable"
    );
}

/// VOL-style failure mode: with a tiny budget VolComp returns near-vacuous
/// bounds while qCORAL still reports a usable estimate (the paper's VOL
/// row).
#[test]
fn volcomp_degenerates_where_qcoral_does_not() {
    let sys = parse_system(
        "var x in [-10, 10]; var y in [-10, 10];
         pc sin(x * y) > 0.25 && cos(x + y) < 0.9;",
    )
    .unwrap();
    let dbox = domain_box(&sys.domain);
    let bounds = volcomp_bounds(
        &sys.constraint_set,
        &dbox,
        &VolCompConfig {
            max_boxes_per_pc: 4,
            ..VolCompConfig::default()
        },
    );
    assert!(
        bounds.width() > 0.5,
        "tiny budget keeps bounds wide: {bounds}"
    );

    let profile = UsageProfile::uniform(2);
    let report = Analyzer::new(Options::strat().with_samples(30_000).with_seed(2)).analyze(
        &sys.constraint_set,
        &sys.domain,
        &profile,
    );
    assert!(report.std_dev() < 0.02, "qCORAL sigma {}", report.std_dev());
    assert!(bounds.contains(report.estimate.mean));
}
