//! Property-based tests over the whole pipeline: for randomly generated
//! constraint systems, the three quantification methods must stay
//! mutually consistent and all soundness invariants must hold.

use proptest::prelude::*;
use qcoral::{Analyzer, Options};
use qcoral_baselines::{volcomp_bounds, VolCompConfig};
use qcoral_constraints::{Atom, ConstraintSet, Domain, Expr, PathCondition, RelOp, VarId};
use qcoral_icp::{domain_box, pave, PaverConfig};
use qcoral_mc::UsageProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random linear atom over `nvars` variables.
fn linear_atom(nvars: usize) -> impl Strategy<Value = Atom> {
    (
        prop::collection::vec(-2.0f64..2.0, nvars),
        -1.5f64..1.5,
        prop_oneof![
            Just(RelOp::Le),
            Just(RelOp::Lt),
            Just(RelOp::Ge),
            Just(RelOp::Gt)
        ],
    )
        .prop_map(move |(coefs, bias, op)| {
            let mut lhs = Expr::constant(0.0);
            for (i, c) in coefs.iter().enumerate() {
                lhs = lhs.add(Expr::constant(*c).mul(Expr::var(VarId(i as u32))));
            }
            Atom::new(lhs, op, Expr::constant(bias))
        })
}

/// Strategy: a random non-linear atom (quadratic / trig over 2 vars).
fn nonlinear_atom() -> impl Strategy<Value = Atom> {
    (0u8..4, -1.0f64..1.0).prop_map(|(kind, c)| {
        let x = Expr::var(VarId(0));
        let y = Expr::var(VarId(1));
        let lhs = match kind {
            0 => x.clone().mul(x).add(y.clone().mul(y)),
            1 => x.mul(y).sin(),
            2 => x.clone().mul(x).sqrt().sub(y),
            _ => x.add(y.cos()),
        };
        Atom::new(lhs, RelOp::Le, Expr::constant(1.0 + c))
    })
}

fn domain2() -> Domain {
    let mut d = Domain::new();
    d.declare("x", -1.0, 1.0).unwrap();
    d.declare("y", -1.0, 1.0).unwrap();
    d
}

/// Direct Monte Carlo ground truth for a constraint set.
fn ground_truth(cs: &ConstraintSet, domain: &Domain, n: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(424242);
    let bounds: Vec<(f64, f64)> = domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
    let mut p = vec![0.0; bounds.len()];
    let mut hits = 0u64;
    for _ in 0..n {
        for (x, &(lo, hi)) in p.iter_mut().zip(&bounds) {
            *x = rng.gen_range(lo..hi);
        }
        if cs.holds(&p) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Pavings never lose solutions: every sampled satisfying point is
    /// covered by some box of the paving.
    #[test]
    fn paving_soundness(atoms in prop::collection::vec(linear_atom(2), 1..4)) {
        let domain = domain2();
        let dbox = domain_box(&domain);
        let pc = PathCondition::from_atoms(atoms);
        let paving = pave(&pc, &dbox, &PaverConfig::default());
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..300 {
            let p = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            if pc.holds(&p) {
                prop_assert!(
                    paving.all_boxes().any(|b| b.contains_point(&p)),
                    "paving lost solution {p:?} of {pc}"
                );
            }
        }
    }

    /// Inner boxes only contain solutions.
    #[test]
    fn inner_box_purity(atoms in prop::collection::vec(linear_atom(2), 1..4)) {
        let domain = domain2();
        let dbox = domain_box(&domain);
        let pc = PathCondition::from_atoms(atoms);
        let paving = pave(&pc, &dbox, &PaverConfig { max_boxes: 32, ..PaverConfig::default() });
        let mut rng = SmallRng::seed_from_u64(11);
        for b in &paving.inner {
            for _ in 0..20 {
                let p: Vec<f64> = (0..2)
                    .map(|i| {
                        let iv = b[i];
                        if iv.width() == 0.0 { iv.lo() } else { rng.gen_range(iv.lo()..iv.hi()) }
                    })
                    .collect();
                prop_assert!(pc.holds(&p), "inner box {b} contains non-solution {p:?}");
            }
        }
    }

    /// qCORAL's estimate matches direct Monte Carlo ground truth, and
    /// the VolComp bounds contain (approximately) both.
    #[test]
    fn methods_agree_on_linear_systems(
        pcs in prop::collection::vec(prop::collection::vec(linear_atom(2), 1..3), 1..3)
    ) {
        let domain = domain2();
        // Make the disjuncts disjoint by splitting on x ≤ 0 / x > 0 when
        // there are two of them.
        let mut sets = Vec::new();
        let n = pcs.len();
        for (i, atoms) in pcs.into_iter().enumerate() {
            let mut pc = PathCondition::from_atoms(atoms);
            if n == 2 {
                let split = Atom::new(
                    Expr::var(VarId(0)),
                    if i == 0 { RelOp::Le } else { RelOp::Gt },
                    Expr::constant(0.0),
                );
                pc.push(split);
            }
            sets.push(pc);
        }
        let cs = ConstraintSet::from_pcs(sets);
        let truth = ground_truth(&cs, &domain, 60_000);
        let profile = UsageProfile::uniform(2);
        let report = Analyzer::new(Options::strat_partcache().with_samples(20_000).with_seed(3))
            .analyze(&cs, &domain, &profile);
        prop_assert!(
            (report.estimate.mean - truth).abs() < 0.03,
            "qCORAL {} vs truth {truth} for {cs}",
            report.estimate.mean
        );
        let bounds = volcomp_bounds(&cs, &domain_box(&domain), &VolCompConfig {
            max_boxes_per_pc: 512,
            ..VolCompConfig::default()
        });
        prop_assert!(
            truth >= bounds.lo - 0.02 && truth <= bounds.hi + 0.02,
            "truth {truth} outside bounds {bounds} for {cs}"
        );
    }

    /// Non-linear single-PC systems: qCORAL tracks ground truth.
    #[test]
    fn qcoral_matches_truth_nonlinear(atoms in prop::collection::vec(nonlinear_atom(), 1..3)) {
        let domain = domain2();
        let cs = ConstraintSet::from_pcs(vec![PathCondition::from_atoms(atoms)]);
        let truth = ground_truth(&cs, &domain, 60_000);
        let profile = UsageProfile::uniform(2);
        let report = Analyzer::new(Options::strat().with_samples(20_000).with_seed(9))
            .analyze(&cs, &domain, &profile);
        prop_assert!(
            (report.estimate.mean - truth).abs() < 0.03,
            "qCORAL {} vs truth {truth} for {cs}",
            report.estimate.mean
        );
    }

    /// Determinism: same options ⇒ identical reports, including under
    /// parallel analysis.
    #[test]
    fn analysis_is_deterministic(atoms in prop::collection::vec(linear_atom(2), 1..3), seed in 0u64..1000) {
        let domain = domain2();
        let cs = ConstraintSet::from_pcs(vec![PathCondition::from_atoms(atoms)]);
        let profile = UsageProfile::uniform(2);
        let opts = Options::strat_partcache().with_samples(2_000).with_seed(seed);
        let a = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        let b = Analyzer::new(opts.clone()).analyze(&cs, &domain, &profile);
        prop_assert_eq!(a.estimate, b.estimate);
        let c = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &domain, &profile);
        prop_assert_eq!(a.estimate, c.estimate);
    }
}
