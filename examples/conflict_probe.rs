//! Probabilistic analysis of the TSAFE-style Conflict Probe (the paper's
//! §6.3 aerospace case study): how likely are two aircraft, with
//! uncertain positions, headings and speeds, to come within separation
//! distance inside the look-ahead horizon?
//!
//! Run with: `cargo run --release --example conflict_probe`

use qcoral::{Analyzer, Options};
use qcoral_mc::UsageProfile;
use qcoral_subjects::aerospace::conflict_source;
use qcoral_symexec::{parse_program, run, symbolic_execute, Outcome, SymConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let source = conflict_source();
    let program = parse_program(&source).expect("the conflict probe parses");
    let sym = symbolic_execute(&program, &SymConfig::default());

    println!(
        "Conflict Probe: {} complete paths, {} reach a conflict, {} pruned as infeasible",
        sym.paths,
        sym.target.len(),
        sym.pruned
    );

    let profile = UsageProfile::uniform(sym.domain.len());
    for (label, opts) in [
        ("qCORAL{}", Options::plain()),
        ("qCORAL{STRAT}", Options::strat()),
        ("qCORAL{STRAT,PARTCACHE}", Options::strat_partcache()),
    ] {
        let report = Analyzer::new(opts.with_samples(20_000).with_seed(7)).analyze(
            &sym.target,
            &sym.domain,
            &profile,
        );
        println!(
            "{:<26} P(conflict) = {:.5}  sigma = {:.2e}  ({:.0} ms)",
            label,
            report.estimate.mean,
            report.std_dev(),
            report.wall.as_secs_f64() * 1e3
        );
    }

    // Cross-validate against straight concrete simulation of the program.
    let mut rng = SmallRng::seed_from_u64(123);
    let bounds: Vec<(f64, f64)> = sym.domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
    let n = 100_000;
    let mut hits = 0u64;
    let mut inputs = vec![0.0; bounds.len()];
    for _ in 0..n {
        for (x, &(lo, hi)) in inputs.iter_mut().zip(&bounds) {
            *x = rng.gen_range(lo..hi);
        }
        if run(&program, &inputs, 10_000) == Outcome::Target {
            hits += 1;
        }
    }
    println!(
        "concrete simulation        P(conflict) = {:.5}  ({} runs)",
        hits as f64 / n as f64,
        n
    );
}
