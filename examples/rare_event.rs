//! Rare-event quantification against the service: a ~1e-8 failure
//! probability, answered cold, then warm, then warm again across a
//! simulated server restart — all three answers bit-identical.
//!
//! The subject is the rare suite's `sum-tail-2d`: two independent
//! standard-normal inputs, failure when their sum exceeds 7.92, true
//! probability `Φ(-7.92/√2) ≈ 1.07e-8`. Plain stratified sampling at
//! this budget reports `0 ± 0` — nearly every stratum sees no hit — so
//! the request opts into [`Allocation::ImportanceAdaptive`]: factors
//! whose pilot estimate falls below the escalation threshold hand their
//! boundary budget to the paver-seeded adaptive importance-sampling
//! engine. Rare-event work also wants a finer paving than the 10-box
//! default (the boundary boxes both seed the proposal and bound the
//! importance weights), hence `paver.max_boxes = 128`.
//!
//! Run with: `cargo run --release --example rare_event`
//!
//! Expected output (exact numbers are seed-stable across runs and
//! machines):
//!
//! ```text
//! truth          1.0700e-8  (closed form)
//! cold   answer  1.0707e-8 ± 3.4e-11   (65536 samples, 1 paving, escalated to IS)
//! warm   answer  1.0707e-8 ± 3.4e-11   (0 samples, 0 pavings — factor-store hit)
//! restart answer 1.0707e-8 ± 3.4e-11   (0 samples — recovered from snapshot)
//! all three answers bit-identical: true
//! ```

use qcoral::Options;
use qcoral_mc::Allocation;
use qcoral_service::{AnalysisResponse, Client, Server, ServiceConfig};
use qcoral_subjects::rare_subjects;

fn main() {
    let subj = rare_subjects()
        .into_iter()
        .find(|s| s.name == "sum-tail-2d")
        .expect("rare suite has sum-tail-2d");
    let (_cs, _domain, profile) = subj.system();
    println!("truth          {:.4e}  (closed form)", subj.truth());

    // The rare-event recipe: IS escalation plus a fine paving.
    let mut options = Options::strat_partcache()
        .with_samples(65_536)
        .with_seed(7)
        .with_allocation(Allocation::ImportanceAdaptive);
    options.paver.max_boxes = 128;

    // A snapshot path lets the factor store survive the restart below.
    let snapshot =
        std::env::temp_dir().join(format!("qcoral-rare-event-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);
    let config = || ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };

    let server = Server::start(config()).expect("server starts");
    let mut client = Client::connect(server.addr()).expect("client connects");
    let ask = |client: &mut Client| -> AnalysisResponse {
        client
            .analyze_system(subj.source, options.clone(), Some(profile.clone()))
            .expect("request succeeds")
    };

    // Cold: paves, escalates to IS, samples.
    let cold = ask(&mut client);
    let s = &cold.report.stats;
    assert!(s.is_factors > 0, "pilot must escalate to IS");
    println!(
        "cold   answer  {:.4e} ± {:.1e}   ({} samples, {} paving, escalated to IS)",
        cold.report.estimate.mean,
        cold.report.estimate.std_dev(),
        s.samples_drawn,
        s.pavings,
    );

    // Warm: the same factor fingerprint (profile, options and IS bits
    // included) hits the cross-run store — zero new work.
    let warm = ask(&mut client);
    println!(
        "warm   answer  {:.4e} ± {:.1e}   ({} samples, {} pavings — factor-store hit)",
        warm.report.estimate.mean,
        warm.report.estimate.std_dev(),
        warm.report.stats.samples_drawn,
        warm.report.stats.pavings,
    );
    assert_eq!(
        warm.report.stats.samples_drawn, 0,
        "warm run must not sample"
    );

    // Restart: shut the server down (flushing its snapshot), start a
    // fresh one on the same path, ask again.
    drop(client);
    server.shutdown();
    let server = Server::start(config()).expect("server restarts");
    let mut client = Client::connect(server.addr()).expect("client reconnects");
    let restarted = ask(&mut client);
    println!(
        "restart answer {:.4e} ± {:.1e}   ({} samples — recovered from snapshot)",
        restarted.report.estimate.mean,
        restarted.report.estimate.std_dev(),
        restarted.report.stats.samples_drawn,
    );
    assert_eq!(
        restarted.report.stats.samples_drawn, 0,
        "restart must be warm"
    );

    let identical = [&warm, &restarted].iter().all(|r| {
        r.report.estimate.mean.to_bits() == cold.report.estimate.mean.to_bits()
            && r.report.estimate.variance.to_bits() == cold.report.estimate.variance.to_bits()
    });
    println!("all three answers bit-identical: {identical}");
    assert!(identical, "warm answers must be bit-identical to cold");

    server.shutdown();
    let _ = std::fs::remove_file(&snapshot);
    let _ = std::fs::remove_file(qcoral_service::store::wal_path(&snapshot));
}
