//! Non-uniform usage profiles end to end: the same program quantified
//! under the uniform baseline and under an operational profile, plus a
//! look at the error-bounded discretization that drives profile-aligned
//! stratification.
//!
//! Run with: `cargo run --release --example profiles`

use qcoral::{Analyzer, Options};
use qcoral_interval::Interval;
use qcoral_mc::{discretize, parse_profile_spec, Dist, UsageProfile};
use qcoral_repro::pipeline::analyze_program_with_profile;
use qcoral_symexec::SymConfig;

fn main() {
    // A tank overflow monitor: inflows are *usually* small — an operator
    // knows this; the uniform baseline does not.
    let src = "program tank(f1 in [0, 1], f2 in [0, 1]) {
       double level = 0;
       double n = 0;
       while (level < 10 && n < 24) { level = level + 0.3 + f1 + 0.5 * f2; n = n + 1; }
       if (n >= 20) { target(); }
     }";

    // The profile syntax qcoralctl --profile accepts, parsed to named
    // marginals and resolved against the program's parameters.
    let spec = "f1 ~ Exp(4); f2 ~ Exp(4)";
    let named = parse_profile_spec(spec).expect("spec parses");

    let opts = Options::default().with_samples(20_000);
    let uniform = analyze_program_with_profile(
        &Analyzer::new(opts.clone()),
        src,
        &SymConfig::default(),
        &[],
    )
    .expect("program parses");
    let profiled =
        analyze_program_with_profile(&Analyzer::new(opts), src, &SymConfig::default(), &named)
            .expect("program parses");

    println!("P[slow fill ≥ 20 steps]");
    println!("  uniform inflows:         {}", uniform.target.estimate);
    println!("  {spec}:  {}", profiled.target.estimate);
    println!(
        "  → the operational profile makes the deep paths {}x more likely\n",
        (profiled.target.estimate.mean / uniform.target.estimate.mean).round()
    );

    // The discretizer behind profile-aligned stratification: finer ε ⇒
    // more bins, concentrated where the density curves.
    let dom = Interval::new(0.0, 1.0);
    let dist = Dist::exponential(4.0);
    println!("discretization of Exp(4) over [0, 1]:");
    for eps in [1e-2, 1e-3, 1e-4] {
        if let Dist::Piecewise { edges, .. } = discretize(&dist, &dom, eps) {
            let first = edges[1] - edges[0];
            let last = edges[edges.len() - 1] - edges[edges.len() - 2];
            println!(
                "  ε = {eps:7.0e}: {:3} bins (first bin {first:.4} wide near the mass, last {last:.4})",
                edges.len() - 1
            );
        }
    }

    // Exact masses, no sampling: the profile API itself.
    let profile = UsageProfile::uniform(1).with_dist(0, Dist::exponential(4.0));
    let dbox: qcoral_interval::IntervalBox = [dom].into_iter().collect();
    let low: qcoral_interval::IntervalBox = [Interval::new(0.0, 0.25)].into_iter().collect();
    println!(
        "\nexact profile mass of f1 ∈ [0, 0.25]: {:.4} (uniform would say 0.25)",
        profile.box_probability(&low, &dbox)
    );
}
