//! Estimating volumes of geometric solids (the paper's Table 2 workload)
//! and showing how ICP stratification changes the error.
//!
//! Run with: `cargo run --release --example solids`

use qcoral::{Analyzer, Options};
use qcoral_mc::UsageProfile;
use qcoral_subjects::all_solids;

fn main() {
    let samples = 50_000;
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        "solid", "analytic", "qCORAL", "plain MC", "exact?"
    );
    for solid in all_solids() {
        let profile = UsageProfile::uniform(solid.domain.len());
        let dom_vol = solid.domain_volume();

        let strat = Analyzer::new(Options::strat().with_samples(samples).with_seed(1)).analyze(
            &solid.constraint_set,
            &solid.domain,
            &profile,
        );
        let plain = Analyzer::new(Options::plain().with_samples(samples).with_seed(1)).analyze(
            &solid.constraint_set,
            &solid.domain,
            &profile,
        );

        // σ = 0 means ICP identified the solid exactly (the Cube case).
        let exact = strat.estimate.variance == 0.0;
        println!(
            "{:<28} {:>12.5} {:>12.5} {:>12.5} {:>10}",
            solid.name,
            solid.analytic_volume,
            strat.estimate.mean * dom_vol,
            plain.estimate.mean * dom_vol,
            if exact { "yes" } else { "no" }
        );
    }
    println!(
        "\n(\"exact?\" = the ICP paver proved the region exactly; the estimator variance is 0)"
    );
}
