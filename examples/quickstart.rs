//! Quickstart: the paper's §4.4 safety-monitor example, end to end.
//!
//! Pipeline (paper Figure 1): MiniJ program → bounded symbolic execution
//! (SPF substitute) → disjoint path conditions → qCORAL quantification.
//!
//! Run with: `cargo run --release --example quickstart`

use qcoral::{Analyzer, Options};
use qcoral_constraints::atom::pretty_expr;
use qcoral_mc::UsageProfile;
use qcoral_symexec::{parse_program, symbolic_execute, SymConfig};

fn main() {
    // The paper's Listing 1: a safety monitor for an autopilot. The
    // supervisor is called when the altitude exceeds 9000 m or the flap
    // interaction violates the safety envelope.
    let source = "
        program safety_monitor(altitude in [0, 20000],
                               headFlap in [-10, 10],
                               tailFlap in [-10, 10]) {
          if (altitude <= 9000) {
            if (sin(headFlap * tailFlap) > 0.25) {
              target();   // callSupervisor()
            }
          } else {
            target();     // callSupervisor()
          }
        }";

    let program = parse_program(source).expect("the demo program parses");
    let result = symbolic_execute(&program, &SymConfig::default());

    println!(
        "Symbolic execution found {} target path condition(s):",
        result.target.len()
    );
    for (i, pc) in result.target.pcs().iter().enumerate() {
        print!("  PCT{}: ", i + 1);
        for (j, atom) in pc.atoms().iter().enumerate() {
            if j > 0 {
                print!(" && ");
            }
            print!(
                "{} {} {}",
                pretty_expr(atom.lhs(), &result.domain),
                atom.op(),
                pretty_expr(atom.rhs(), &result.domain)
            );
        }
        println!();
    }

    // Quantify under a uniform usage profile (the paper's §4.4 setup).
    let profile = UsageProfile::uniform(result.domain.len());
    let options = Options::strat_partcache().with_samples(100_000);
    let report = Analyzer::new(options).analyze(&result.target, &result.domain, &profile);

    println!("\nPer-path estimates:");
    for (i, est) in report.per_pc.iter().enumerate() {
        println!(
            "  E[X_{}] = {:.6}  Var = {:.3e}",
            i + 1,
            est.mean,
            est.variance
        );
    }
    println!(
        "\nP(supervisor called) = {:.6}  (sigma {:.3e})",
        report.estimate.mean,
        report.std_dev()
    );
    println!("Paper's exact value   = 0.737848");
    println!(
        "Analysis time: {:.1} ms, pavings: {}, cache hits: {}",
        report.wall.as_secs_f64() * 1e3,
        report.stats.pavings,
        report.stats.cache_hits
    );

    assert!(
        (report.estimate.mean - 0.737848).abs() < 0.01,
        "estimate should match the paper"
    );
}
