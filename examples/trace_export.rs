//! Export a per-request execution trace as Chrome trace-event JSON.
//!
//! Runs a cold INVPEND quantification (the Table 3 subject with the
//! single heaviest path condition) through the iterative engine with
//! `Options.trace` on, then writes the collected spans to a file that
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` renders as
//! a flame chart: interval paving, tape compilation, per-factor store
//! lookups and the variance-driven sampling rounds all land as distinct
//! spans on one timeline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trace_export [-- OUT.json]
//! ```
//!
//! The default output path is `examples/traces/invpend_cold.json` (the
//! committed copy was produced by exactly this program). Tracing never
//! changes the estimates: span clocks are monotonic timers, and no
//! sampling decision reads them.

use qcoral::{Analyzer, Options};
use qcoral_mc::UsageProfile;
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/traces/invpend_cold.json".to_string());

    let subjects = table3_subjects();
    let subject = subjects
        .iter()
        .find(|s| s.name == "INVPEND")
        .expect("INVPEND is a Table 3 subject");
    let (domain, cs) = subject.system_for(0, &SymConfig::default());
    let profile = UsageProfile::uniform(domain.len());

    // Iterative, variance-driven run so the trace shows several
    // refinement rounds; a fresh Analyzer with no injected caches keeps
    // the query cold, so paving and tape compilation appear too.
    let options = Options::strat_partcache()
        .with_samples(50_000)
        .with_seed(1)
        .with_target_stderr(1e-4)
        .with_round_budget(20_000)
        .with_max_rounds(5)
        .with_trace(true);
    let report = Analyzer::new(options).analyze_iterative(&cs, &domain, &profile);

    let trace = report.trace.as_ref().expect("Options.trace collects one");
    println!(
        "INVPEND (cold): estimate {:.6e} ± {:.2e}, {} rounds, {} spans",
        report.estimate.mean,
        report.estimate.std_dev(),
        report.stats.rounds,
        trace.spans.len()
    );
    let mut names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    println!("span kinds: {}", names.join(", "));

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("trace directory is creatable");
    }
    std::fs::write(&out, trace.to_chrome_json()).expect("trace file is writable");
    println!("wrote {out} — open it in https://ui.perfetto.dev");
}
