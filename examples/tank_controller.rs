//! Bounded-exploration confidence (paper §3.1) on a tank-filling
//! controller: as the symbolic-execution depth bound grows, the
//! probability mass of cut paths shrinks and the bracket around the true
//! target probability tightens.
//!
//! Run with: `cargo run --release --example tank_controller`

use qcoral::Options;
use qcoral_repro::pipeline::analyze_program;
use qcoral_symexec::SymConfig;

fn main() {
    // The VOL-style subject of the paper's Table 3: inflow-dependent fill
    // time; the target event is a slow fill (≥ 18 control cycles).
    let source = "program tank(f1 in [0, 1], f2 in [0, 1]) {
       double level = 0;
       double count = 0;
       while (level < 10 && count < 24) {
         level = level + 0.3 + f1 + 0.5 * f2;
         count = count + 1;
       }
       if (count >= 18) { target(); }
     }";

    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "depth", "paths", "cut", "P(target)", "cut mass", "confidence"
    );
    for depth in [6, 10, 14, 18, 30] {
        let analysis = analyze_program(
            source,
            &SymConfig {
                max_depth: depth,
                ..SymConfig::default()
            },
            Options::default().with_samples(30_000).with_seed(1),
        )
        .expect("the demo program parses");
        println!(
            "{:>6} {:>8} {:>10} {:>12.5} {:>12.5} {:>12.5}",
            depth,
            analysis.paths,
            analysis.cut_paths,
            analysis.target.estimate.mean,
            analysis.bound_mass.mean,
            analysis.confidence()
        );
    }
    println!("\nThe true probability always lies in [P(target), P(target) + cut mass];");
    println!("deep enough exploration drives the cut mass to zero (confidence 1).");
}
