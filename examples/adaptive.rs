//! Adaptive sampling: reach a target standard error with as few samples
//! as the variance allows.
//!
//! The subject mixes *exact* structure (a box constraint ICP resolves
//! with zero variance) with a *noisy* trigonometric factor. A static
//! budget spends samples on both; the iterative engine
//! (`Analyzer::analyze_iterative`) notices after the first round that
//! all the variance lives in the trig factor's boundary strata and pours
//! every further round there, so it reaches the target with a fraction
//! of the static samples.
//!
//! Run with: `cargo run --release --example adaptive`

use qcoral::{Analyzer, Options};
use qcoral_constraints::parse::parse_system;
use qcoral_mc::UsageProfile;

fn main() {
    // An exact factor over x (pure box) conjoined with a noisy factor
    // over (y, z) — the shape the paper's compositional decomposition
    // (§4.2) is built to exploit.
    let sys = parse_system(
        "var x in [0, 1]; var y in [-2, 2]; var z in [-2, 2];
         pc x < 0.4 && sin(y * z) > 0.25;
         pc x >= 0.4 && sin(y * z) > 0.25 && y + z < 1;",
    )
    .expect("demo system parses");
    let profile = UsageProfile::uniform(sys.domain.len());

    let target = 1.5e-3;
    println!("target standard error: {target:.1e}\n");

    // Static baseline: double the one-shot budget until the target holds.
    let mut budget = 2_000u64;
    let static_report = loop {
        let r = Analyzer::new(Options::default().with_samples(budget)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &profile,
        );
        println!(
            "static  {budget:>7} samples/factor -> estimate {} ({} drawn)",
            r.estimate, r.stats.samples_drawn
        );
        if r.estimate.std_dev() <= target || budget > 1 << 22 {
            break r;
        }
        budget *= 2;
    };

    // Adaptive: small initial round, then variance-driven refinement.
    let opts = Options::default()
        .with_samples(2_000)
        .with_target_stderr(target)
        .with_round_budget(2_000)
        .with_max_rounds(200);
    let adaptive =
        Analyzer::new(opts).analyze_iterative(&sys.constraint_set, &sys.domain, &profile);
    println!(
        "\nadaptive: estimate {} after {} rounds ({} samples: {} initial + {} refinement)",
        adaptive.estimate,
        adaptive.stats.rounds,
        adaptive.stats.samples_drawn,
        adaptive.stats.samples_drawn - adaptive.stats.refine_samples,
        adaptive.stats.refine_samples,
    );
    assert!(
        adaptive.stats.target_met,
        "target reachable on this subject"
    );

    println!(
        "\nsamples to reach sigma <= {target:.1e}: static {} vs adaptive {} ({:.1}x saved)",
        static_report.stats.samples_drawn,
        adaptive.stats.samples_drawn,
        static_report.stats.samples_drawn as f64 / adaptive.stats.samples_drawn.max(1) as f64,
    );
}
