//! Probabilistic analysis of a medical risk calculator (the paper's
//! Table 3 EGFR/CORONARY workloads): compare qCORAL against the two
//! baselines, and demonstrate the non-uniform usage-profile extension.
//!
//! Run with: `cargo run --release --example risk_calculator`

use qcoral::{Analyzer, Options};
use qcoral_baselines::{adaptive_probability, volcomp_bounds, AdaptiveConfig, VolCompConfig};
use qcoral_icp::domain_box;
use qcoral_mc::{Dist, UsageProfile};
use qcoral_subjects::table3_subjects;
use qcoral_symexec::SymConfig;

fn main() {
    let subjects = table3_subjects();
    let coronary = subjects
        .iter()
        .find(|s| s.name == "CORONARY")
        .expect("CORONARY subject exists");

    // Assertion 0: the high-risk tail `tmp >= 5`.
    let (domain, cs) = coronary.system_for(0, &SymConfig::default());
    let dbox = domain_box(&domain);

    println!(
        "CORONARY, assertion `tmp >= 5` ({} target paths)\n",
        cs.len()
    );

    let adaptive = adaptive_probability(&cs, &dbox, &AdaptiveConfig::default());
    println!(
        "adaptive integration : {:.6} (error est. {:.1e}, converged: {})",
        adaptive.value, adaptive.error_estimate, adaptive.converged
    );

    let bounds = volcomp_bounds(&cs, &dbox, &VolCompConfig::default());
    println!("interval bounding    : {bounds}");

    let uniform = UsageProfile::uniform(domain.len());
    let report = Analyzer::new(Options::strat_partcache().with_samples(50_000).with_seed(3))
        .analyze(&cs, &domain, &uniform);
    println!(
        "qCORAL (uniform)     : {:.6} (sigma {:.1e})",
        report.estimate.mean,
        report.std_dev()
    );

    // Extension: a realistic, non-uniform patient population. Age skewed
    // towards the elderly, cholesterol towards the middle, HDL towards
    // low values — the histogram profiles of Filieri et al. [11].
    let age = domain.index_of("age").expect("age param").index();
    let chol = domain.index_of("chol").expect("chol param").index();
    let hdl = domain.index_of("hdl").expect("hdl param").index();
    let skewed = UsageProfile::uniform(domain.len())
        .with_dist(
            age,
            Dist::piecewise(vec![30.0, 50.0, 65.0, 74.0], vec![1.0, 3.0, 4.0]),
        )
        .with_dist(
            chol,
            Dist::piecewise(vec![150.0, 200.0, 250.0, 300.0], vec![1.0, 3.0, 1.0]),
        )
        .with_dist(
            hdl,
            Dist::piecewise(vec![20.0, 40.0, 70.0, 100.0], vec![3.0, 2.0, 1.0]),
        );
    let report2 = Analyzer::new(Options::strat_partcache().with_samples(50_000).with_seed(3))
        .analyze(&cs, &domain, &skewed);
    println!(
        "qCORAL (elderly pop.): {:.6} (sigma {:.1e})",
        report2.estimate.mean,
        report2.std_dev()
    );
    println!("\nThe high-risk event becomes markedly more likely under the skewed profile.");
    assert!(report2.estimate.mean > report.estimate.mean);
}
