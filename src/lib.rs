//! Umbrella crate for the qCORAL reproduction.
//!
//! Hosts the runnable examples (`examples/`), the cross-crate
//! integration tests (`tests/`), and the one-call
//! [`pipeline::analyze_program`] convenience API. Re-exports the
//! workspace crates.

#![warn(missing_docs)]

pub mod pipeline;

pub use qcoral;
pub use qcoral_baselines as baselines;
pub use qcoral_constraints as constraints;
pub use qcoral_icp as icp;
pub use qcoral_interval as interval;
pub use qcoral_mc as mc;
pub use qcoral_subjects as subjects;
pub use qcoral_symexec as symexec;
