//! One-call convenience pipeline: program source → symbolic execution →
//! quantification, including the paper's §3.1 *confidence* measure.
//!
//! Bounded symbolic execution may cut paths at the depth bound; the
//! probability mass of those cut paths bounds how much probability the
//! target estimate could still be missing. The paper: "it is possible to
//! introduce a third set of PCs containing those where the bound has been
//! hit and quantify the probability of such sets as well; this
//! probability can give a measure for the confidence in the results
//! obtained within the bound (the lower the probability the higher the
//! confidence)."

use std::fmt;

use qcoral::{Analyzer, Estimate, Options, Report};
use qcoral_constraints::lexer::ParseError;
use qcoral_constraints::Domain;
use qcoral_mc::{Dist, UsageProfile};
use qcoral_obs::trace::arg;
use qcoral_symexec::{parse_program, symbolic_execute, SymConfig};

/// Why an end-to-end program analysis could not run.
#[derive(Debug)]
pub enum PipelineError {
    /// The MiniJ source failed to parse.
    Parse(ParseError),
    /// The usage profile does not fit the program's inputs (unknown
    /// variable name, invalid distribution parameters).
    Profile(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "{e}"),
            PipelineError::Profile(m) => write!(f, "invalid usage profile: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> PipelineError {
        PipelineError::Parse(e)
    }
}

/// Resolves named per-variable distributions against a domain's variable
/// names, producing the positional [`UsageProfile`] the analyzer
/// consumes. Unmentioned variables stay uniform; every distribution is
/// re-validated through its checked constructor, including the
/// domain-dependent checks (a truncation disjoint from the variable's
/// interval is an error, not a silent probability 0).
///
/// # Errors
///
/// Returns a description of the first unknown variable or invalid
/// distribution.
pub fn resolve_profile(domain: &Domain, named: &[(String, Dist)]) -> Result<UsageProfile, String> {
    let mut profile = UsageProfile::uniform(domain.len());
    for (name, dist) in named {
        let Some(id) = domain.index_of(name) else {
            let known: Vec<&str> = domain.iter().map(|(_, v)| v.name.as_str()).collect();
            return Err(format!(
                "unknown variable `{name}` (inputs: {})",
                known.join(", ")
            ));
        };
        let (lo, hi) = domain.bounds(id);
        let dist = dist
            .validated_in(&qcoral_interval::Interval::new(lo, hi))
            .map_err(|e| format!("variable `{name}`: {e}"))?;
        profile = profile.with_dist(id.index(), dist);
    }
    Ok(profile)
}

/// The result of analyzing a program end to end.
#[derive(Debug)]
pub struct ProgramAnalysis {
    /// Quantification of the target-event paths.
    pub target: Report,
    /// Probability mass of paths cut by the exploration bound. The true
    /// target probability lies in `[target.mean, target.mean +
    /// bound_mass.mean]` (up to sampling error).
    pub bound_mass: Estimate,
    /// Number of complete paths explored.
    pub paths: usize,
    /// Number of paths cut by the bound.
    pub cut_paths: usize,
}

impl ProgramAnalysis {
    /// Confidence in the bounded result: `1 − bound_mass` (the paper's
    /// "the lower the [bound-hit] probability the higher the
    /// confidence").
    pub fn confidence(&self) -> f64 {
        (1.0 - self.bound_mass.mean).clamp(0.0, 1.0)
    }
}

/// Parses, symbolically executes and quantifies a MiniJ program under a
/// uniform usage profile.
///
/// # Errors
///
/// Returns the parser's [`ParseError`] if the source is malformed.
///
/// # Example
///
/// ```
/// use qcoral::Options;
/// use qcoral_repro::pipeline::analyze_program;
/// use qcoral_symexec::SymConfig;
///
/// let analysis = analyze_program(
///     "program p(x in [0, 1]) { if (x > 0.75) { target(); } }",
///     &SymConfig::default(),
///     Options::default().with_samples(10_000),
/// )?;
/// assert!((analysis.target.estimate.mean - 0.25).abs() < 0.01);
/// assert_eq!(analysis.confidence(), 1.0); // nothing was cut
/// # Ok::<(), qcoral_constraints::lexer::ParseError>(())
/// ```
pub fn analyze_program(
    source: &str,
    sym_cfg: &SymConfig,
    options: Options,
) -> Result<ProgramAnalysis, ParseError> {
    analyze_program_with(&Analyzer::new(options), source, sym_cfg)
}

/// [`analyze_program`] with a caller-supplied [`Analyzer`]: the hook
/// long-lived hosts (e.g. `qcoral-service`) use to run the end-to-end
/// pipeline through an analyzer carrying shared caches — a paving cache
/// and a cross-run factor store — so recurring factors are answered
/// without re-paving or re-sampling. Results are identical to a fresh
/// analyzer with the same options (all sampling seeds derive from
/// canonical factor keys, never from cache state).
///
/// When the analyzer's options set
/// [`Options::target_stderr`](qcoral::Options), the *target* event is
/// quantified with the iterative, variance-driven engine
/// ([`Analyzer::analyze_iterative`]) — sampling rounds continue until
/// the composed standard error reaches the target or `max_rounds` runs
/// out, recorded in the report's `Stats`. The bound-mass side estimate
/// stays one-shot: it is a confidence annotation, not the quantity the
/// caller asked to be refined.
///
/// # Errors
///
/// Returns the parser's [`ParseError`] if the source is malformed.
pub fn analyze_program_with(
    analyzer: &Analyzer,
    source: &str,
    sym_cfg: &SymConfig,
) -> Result<ProgramAnalysis, ParseError> {
    match analyze_program_with_profile(analyzer, source, sym_cfg, &[]) {
        Ok(a) => Ok(a),
        Err(PipelineError::Parse(e)) => Err(e),
        Err(PipelineError::Profile(_)) => unreachable!("empty profiles always resolve"),
    }
}

/// [`analyze_program_with`] under a non-uniform usage profile, given as
/// *named* per-variable distributions (resolved against the program's
/// input names after parsing — see [`resolve_profile`]). Variables not
/// mentioned stay uniform; an empty slice is exactly the uniform
/// pipeline. The same profile weights both the target quantification and
/// the bound-mass confidence estimate, so the confidence measure is
/// profile-aware too.
///
/// # Errors
///
/// [`PipelineError::Parse`] if the source is malformed,
/// [`PipelineError::Profile`] if a named variable does not exist or a
/// distribution is invalid.
pub fn analyze_program_with_profile(
    analyzer: &Analyzer,
    source: &str,
    sym_cfg: &SymConfig,
    profile: &[(String, Dist)],
) -> Result<ProgramAnalysis, PipelineError> {
    // Pipeline stages record onto the analyzer's *injected* trace (the
    // server attaches one per traced request), sharing the timeline with
    // the analysis spans. With only `Options::trace` set, the analyzer
    // creates its collector inside `analyze`, after these stages ran —
    // the report's trace then covers quantification only.
    let trace = analyzer.trace();
    let t_parse = trace.map_or(0, |t| t.now_us());
    let program = parse_program(source)?;
    if let Some(t) = trace {
        t.record("parse", "pipeline", t_parse, Vec::new());
    }
    let t_sym = trace.map_or(0, |t| t.now_us());
    let sym = symbolic_execute(&program, sym_cfg);
    if let Some(t) = trace {
        t.record(
            "symexec",
            "pipeline",
            t_sym,
            vec![
                arg("paths", sym.paths),
                arg("cut_paths", sym.bound_hit.len()),
            ],
        );
    }
    let profile = resolve_profile(&sym.domain, profile).map_err(PipelineError::Profile)?;
    let target = if analyzer.options().target_stderr.is_some() {
        analyzer.analyze_iterative(&sym.target, &sym.domain, &profile)
    } else {
        analyzer.analyze(&sym.target, &sym.domain, &profile)
    };
    // The target analysis above already drained the trace into its
    // report; spans this side analysis records are discarded with the
    // rest of its report.
    let bound_mass = if sym.bound_hit.is_empty() {
        Estimate::ZERO
    } else {
        analyzer
            .analyze(&sym.bound_hit, &sym.domain, &profile)
            .estimate
    };
    Ok(ProgramAnalysis {
        target,
        bound_mass,
        paths: sym.paths,
        cut_paths: sym.bound_hit.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_exploration_has_full_confidence() {
        let a = analyze_program(
            "program p(x in [0, 2]) { if (x * x > 1) { target(); } }",
            &SymConfig::default(),
            Options::default().with_samples(20_000),
        )
        .unwrap();
        assert_eq!(a.cut_paths, 0);
        assert_eq!(a.confidence(), 1.0);
        assert!((a.target.estimate.mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn tight_bound_lowers_confidence_and_brackets_truth() {
        let src = "program p(rate in [0.1, 1]) {
           double level = 0;
           double n = 0;
           while (level < 3 && n < 40) { level = level + rate; n = n + 1; }
           if (n >= 10) { target(); }
         }";
        let tight = analyze_program(
            src,
            &SymConfig {
                max_depth: 8,
                ..SymConfig::default()
            },
            Options::default().with_samples(20_000),
        )
        .unwrap();
        let full = analyze_program(
            src,
            &SymConfig::default(),
            Options::default().with_samples(20_000),
        )
        .unwrap();
        assert!(tight.cut_paths > 0);
        assert!(tight.confidence() < 1.0);
        assert_eq!(full.cut_paths, 0);
        // The fully-explored probability lies within the bounded
        // analysis' bracket [target, target + bound_mass].
        let lo = tight.target.estimate.mean - 0.02;
        let hi = tight.target.estimate.mean + tight.bound_mass.mean + 0.02;
        assert!(
            full.target.estimate.mean >= lo && full.target.estimate.mean <= hi,
            "full {} outside bracket [{lo}, {hi}]",
            full.target.estimate.mean
        );
    }

    #[test]
    fn named_profiles_shift_probabilities_and_confidence() {
        let src = "program p(x in [0, 1]) { if (x > 0.75) { target(); } }";
        // Uniform: 0.25. Under Exp(4) anchored at 0, the upper-quartile
        // tail has mass (e^{-3} − e^{-4})/(1 − e^{-4}) ≈ 0.0321.
        let named = vec![("x".to_string(), Dist::exponential(4.0))];
        let a = analyze_program_with_profile(
            &Analyzer::new(Options::default().with_samples(10_000)),
            src,
            &SymConfig::default(),
            &named,
        )
        .unwrap();
        let truth = ((-3.0f64).exp() - (-4.0f64).exp()) / (1.0 - (-4.0f64).exp());
        assert!(
            (a.target.estimate.mean - truth).abs() < 0.01,
            "{} vs {truth}",
            a.target.estimate.mean
        );
        assert_eq!(a.confidence(), 1.0);
        // Unknown variables and invalid parameters are clean errors.
        let err = analyze_program_with_profile(
            &Analyzer::new(Options::default()),
            src,
            &SymConfig::default(),
            &[("nope".to_string(), Dist::Uniform)],
        );
        assert!(matches!(err, Err(PipelineError::Profile(_))));
        let err = analyze_program_with_profile(
            &Analyzer::new(Options::default()),
            src,
            &SymConfig::default(),
            &[(
                "x".to_string(),
                Dist::Normal {
                    mu: 0.0,
                    sigma: -1.0,
                },
            )],
        );
        assert!(matches!(err, Err(PipelineError::Profile(_))));
    }

    #[test]
    fn parse_errors_propagate() {
        let err = analyze_program("program x(", &SymConfig::default(), Options::default());
        assert!(err.is_err());
    }

    #[test]
    fn target_stderr_routes_through_the_iterative_engine() {
        let src = "program p(x in [0, 2], y in [0, 2]) {
           if (x * x + y > 2 && sin(y) < 0.7) { target(); }
         }";
        let opts = Options::default()
            .with_samples(1_000)
            .with_target_stderr(2e-3)
            .with_round_budget(1_000)
            .with_max_rounds(40);
        let a = analyze_program(src, &SymConfig::default(), opts.clone()).unwrap();
        assert!(a.target.stats.rounds >= 1, "iterative engine engaged");
        assert!(a.target.stats.target_met, "stats: {:?}", a.target.stats);
        assert!(a.target.estimate.std_dev() <= 2e-3);
        // Without a target the one-shot engine runs (rounds stays 0).
        let one_shot = analyze_program(
            src,
            &SymConfig::default(),
            Options::default().with_samples(1_000),
        )
        .unwrap();
        assert_eq!(one_shot.target.stats.rounds, 0);
    }
}
