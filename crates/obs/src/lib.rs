//! Observability substrate for the qCORAL reproduction.
//!
//! Three independent pillars, all built on the same offline-shim
//! discipline as `qcoral-failpoints` (std only, plus the vendored
//! `serde` shim for the wire types):
//!
//! * [`metrics`] — process- or instance-scoped registries of counters,
//!   gauges and mergeable log-bucket [`Histogram`]s (p50/p90/p99
//!   derivable), rendered as Prometheus-style text exposition. The
//!   analyzer, caches, scheduler and store all count through these
//!   primitives instead of bespoke atomics, so every number the service
//!   reports has exactly one source of truth.
//! * [`trace`] — cheap, thread-aware span timers collected into a
//!   per-request [`Trace`], returned in analysis reports when
//!   `Options.trace` is set and exportable as Chrome trace-event JSON
//!   (loads directly in Perfetto / `chrome://tracing`). Spans use
//!   monotonic clocks only and never touch an RNG, so tracing cannot
//!   perturb estimates: trace-on and trace-off runs are bit-identical.
//! * [`log`] — single-line structured JSON log records on stderr
//!   (timestamp, level, event, fields), level-filtered through the
//!   `QCORAL_LOG` environment variable (`error|warn|info|debug`,
//!   default `info`).
//!
//! [`Histogram`]: metrics::Histogram
//! [`Trace`]: trace::Trace

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use trace::{SpanArg, SpanRecord, Trace, TraceData};
