//! Counters, gauges and mergeable log-bucket histograms behind a named
//! registry with Prometheus-style text exposition.
//!
//! Handles are `Arc`-shared atomics: a subsystem either asks a
//! [`Registry`] to mint one by name ([`Registry::counter`]) or keeps its
//! own per-instance handle and *registers* it for exposition
//! ([`Registry::register_counter`]) — the latter is how per-instance
//! exactness survives (the scheduler and factor-store tests assert
//! per-instance counts, so those subsystems own their handles and the
//! server attaches them to its registry at startup).
//!
//! Histograms use a fixed power-of-two bucket layout over `u64` samples
//! (bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`, bucket 0 holds the
//! value 0), so merging two histograms is exact integer addition of
//! bucket counts — associative and commutative by construction — and
//! any quantile is derivable from the cumulative counts with at most a
//! 2× overestimate (the reported bound is the bucket's inclusive upper
//! edge).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter behind an `Arc`.
    pub fn new() -> Arc<Counter> {
        Arc::new(Counter(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight jobs, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge behind an `Arc`.
    pub fn new() -> Arc<Gauge> {
        Arc::new(Gauge(AtomicI64::new(0)))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds to the level (may go negative transiently under races; reads
    /// clamp at callers' discretion).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Subtracts from the level.
    #[inline]
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one zero bucket plus one per possible
/// leading-bit position of a `u64` sample.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable log-bucket histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A plain-value copy of a [`Histogram`], for merging and assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see the module docs for the layout).
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

/// Bucket index of a sample: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i` (saturating at `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh empty histogram behind an `Arc`.
    pub fn new() -> Arc<Histogram> {
        Arc::new(Histogram::default())
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`): the
    /// inclusive upper edge of the bucket holding the rank-`⌈q·n⌉`
    /// sample. At most 2× the true quantile for non-zero values; exact
    /// for 0. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let snap = self.snapshot();
        snap.quantile(q)
    }

    /// Folds another histogram into this one (exact integer addition of
    /// bucket counts — associative and commutative).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Plain-value copy of the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }

    /// Exact integer merge of two snapshots.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(other.buckets.iter())
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Same quantile bound as [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Registered {
    help: String,
    metric: Metric,
}

/// A named collection of metrics with Prometheus-style exposition.
///
/// The process-global registry ([`Registry::global`]) holds everything
/// process-scoped (compile caches, analyzer totals); instance-scoped
/// subsystems (a server's scheduler and store) register their own
/// handles into a per-instance registry so concurrent instances in one
/// process — the test suites — never share counts.
#[derive(Default)]
pub struct Registry {
    items: Mutex<BTreeMap<String, Registered>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter named `name`, minting it on first use.
    /// Panics if the name is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut items = self.items.lock().expect("metrics registry");
        let entry = items.entry(name.to_string()).or_insert_with(|| Registered {
            help: help.to_string(),
            metric: Metric::Counter(Counter::new()),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge named `name`, minting it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut items = self.items.lock().expect("metrics registry");
        let entry = items.entry(name.to_string()).or_insert_with(|| Registered {
            help: help.to_string(),
            metric: Metric::Gauge(Gauge::new()),
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram named `name`, minting it on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut items = self.items.lock().expect("metrics registry");
        let entry = items.entry(name.to_string()).or_insert_with(|| Registered {
            help: help.to_string(),
            metric: Metric::Histogram(Histogram::new()),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Attaches an existing counter handle under `name` (replacing any
    /// previous registration of that name).
    pub fn register_counter(&self, name: &str, help: &str, c: Arc<Counter>) {
        self.items.lock().expect("metrics registry").insert(
            name.to_string(),
            Registered {
                help: help.to_string(),
                metric: Metric::Counter(c),
            },
        );
    }

    /// Attaches an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, help: &str, g: Arc<Gauge>) {
        self.items.lock().expect("metrics registry").insert(
            name.to_string(),
            Registered {
                help: help.to_string(),
                metric: Metric::Gauge(g),
            },
        );
    }

    /// Attaches an existing histogram handle under `name`.
    pub fn register_histogram(&self, name: &str, help: &str, h: Arc<Histogram>) {
        self.items.lock().expect("metrics registry").insert(
            name.to_string(),
            Registered {
                help: help.to_string(),
                metric: Metric::Histogram(h),
            },
        );
    }

    /// Prometheus-style text exposition of every registered metric, in
    /// name order. Histograms render cumulative `_bucket{le="…"}` lines
    /// (empty leading buckets elided), `_sum` and `_count`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let items = self.items.lock().expect("metrics registry");
        let mut out = String::new();
        for (name, reg) in items.iter() {
            match &reg.metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# HELP {name} {}", reg.help);
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# HELP {name} {}", reg.help);
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# HELP {name} {}", reg.help);
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in snap.buckets.iter().enumerate() {
                        cum += c;
                        // Elide the empty prefix, keep every populated
                        // edge and the final +Inf.
                        if c == 0 && i + 1 < snap.buckets.len() {
                            continue;
                        }
                        if i + 1 < snap.buckets.len() {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper(i));
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                        }
                    }
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(3);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_106);
        // Every quantile bound is >= the true quantile and < 2x it.
        for (q, truth) in [(0.0, 0u64), (0.5, 3), (0.8, 1000), (1.0, 1_000_000)] {
            let bound = h.quantile(q);
            assert!(bound >= truth, "q={q}: {bound} < {truth}");
            assert!(
                bound <= truth.saturating_mul(2).max(1),
                "q={q}: {bound} way over {truth}"
            );
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in [1u64, 5, 9] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 5, 1 << 40] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = Registry::new();
        r.counter("qcoral_test_events_total", "Events seen.").add(7);
        r.gauge("qcoral_test_depth", "Live depth.").set(-2);
        r.histogram("qcoral_test_wait_us", "Wait (µs).").record(100);
        let text = r.render();
        assert!(text.contains("# TYPE qcoral_test_events_total counter"));
        assert!(text.contains("qcoral_test_events_total 7"));
        assert!(text.contains("qcoral_test_depth -2"));
        assert!(text.contains("# TYPE qcoral_test_wait_us histogram"));
        assert!(text.contains("qcoral_test_wait_us_bucket{le=\"127\"} 1"));
        assert!(text.contains("qcoral_test_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("qcoral_test_wait_us_sum 100"));
        assert!(text.contains("qcoral_test_wait_us_count 1"));
    }

    #[test]
    fn registry_minting_is_idempotent_and_registration_attaches() {
        let r = Registry::new();
        let c1 = r.counter("qcoral_test_same", "x");
        let c2 = r.counter("qcoral_test_same", "x");
        c1.inc();
        assert_eq!(c2.get(), 1, "same name, same handle");
        let mine = Counter::new();
        mine.add(41);
        r.register_counter("qcoral_test_mine", "mine", Arc::clone(&mine));
        mine.inc();
        assert!(r.render().contains("qcoral_test_mine 42"));
    }
}
