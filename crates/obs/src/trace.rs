//! Per-request trace spans: cheap, thread-aware timers over a shared
//! monotonic epoch, exportable as Chrome trace-event JSON.
//!
//! A [`Trace`] is created once per traced request and threaded (as an
//! `Arc`) through every layer the request touches — the rayon workers of
//! a parallel analysis included, since the collector is an explicit
//! handle, never thread-local state. Each instrumentation site measures
//! with [`Trace::now_us`] and deposits a completed span with
//! [`Trace::record`]; at the end of the request [`Trace::take`] drains
//! the spans into a serializable [`TraceData`] carried in the report.
//!
//! Determinism contract: spans read the monotonic clock and an atomic
//! thread-id counter only. No RNG is touched anywhere in this module,
//! and no instrumented code path branches on a span's value, so running
//! with tracing on or off yields bit-identical estimates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, JsonEmitter, Serialize};

/// One key/value annotation on a span (both sides carried as text).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanArg {
    /// Annotation name, e.g. `boxes`.
    pub key: String,
    /// Annotation value, preformatted.
    pub value: String,
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `paving` or `round`.
    pub name: String,
    /// Category (Chrome trace `cat`), e.g. `icp`, `sampling`.
    pub cat: String,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Small dense id of the recording thread (stable within a process).
    pub tid: u64,
    /// Annotations.
    pub args: Vec<SpanArg>,
}

/// A drained trace: the serializable span list carried in a `Report`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceData {
    /// All recorded spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
}

/// Small dense id for the current thread (first use assigns the next
/// free id). Purely cosmetic — it groups spans per track in Perfetto.
fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

/// A live per-request span collector. See the module docs.
#[derive(Debug)]
pub struct Trace {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Trace {
    /// A fresh collector whose epoch is "now".
    pub fn new() -> Arc<Trace> {
        Arc::new(Trace {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// Microseconds elapsed since the trace epoch — the `start_us` of a
    /// span about to begin.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records a span that started at `start_us` (from [`Trace::now_us`])
    /// and ends now, on the calling thread's track.
    pub fn record(&self, name: &str, cat: &str, start_us: u64, args: Vec<SpanArg>) {
        let end = self.now_us();
        self.record_at(name, cat, start_us, end.max(start_us), args);
    }

    /// Records a span with explicit start and end offsets.
    pub fn record_at(&self, name: &str, cat: &str, start_us: u64, end_us: u64, args: Vec<SpanArg>) {
        let record = SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid: thread_id(),
            args,
        };
        self.spans.lock().expect("trace spans").push(record);
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("trace spans").len()
    }

    /// Whether no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the collected spans, sorted by start time (parallel
    /// workers deposit out of order).
    pub fn take(&self) -> TraceData {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("trace spans"));
        spans.sort_by_key(|s| (s.start_us, s.tid));
        TraceData { spans }
    }
}

/// Convenience: `now_us` through an optional trace handle, for the
/// pervasive `Option<Arc<Trace>>` call sites. `None` costs one branch.
#[inline]
pub fn span_start(trace: &Option<Arc<Trace>>) -> u64 {
    match trace {
        Some(t) => t.now_us(),
        None => 0,
    }
}

/// Builds a `SpanArg`, formatting the value.
pub fn arg(key: &str, value: impl std::fmt::Display) -> SpanArg {
    SpanArg {
        key: key.to_string(),
        value: value.to_string(),
    }
}

impl TraceData {
    /// Renders the spans as Chrome trace-event JSON (the
    /// `{"traceEvents": […]}` object form), loadable in Perfetto or
    /// `chrome://tracing`. Each span becomes a complete (`"ph": "X"`)
    /// event with its args as a string-valued object.
    pub fn to_chrome_json(&self) -> String {
        let mut e = JsonEmitter::new(false);
        e.begin_object();
        e.key("traceEvents");
        e.begin_array();
        for s in &self.spans {
            e.elem();
            e.begin_object();
            e.key("name");
            e.string(&s.name);
            e.key("cat");
            e.string(&s.cat);
            e.key("ph");
            e.string("X");
            e.key("ts");
            e.raw(&s.start_us.to_string());
            e.key("dur");
            e.raw(&s.dur_us.to_string());
            e.key("pid");
            e.raw("1");
            e.key("tid");
            e.raw(&s.tid.to_string());
            e.key("args");
            e.begin_object();
            for a in &s.args {
                e.key(&a.key);
                e.string(&a.value);
            }
            e.end_object();
            e.end_object();
        }
        e.end_array();
        e.end_object();
        e.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_and_drain_sorted() {
        let t = Trace::new();
        let s0 = t.now_us();
        t.record("outer", "test", s0, vec![arg("k", 42)]);
        t.record_at("inner", "test", 5, 9, vec![]);
        assert_eq!(t.len(), 2);
        let data = t.take();
        assert!(t.is_empty(), "take drains");
        assert_eq!(data.spans.len(), 2);
        assert!(
            data.spans
                .windows(2)
                .all(|w| w[0].start_us <= w[1].start_us),
            "sorted by start"
        );
        let inner = data.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!((inner.start_us, inner.dur_us), (5, 4));
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_shape() {
        let t = Trace::new();
        t.record_at("paving", "icp", 0, 10, vec![arg("boxes", 7)]);
        t.record_at("round", "sampling", 10, 30, vec![]);
        let json = t.take().to_chrome_json();
        let v = serde::JsonValue::parse(&json).expect("valid JSON");
        let serde::JsonValue::Array(events) = v.get("traceEvents").expect("traceEvents") else {
            panic!("traceEvents is not an array");
        };
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph"), Some(&serde::JsonValue::String("X".into())));
            assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
            assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        }
        assert!(json.contains("\"boxes\":\"7\""));
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let t = Trace::new();
        t.record_at("span \"quoted\"", "cat", 1, 2, vec![arg("a", "b\nc")]);
        let data = t.take();
        let json = serde_json::to_string(&data).expect("serializes");
        let back: TraceData = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, data);
    }
}
