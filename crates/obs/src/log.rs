//! Structured JSON logging: one `{"ts_ms": …, "level": …, "event": …,
//! …fields}` object per stderr line, level-filtered through the
//! `QCORAL_LOG` environment variable (`error`, `warn`, `info` or
//! `debug`; unset or unparseable means `info`).
//!
//! Events are dotted snake-case names (`server.listening`,
//! `store.snapshot_failed`); fields are preformatted strings so a log
//! line is cheap to build and always valid JSON regardless of content.
//! Timestamps are wall-clock Unix milliseconds — logs are for humans
//! and collectors, so unlike trace spans they use real time.

use std::io::Write;
use std::sync::OnceLock;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::JsonEmitter;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The service lost something (a failed write, a panicked job).
    Error,
    /// Degraded but coping (recovery losses, shed load).
    Warn,
    /// Lifecycle landmarks (startup, shutdown, periodic metrics).
    Info,
    /// Per-operation chatter.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `QCORAL_LOG` value; `None` for unrecognized text.
pub fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

fn max_level() -> Level {
    static MAX: OnceLock<Level> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::env::var("QCORAL_LOG")
            .ok()
            .and_then(|s| parse_level(&s))
            .unwrap_or(Level::Info)
    })
}

/// Whether records at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Formats one record as a single JSON line (no trailing newline).
pub fn format_record(ts_ms: u64, level: Level, event: &str, fields: &[(&str, String)]) -> String {
    let mut e = JsonEmitter::new(false);
    e.begin_object();
    e.key("ts_ms");
    e.raw(&ts_ms.to_string());
    e.key("level");
    e.string(level.as_str());
    e.key("event");
    e.string(event);
    for (k, v) in fields {
        e.key(k);
        e.string(v);
    }
    e.end_object();
    e.finish()
}

/// Emits one structured record to stderr if `level` passes the filter.
/// The line is written with a single locked `write`, so concurrent
/// threads never interleave records.
pub fn log(level: Level, event: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut line = format_record(ts_ms, level, event, fields);
    line.push('\n');
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, String)]) {
    log(Level::Error, event, fields);
}

/// Logs at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, String)]) {
    log(Level::Warn, event, fields);
}

/// Logs at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, String)]) {
    log(Level::Info, event, fields);
}

/// Logs at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, String)]) {
    log(Level::Debug, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(parse_level("DEBUG"), Some(Level::Debug));
        assert_eq!(parse_level(" warn "), Some(Level::Warn));
        assert_eq!(parse_level("warning"), Some(Level::Warn));
        assert_eq!(parse_level("trace"), None);
        assert_eq!(parse_level(""), None);
    }

    #[test]
    fn records_are_single_line_valid_json() {
        let line = format_record(
            1_700_000_000_000,
            Level::Warn,
            "store.snapshot_failed",
            &[
                ("path", "/tmp/x.json".to_string()),
                ("error", "disk \"full\"\nretrying".to_string()),
            ],
        );
        assert!(!line.contains('\n'), "one record, one line: {line}");
        let v = serde::JsonValue::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("level"),
            Some(&serde::JsonValue::String("warn".into()))
        );
        assert_eq!(
            v.get("event"),
            Some(&serde::JsonValue::String("store.snapshot_failed".into()))
        );
        assert_eq!(
            v.get("ts_ms"),
            Some(&serde::JsonValue::Number("1700000000000".into()))
        );
        assert!(v.get("error").is_some());
    }
}
