//! Property-based invariants of the log-bucket histogram:
//!
//! 1. merge is **associative** and **commutative** (exact integer
//!    bucket addition — the property that makes per-worker histograms
//!    safe to fold in any order),
//! 2. merging equals recording the concatenated sample stream, and
//! 3. every quantile bound brackets the true quantile: `true ≤ bound`
//!    and `bound < 2·max(true, 1)` (the log-bucket resolution
//!    guarantee), with `count`/`sum` exact.

use proptest::prelude::*;
use qcoral_obs::{Histogram, HistogramSnapshot};

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// True q-quantile by the same rank convention the histogram uses
/// (rank = max(1, ceil(q·n)), 1-based into the sorted samples).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(0u64..1_000_000, 0..64),
        b in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(ha.merged(&hb), hb.merged(&ha));
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0u64..1_000_000, 0..48),
        b in prop::collection::vec(0u64..1_000_000, 0..48),
        c in prop::collection::vec(0u64..1_000_000, 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(
            ha.merged(&hb).merged(&hc),
            ha.merged(&hb.merged(&hc))
        );
    }

    #[test]
    fn merge_has_identity_and_matches_concatenation(
        a in prop::collection::vec(0u64..1_000_000, 0..64),
        b in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        prop_assert_eq!(ha.merged(&HistogramSnapshot::empty()), ha.clone());
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ha.merged(&hb), hist_of(&all));
    }

    #[test]
    fn quantile_bounds_bracket_the_truth(
        mut samples in prop::collection::vec(0u64..1 << 40, 1..128),
        q in 0.0f64..1.0,
    ) {
        let h = hist_of(&samples);
        samples.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        let truth = true_quantile(&samples, q);
        let bound = h.quantile(q);
        prop_assert!(bound >= truth, "q={}: bound {} < true {}", q, bound, truth);
        prop_assert!(
            bound <= truth.saturating_mul(2).max(1),
            "q={}: bound {} over 2x true {}",
            q, bound, truth
        );
    }

    /// The live `Histogram::merge_from` agrees with the snapshot-level
    /// merge (the exposition path and the fold path cannot drift).
    #[test]
    fn live_merge_matches_snapshot_merge(
        a in prop::collection::vec(0u64..1_000_000, 0..64),
        b in prop::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let live = Histogram::default();
        for &v in &a {
            live.record(v);
        }
        let other = Histogram::default();
        for &v in &b {
            other.record(v);
        }
        live.merge_from(&other);
        prop_assert_eq!(live.snapshot(), hist_of(&a).merged(&hist_of(&b)));
    }
}
