//! Flattened expression tapes for the HC4 forward/backward passes.
//!
//! HC4-revise needs per-node intervals: a forward pass evaluating each
//! sub-expression and a backward pass narrowing children from parents. An
//! expression tree is *compiled* once into a [`Tape`] — a vector of nodes
//! in topological order (children before parents) with structurally equal
//! sub-expressions deduplicated. Deduplication both saves work and
//! strengthens propagation: all occurrences of a shared sub-term are
//! narrowed together.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use qcoral_constraints::{expr_fingerprint, BinOp, Expr, UnOp, VarId};
use qcoral_interval::{Interval, IntervalBox};

use crate::cache::CompileCache;

/// Process-wide cache of compiled tapes, keyed by the source expression's
/// structural fingerprint. Independent factors recur across path
/// conditions (and across whole analyses), so contractors share one
/// compiled [`Tape`] per distinct expression instead of recompiling it.
/// The fingerprint is computed *outside* the lock and is linear in DAG
/// size, so lookups do constant work under the mutex.
static TAPE_CACHE: OnceLock<CompileCache<Tape>> = OnceLock::new();

/// Cap on cached tapes; beyond it, compilation still succeeds but results
/// are no longer retained (bounds memory for adversarial workloads).
const TAPE_CACHE_CAP: usize = 4096;

fn tape_cache() -> &'static CompileCache<Tape> {
    TAPE_CACHE.get_or_init(|| CompileCache::new_named(TAPE_CACHE_CAP, "tape_cache"))
}

/// Cumulative `(hits, misses)` of the process-wide tape cache. Counters
/// are monotone; callers wanting per-analysis numbers snapshot before and
/// after (exact when no other analysis runs concurrently in the process).
pub fn tape_cache_stats() -> (u64, u64) {
    tape_cache().stats()
}

/// One node of a compiled expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A literal constant.
    Const(f64),
    /// An input variable (narrowings propagate to the box dimension).
    Var(VarId),
    /// Unary operation on a previous node.
    Unary(UnOp, usize),
    /// Binary operation on two previous nodes.
    Binary(BinOp, usize, usize),
}

/// A compiled expression: nodes in topological order, root last.
#[derive(Clone, Debug)]
pub struct Tape {
    nodes: Vec<Node>,
    /// For each node, the indices of parents is implicit in the reverse
    /// walk; variables are tracked for write-back.
    var_nodes: Vec<(usize, VarId)>,
}

impl Tape {
    /// Compiles an expression into a tape.
    pub fn compile(expr: &Expr) -> Tape {
        let mut tape = Tape {
            nodes: Vec::new(),
            var_nodes: Vec::new(),
        };
        let mut memo: HashMap<Expr, usize> = HashMap::new();
        tape.emit(expr, &mut memo);
        tape
    }

    /// Compiles through the process-wide tape cache: structurally equal
    /// expressions share one compiled tape. Safe across threads; the cache
    /// is bounded, and on overflow compilation simply stops memoizing.
    ///
    /// Callers with throwaway, never-recurring expressions (e.g. the
    /// symbolic executor's per-path pruning queries) should use
    /// [`Tape::compile`] directly so they don't fill the cap.
    pub fn compile_cached(expr: &Arc<Expr>) -> Arc<Tape> {
        // Fingerprinting happens outside the cache lock, like the
        // compilation itself: both can be heavy.
        let key = expr_fingerprint(expr);
        tape_cache().get_or_compile(key, || Tape::compile(expr))
    }

    /// Number of tapes currently memoized process-wide.
    pub fn cached_tapes() -> usize {
        tape_cache().len()
    }

    fn emit(&mut self, expr: &Expr, memo: &mut HashMap<Expr, usize>) -> usize {
        if let Some(&i) = memo.get(expr) {
            return i;
        }
        let node = match expr {
            Expr::Const(v) => Node::Const(*v),
            Expr::Var(id) => Node::Var(*id),
            Expr::Unary(op, e) => {
                let c = self.emit(e, memo);
                Node::Unary(*op, c)
            }
            Expr::Binary(op, a, b) => {
                let ca = self.emit(a, memo);
                let cb = self.emit(b, memo);
                Node::Binary(*op, ca, cb)
            }
        };
        let i = self.nodes.len();
        if let Node::Var(id) = node {
            self.var_nodes.push((i, id));
        }
        self.nodes.push(node);
        memo.insert(expr.clone(), i);
        i
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tape is empty (never happens for compiled
    /// expressions, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// `(node index, variable)` pairs for every variable leaf.
    pub fn var_nodes(&self) -> &[(usize, VarId)] {
        &self.var_nodes
    }

    /// Forward pass: evaluates every node over the box, filling `vals`
    /// (resized as needed). Returns the root interval. An empty root means
    /// the expression is undefined everywhere on the box (e.g. `sqrt` of a
    /// negative range) — by the NaN semantics, no point of the box can
    /// satisfy any atom over it.
    pub fn forward(&self, boxed: &IntervalBox, vals: &mut Vec<Interval>) -> Interval {
        vals.clear();
        vals.reserve(self.nodes.len());
        for node in &self.nodes {
            let v = match node {
                Node::Const(c) => Interval::point(*c),
                Node::Var(id) => boxed[id.index()],
                Node::Unary(op, c) => unary_forward(*op, vals[*c]),
                // Deduplication makes x·x literally share one child node;
                // the square form is tighter than the generic product.
                Node::Binary(BinOp::Mul, a, b) if a == b => vals[*a].sqr(),
                Node::Binary(op, a, b) => binary_forward(*op, vals[*a], vals[*b]),
            };
            vals.push(v);
        }
        vals[self.root()]
    }

    /// Backward (projection) pass. `vals` must come from a prior
    /// [`Tape::forward`] call whose root entry has already been narrowed
    /// to the constraint target. Narrows child intervals from parents and
    /// finally writes variable narrowings back into `boxed`.
    ///
    /// Returns `false` if some node's interval became empty, proving the
    /// constraint unsatisfiable on the box.
    pub fn backward(&self, vals: &mut [Interval], boxed: &mut IntervalBox) -> bool {
        for i in (0..self.nodes.len()).rev() {
            let z = vals[i];
            if z.is_empty() {
                return false;
            }
            match &self.nodes[i] {
                Node::Const(_) | Node::Var(_) => {}
                Node::Unary(op, c) => {
                    let x = vals[*c];
                    let nx = unary_backward(*op, z, x);
                    vals[*c] = nx;
                    if nx.is_empty() {
                        return false;
                    }
                }
                Node::Binary(BinOp::Mul, a, b) if a == b => {
                    // z = x²: x ∈ ±sqrt(z).
                    let r = z.sqrt();
                    let x = vals[*a];
                    let cand = r.intersect(&x).hull(&(-r).intersect(&x));
                    vals[*a] = cand;
                    if cand.is_empty() {
                        return false;
                    }
                }
                Node::Binary(op, a, b) => {
                    let x = vals[*a];
                    let y = vals[*b];
                    let (nx, ny) = binary_backward(*op, z, x, y);
                    // A shared node can be both children; intersect in turn.
                    vals[*a] = vals[*a].intersect(&nx);
                    vals[*b] = vals[*b].intersect(&ny);
                    if vals[*a].is_empty() || vals[*b].is_empty() {
                        return false;
                    }
                }
            }
        }
        for &(node, id) in &self.var_nodes {
            let d = boxed[id.index()].intersect(&vals[node]);
            *boxed.dim_mut(id.index()) = d;
            if d.is_empty() {
                return false;
            }
        }
        true
    }
}

fn unary_forward(op: UnOp, x: Interval) -> Interval {
    match op {
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Exp => x.exp(),
        UnOp::Ln => x.ln(),
        UnOp::Sin => x.sin(),
        UnOp::Cos => x.cos(),
        UnOp::Tan => x.tan(),
        UnOp::Asin => x.asin(),
        UnOp::Acos => x.acos(),
        UnOp::Atan => x.atan(),
    }
}

fn binary_forward(op: BinOp, a: Interval, b: Interval) -> Interval {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Pow => a.pow(&b),
        BinOp::Min => a.min_i(&b),
        BinOp::Max => a.max_i(&b),
        BinOp::Atan2 => a.atan2(&b),
    }
}

/// Projection of `z = op(x)` onto `x`: returns a superset of
/// `{t ∈ x : op(t) ∈ z}`.
fn unary_backward(op: UnOp, z: Interval, x: Interval) -> Interval {
    use std::f64::consts::{FRAC_PI_2, PI};
    match op {
        UnOp::Neg => x.intersect(&-z),
        UnOp::Abs => {
            let pos = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if pos.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&pos.hull(&-pos))
        }
        UnOp::Sqrt => {
            let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if nz.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&nz.sqr())
        }
        UnOp::Exp => {
            let pz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if pz.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&pz.ln().widen())
        }
        UnOp::Ln => x.intersect(&z.exp()),
        UnOp::Sin => periodic_backward(z, x, PeriodicKind::Sin),
        UnOp::Cos => periodic_backward(z, x, PeriodicKind::Cos),
        UnOp::Tan => {
            // t ∈ atan(z) + kπ
            if !x.is_bounded() || x.width() > 64.0 * PI {
                return x;
            }
            let base = z.atan().widen();
            let mut acc = Interval::EMPTY;
            let k_lo = ((x.lo() - base.hi()) / PI).floor() as i64;
            let k_hi = ((x.hi() - base.lo()) / PI).ceil() as i64;
            for k in k_lo..=k_hi {
                let cand =
                    Interval::new_or_empty(base.lo() + k as f64 * PI, base.hi() + k as f64 * PI)
                        .widen();
                acc = acc.hull(&cand.intersect(&x));
            }
            acc
        }
        UnOp::Asin => {
            // z = asin(x) has z ⊆ [-π/2, π/2] where sin is monotone.
            let zc = z.intersect(&Interval::new(-FRAC_PI_2, FRAC_PI_2).widen());
            if zc.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&zc.sin())
        }
        UnOp::Acos => {
            let zc = z.intersect(&Interval::new(0.0, PI).widen());
            if zc.is_empty() {
                return Interval::EMPTY;
            }
            x.intersect(&zc.cos())
        }
        UnOp::Atan => x.intersect(&z.tan()),
    }
}

enum PeriodicKind {
    Sin,
    Cos,
}

/// Projection of `z = sin(x)` or `z = cos(x)` onto `x`. Enumerates the
/// periods overlapping `x`; returns `x` unchanged if `x` spans too many
/// periods for enumeration to pay off.
fn periodic_backward(z: Interval, x: Interval, kind: PeriodicKind) -> Interval {
    use std::f64::consts::PI;
    let two_pi = 2.0 * PI;
    let zc = z.intersect(&Interval::new(-1.0, 1.0));
    if zc.is_empty() {
        return Interval::EMPTY;
    }
    if !x.is_bounded() || x.width() > 32.0 * two_pi {
        return x;
    }
    // Solutions are (A + 2πk) ∪ (B + 2πk) with the two principal branches.
    let (a, b) = match kind {
        PeriodicKind::Sin => {
            let asin = zc.asin().widen(); // ⊆ [-π/2, π/2]
            let mirrored = Interval::new_or_empty(PI - asin.hi(), PI - asin.lo()).widen();
            (asin, mirrored)
        }
        PeriodicKind::Cos => {
            let acos = zc.acos().widen(); // ⊆ [0, π]
            (acos, -acos)
        }
    };
    let mut acc = Interval::EMPTY;
    for branch in [a, b] {
        if branch.is_empty() {
            continue;
        }
        let k_lo = ((x.lo() - branch.hi()) / two_pi).floor() as i64;
        let k_hi = ((x.hi() - branch.lo()) / two_pi).ceil() as i64;
        for k in k_lo..=k_hi {
            let cand = Interval::new_or_empty(
                branch.lo() + k as f64 * two_pi,
                branch.hi() + k as f64 * two_pi,
            )
            .widen();
            acc = acc.hull(&cand.intersect(&x));
        }
    }
    acc
}

/// Projection of `z = op(x, y)` onto `(x, y)`.
fn binary_backward(op: BinOp, z: Interval, x: Interval, y: Interval) -> (Interval, Interval) {
    match op {
        BinOp::Add => (x.intersect(&(z - y)), y.intersect(&(z - x))),
        BinOp::Sub => (x.intersect(&(z + y)), y.intersect(&(x - z))),
        BinOp::Mul => {
            // Solve x·y ∈ z. Division by an interval containing zero in
            // its interior yields ENTIRE (no narrowing). A point-zero
            // factor constrains nothing about the other operand.
            let nx = if y == Interval::ZERO {
                x
            } else {
                x.intersect(&(z / y))
            };
            let ny = if x == Interval::ZERO {
                y
            } else {
                y.intersect(&(z / x))
            };
            (nx, ny)
        }
        BinOp::Div => {
            // z = x / y  ⇒  x = z·y ;  y = x / z.
            let nx = x.intersect(&(z * y));
            let ny = if z == Interval::ZERO {
                y
            } else {
                y.intersect(&(x / z))
            };
            (nx, ny)
        }
        BinOp::Pow => pow_backward(z, x, y),
        BinOp::Min => {
            // min(x, y) = z: both operands are ≥ z.lo; an operand forced
            // to be the minimum (other's lo above z.hi) must lie in z.
            let ge = Interval::new(z.lo(), f64::INFINITY);
            let mut nx = x.intersect(&ge);
            let mut ny = y.intersect(&ge);
            if y.lo() > z.hi() {
                nx = nx.intersect(&z);
            }
            if x.lo() > z.hi() {
                ny = ny.intersect(&z);
            }
            (nx, ny)
        }
        BinOp::Max => {
            let le = Interval::new(f64::NEG_INFINITY, z.hi());
            let mut nx = x.intersect(&le);
            let mut ny = y.intersect(&le);
            if y.hi() < z.lo() {
                nx = nx.intersect(&z);
            }
            if x.hi() < z.lo() {
                ny = ny.intersect(&z);
            }
            (nx, ny)
        }
        // atan2 narrowing is not implemented (sound: no narrowing).
        BinOp::Atan2 => (x, y),
    }
}

/// Projection for `z = x^y`.
fn pow_backward(z: Interval, x: Interval, y: Interval) -> (Interval, Interval) {
    // Only narrow x, and only for a point exponent (the common case in
    // path conditions); anything else keeps the operands unchanged.
    if !y.is_point() {
        return (x, y);
    }
    let n = y.lo();
    if n == 0.0 {
        return (x, y);
    }
    if n.fract() == 0.0 && n.abs() <= 64.0 {
        let n = n as i32;
        if n > 0 && n % 2 == 1 {
            // Odd power: monotone; x = z^(1/n) with sign preserved.
            let root = signed_root(z, n);
            return (x.intersect(&root), y);
        }
        if n > 0 {
            // Even power: |x| ∈ root(z ∩ [0, ∞)).
            let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
            if nz.is_empty() {
                return (Interval::EMPTY, y);
            }
            let r = signed_root(nz, n);
            let neg = -r;
            let cand = r.intersect(&x).hull(&neg.intersect(&x));
            return (cand, y);
        }
        // Negative exponents: x = (1/z)^(1/|n|); keep conservative.
        return (x, y);
    }
    // Non-integer exponent: defined only for x ≥ 0; x = z^(1/n).
    let nz = z.intersect(&Interval::new(0.0, f64::INFINITY));
    if nz.is_empty() {
        return (Interval::EMPTY, y);
    }
    if n > 0.0 {
        let inv = Interval::point(1.0) / Interval::point(n);
        let cand = nz.pow(&inv).hull(&Interval::ZERO).widen();
        return (x.intersect(&cand), y);
    }
    (x, y)
}

/// Sign-preserving n-th root hull for positive integer `n`.
fn signed_root(z: Interval, n: i32) -> Interval {
    if z.is_empty() {
        return Interval::EMPTY;
    }
    let root1 = |v: f64| -> f64 {
        if v.is_infinite() {
            return v;
        }
        v.signum() * v.abs().powf(1.0 / n as f64)
    };
    Interval::new_or_empty(root1(z.lo()), root1(z.hi()))
        .widen()
        .widen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::Expr;

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn y() -> Expr {
        Expr::var(VarId(1))
    }

    fn bx(dims: &[(f64, f64)]) -> IntervalBox {
        dims.iter().map(|&(l, h)| Interval::new(l, h)).collect()
    }

    #[test]
    fn compile_dedupes_shared_subterms() {
        // (x + 1) * (x + 1): the sub-term appears once in the tape.
        let shared = x().add(Expr::constant(1.0));
        let e = shared.clone().mul(shared);
        let t = Tape::compile(&e);
        // nodes: x, 1, x+1, (x+1)*(x+1) = 4 (not 7)
        assert_eq!(t.len(), 4);
        assert_eq!(t.var_nodes().len(), 1);
    }

    #[test]
    fn dedup_strengthens_forward_to_square() {
        // Because (x+1) is one shared node, (x+1)*(x+1) evaluates as a
        // square: on x ∈ [-3, 1] the image is [0, 4]. A tree-shaped
        // product of two independent copies would give [-2,2]·[-2,2] =
        // [-4, 4].
        let shared = x().add(Expr::constant(1.0));
        let e = shared.clone().mul(shared);
        let t = Tape::compile(&e);
        let mut vals = Vec::new();
        let r = t.forward(&bx(&[(-3.0, 1.0)]), &mut vals);
        assert!(r.lo() >= 0.0, "square image must be non-negative: {r}");
        assert!(r.hi() <= 4.0 + 1e-12, "{r}");
    }

    #[test]
    fn dedup_narrows_shared_subterms_together() {
        // (x+1)² ∈ [0, 1] on x ∈ [-3, 1]: both occurrences of (x+1)
        // narrow simultaneously, giving x ∈ [-2, 0]. With separate
        // sub-terms the generic product projection narrows much less.
        let shared = x().add(Expr::constant(1.0));
        let e = shared.clone().mul(shared);
        let t = Tape::compile(&e);
        let mut b = bx(&[(-3.0, 1.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(0.0, 1.0));
        assert!(t.backward(&mut vals, &mut b));
        assert!(
            b[0].lo() >= -2.01 && b[0].hi() <= 0.01,
            "shared narrowing should give [-2, 0], got {}",
            b[0]
        );
        // Genuine solutions survive.
        assert!(b[0].contains(-1.5) && b[0].contains(-0.5));
    }

    #[test]
    fn compile_cached_shares_one_tape() {
        // Two structurally equal but separately allocated expressions
        // resolve to the same Arc through the process-wide cache.
        let e1 = Arc::new(x().mul(y()).sin().add(x().sqrt()));
        let e2 = Arc::new(x().mul(y()).sin().add(x().sqrt()));
        let t1 = Tape::compile_cached(&e1);
        let t2 = Tape::compile_cached(&e2);
        assert!(std::sync::Arc::ptr_eq(&t1, &t2));
        assert!(Tape::cached_tapes() >= 1);
        // The cached tape evaluates like a fresh one.
        let fresh = Tape::compile(&e1);
        let b = bx(&[(4.0, 4.0), (0.5, 0.5)]);
        let mut va = Vec::new();
        let mut vb = Vec::new();
        assert_eq!(t1.forward(&b, &mut va), fresh.forward(&b, &mut vb));
    }

    #[test]
    fn forward_matches_point_eval() {
        let e = x().mul(y()).sin().add(x().sqrt());
        let t = Tape::compile(&e);
        let b = bx(&[(4.0, 4.0), (0.5, 0.5)]);
        let mut vals = Vec::new();
        let r = t.forward(&b, &mut vals);
        let exact = (4.0f64 * 0.5).sin() + 2.0;
        assert!(r.contains(exact), "{r} should contain {exact}");
        assert!(r.width() < 1e-9);
    }

    #[test]
    fn forward_empty_for_undefined() {
        let e = x().sqrt();
        let t = Tape::compile(&e);
        let b = bx(&[(-3.0, -1.0)]);
        let mut vals = Vec::new();
        assert!(t.forward(&b, &mut vals).is_empty());
    }

    #[test]
    fn backward_narrows_linear() {
        // x + y ∈ [0, 0.5] on x,y ∈ [0,1]: each var narrows to [0, 0.5].
        let e = x().add(y());
        let t = Tape::compile(&e);
        let mut b = bx(&[(0.0, 1.0), (0.0, 1.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(f64::NEG_INFINITY, 0.5));
        assert!(t.backward(&mut vals, &mut b));
        assert!(b[0].hi() <= 0.6);
        assert!(b[1].hi() <= 0.6);
    }

    #[test]
    fn backward_proves_empty() {
        // x^2 ∈ [-2, -1] is impossible.
        let e = x().pow(Expr::constant(2.0));
        let t = Tape::compile(&e);
        let mut b = bx(&[(-1.0, 1.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = Interval::new(-2.0, -1.0).intersect(&vals[root]);
        // Either the intersection is already empty or backward detects it.
        let still = !vals[root].is_empty() && t.backward(&mut vals, &mut b);
        assert!(!still);
    }

    #[test]
    fn backward_sqrt() {
        // sqrt(x) ∈ [2, 3] ⇒ x ∈ [4, 9].
        let e = x().sqrt();
        let t = Tape::compile(&e);
        let mut b = bx(&[(0.0, 100.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(2.0, 3.0));
        assert!(t.backward(&mut vals, &mut b));
        assert!(b[0].lo() >= 3.9 && b[0].hi() <= 9.1, "{}", b[0]);
    }

    #[test]
    fn backward_sin_enumerates_periods() {
        use std::f64::consts::PI;
        // sin(x) ∈ [0.9, 1] on x ∈ [0, 4π]: solutions near π/2 and π/2+2π.
        let e = x().sin();
        let t = Tape::compile(&e);
        let mut b = bx(&[(0.0, 4.0 * PI)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(0.9, 1.0));
        assert!(t.backward(&mut vals, &mut b));
        // Hull of the two solution islands: ⊆ [asin(0.9), 2π + π - asin(0.9)]
        let lo_expect = 0.9f64.asin();
        let hi_expect = 2.0 * PI + PI - 0.9f64.asin();
        assert!(b[0].lo() >= lo_expect - 0.01, "{}", b[0]);
        assert!(b[0].hi() <= hi_expect + 0.01, "{}", b[0]);
        // Make sure actual solutions survived.
        assert!(b[0].contains(PI / 2.0));
        assert!(b[0].contains(PI / 2.0 + 2.0 * PI));
    }

    #[test]
    fn backward_mul_zero_factor_does_not_overprune() {
        // x * 0 ∈ [0, 0]: x is unconstrained, must stay [0, 1].
        let e = x().mul(Expr::constant(0.0));
        let t = Tape::compile(&e);
        let mut b = bx(&[(0.0, 1.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::ZERO);
        assert!(t.backward(&mut vals, &mut b));
        assert_eq!(b[0], Interval::new(0.0, 1.0));
    }

    #[test]
    fn backward_even_power() {
        // x^2 ∈ [4, 9] on x ∈ [-10, 10] ⇒ x ∈ [-3, 3] (hull of ±[2,3]).
        let e = x().pow(Expr::constant(2.0));
        let t = Tape::compile(&e);
        let mut b = bx(&[(-10.0, 10.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(4.0, 9.0));
        assert!(t.backward(&mut vals, &mut b));
        assert!(b[0].lo() >= -3.1 && b[0].hi() <= 3.1, "{}", b[0]);
        assert!(b[0].contains(2.5) && b[0].contains(-2.5));
    }

    #[test]
    fn backward_min_max() {
        // min(x, y) ∈ [5, 6] with y ∈ [10, 20] forces x ∈ [5, 6].
        let e = x().min_e(y());
        let t = Tape::compile(&e);
        let mut b = bx(&[(0.0, 100.0), (10.0, 20.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(5.0, 6.0));
        assert!(t.backward(&mut vals, &mut b));
        assert!(b[0].lo() >= 4.9 && b[0].hi() <= 6.1, "{}", b[0]);
    }

    #[test]
    fn backward_exp_ln() {
        // exp(x) ∈ [1, e] ⇒ x ∈ [0, 1].
        let e = x().exp();
        let t = Tape::compile(&e);
        let mut b = bx(&[(-10.0, 10.0)]);
        let mut vals = Vec::new();
        t.forward(&b, &mut vals);
        let root = t.root();
        vals[root] = vals[root].intersect(&Interval::new(1.0, std::f64::consts::E));
        assert!(t.backward(&mut vals, &mut b));
        assert!(b[0].lo() >= -0.001 && b[0].hi() <= 1.001, "{}", b[0]);
    }
}
