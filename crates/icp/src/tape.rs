//! Process-wide cache of compiled conjunction tapes.
//!
//! The HC4 forward/backward machinery itself lives in the unified tape IR
//! (`qcoral_constraints::ival`): an [`EvalTape`] is compiled once per
//! conjunction and [`IntervalTape`] reinterprets its node pool over
//! intervals. This module only adds the process-wide memoization layer —
//! independent factors recur across path conditions (and across whole
//! analyses), so contractors share one compiled tape per distinct
//! conjunction instead of recompiling it.

use std::sync::{Arc, OnceLock};

use qcoral_constraints::{EvalTape, IntervalTape, PathCondition};

use crate::cache::CompileCache;

/// Process-wide cache of compiled interval tapes, keyed by the source
/// conjunction's structural fingerprint. The fingerprint is computed
/// *outside* the lock and is linear in DAG size, so lookups do constant
/// work under the mutex.
static TAPE_CACHE: OnceLock<CompileCache<IntervalTape>> = OnceLock::new();

/// Cap on cached tapes; beyond it, compilation still succeeds but results
/// are no longer retained (bounds memory for adversarial workloads).
const TAPE_CACHE_CAP: usize = 4096;

fn tape_cache() -> &'static CompileCache<IntervalTape> {
    TAPE_CACHE.get_or_init(|| CompileCache::new_named(TAPE_CACHE_CAP, "tape_cache"))
}

/// Cumulative `(hits, misses)` of the process-wide tape cache. Counters
/// are monotone; callers wanting per-analysis numbers snapshot before and
/// after (exact when no other analysis runs concurrently in the process).
pub fn tape_cache_stats() -> (u64, u64) {
    tape_cache().stats()
}

/// Number of tapes currently memoized process-wide.
pub fn cached_tapes() -> usize {
    tape_cache().len()
}

/// Compiles `pc` through the process-wide tape cache: structurally equal
/// conjunctions share one compiled tape. Safe across threads; the cache
/// is bounded, and on overflow compilation simply stops memoizing.
///
/// Callers with throwaway, never-recurring conjunctions (e.g. the
/// symbolic executor's per-path pruning queries) should compile directly
/// so they don't fill the cap.
pub fn compile_cached(pc: &PathCondition) -> Arc<IntervalTape> {
    // Fingerprinting happens outside the cache lock, like the
    // compilation itself: both can be heavy.
    let key = pc.fingerprint();
    tape_cache().get_or_compile(key, || IntervalTape::compile(&EvalTape::compile(pc)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::{Atom, Expr, RelOp, VarId};

    fn pc_of(lhs: Expr, op: RelOp, rhs: Expr) -> PathCondition {
        PathCondition::from_atoms(vec![Atom::new(lhs, op, rhs)])
    }

    #[test]
    fn structurally_equal_conjunctions_share_one_tape() {
        let x = || Expr::var(VarId(0));
        let a = pc_of(x().mul(x()).add(Expr::constant(1.0)), RelOp::Le, x());
        let b = pc_of(x().mul(x()).add(Expr::constant(1.0)), RelOp::Le, x());
        let (h0, m0) = tape_cache_stats();
        let ta = compile_cached(&a);
        let tb = compile_cached(&b);
        assert!(Arc::ptr_eq(&ta, &tb), "equal conjunctions share a tape");
        let (h1, m1) = tape_cache_stats();
        assert!(h1 > h0, "second lookup hits");
        assert!(m1 > m0, "first lookup misses");
        assert!(cached_tapes() >= 1);
    }

    #[test]
    fn different_conjunctions_get_different_tapes() {
        let x = || Expr::var(VarId(0));
        let a = pc_of(x().sin(), RelOp::Gt, Expr::constant(0.25));
        let b = pc_of(x().cos(), RelOp::Gt, Expr::constant(0.25));
        let ta = compile_cached(&a);
        let tb = compile_cached(&b);
        assert!(!Arc::ptr_eq(&ta, &tb));
    }
}
