//! Generic process-wide compile cache, shared by every "fingerprint →
//! compiled artifact" memoization in the workspace (the interval-tape
//! cache here, the analyzer's `CompiledPred` cache in `qcoral`).
//!
//! The access pattern is always the same: keys are 128-bit structural
//! fingerprints computed *outside* the lock (linear in DAG size, so
//! lookups do constant work under the mutex), compilation also happens
//! outside the lock (it can be heavy), the map is capped to bound
//! memory on adversarial workloads (beyond the cap compilation still
//! succeeds but is no longer retained), and on a racing double-compile
//! the first artifact to land wins so every consumer shares one
//! allocation.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use qcoral_obs::{Counter, Registry};

/// A bounded, counted `fingerprint → Arc<T>` compile cache. Hit/miss
/// counting rides `qcoral-obs` counters, so a cache built with
/// [`CompileCache::new_named`] is a first-class metric family of the
/// process-wide registry instead of a bespoke counter path.
#[derive(Debug)]
pub struct CompileCache<T> {
    map: Mutex<HashMap<u128, Arc<T>>>,
    cap: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl<T> CompileCache<T> {
    /// An empty cache retaining at most `cap` artifacts, with private
    /// (unregistered) counters.
    pub fn new(cap: usize) -> CompileCache<T> {
        CompileCache {
            map: Mutex::new(HashMap::new()),
            cap,
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// An empty cache whose hit/miss counters are registered in the
    /// process-wide metrics registry as
    /// `qcoral_<name>_hits_total` / `qcoral_<name>_misses_total`.
    pub fn new_named(cap: usize, name: &str) -> CompileCache<T> {
        let reg = Registry::global();
        CompileCache {
            map: Mutex::new(HashMap::new()),
            cap,
            hits: reg.counter(
                &format!("qcoral_{name}_hits_total"),
                "Compile-cache lookups answered from the cache.",
            ),
            misses: reg.counter(
                &format!("qcoral_{name}_misses_total"),
                "Compile-cache lookups that had to compile.",
            ),
        }
    }

    /// Returns the artifact for `key`, compiling (outside the lock) on a
    /// miss. At the cap, fresh artifacts are returned uncached; on a
    /// race, whichever artifact landed first is kept and shared.
    pub fn get_or_compile(&self, key: u128, compile: impl FnOnce() -> T) -> Arc<T> {
        if let Some(t) = self.map.lock().get(&key) {
            self.hits.inc();
            return Arc::clone(t);
        }
        self.misses.inc();
        let fresh = Arc::new(compile());
        let mut map = self.map.lock();
        if map.len() >= self.cap && !map.contains_key(&key) {
            return fresh;
        }
        Arc::clone(map.entry(key).or_insert(fresh))
    }

    /// Cumulative `(hits, misses)`. Counters are monotone; callers
    /// wanting per-analysis numbers snapshot before and after (exact
    /// when no other analysis runs concurrently in the process).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of artifacts currently retained.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Returns `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_up_to_cap_and_counts() {
        let cache: CompileCache<u64> = CompileCache::new(2);
        let a = cache.get_or_compile(1, || 10);
        let b = cache.get_or_compile(1, || 99);
        assert!(Arc::ptr_eq(&a, &b), "hit shares the first artifact");
        assert_eq!(*b, 10);
        assert_eq!(cache.stats(), (1, 1));
        cache.get_or_compile(2, || 20);
        assert_eq!(cache.len(), 2);
        // At the cap: compiled but not retained.
        let c = cache.get_or_compile(3, || 30);
        assert_eq!(*c, 30);
        assert_eq!(cache.len(), 2);
        // Existing keys still hit at the cap.
        assert_eq!(*cache.get_or_compile(2, || 99), 20);
    }
}
