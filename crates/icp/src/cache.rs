//! Generic process-wide compile cache, shared by every "fingerprint →
//! compiled artifact" memoization in the workspace (the HC4 [`Tape`]
//! cache here, the analyzer's `CompiledPred` cache in `qcoral`).
//!
//! The access pattern is always the same: keys are 128-bit structural
//! fingerprints computed *outside* the lock (linear in DAG size, so
//! lookups do constant work under the mutex), compilation also happens
//! outside the lock (it can be heavy), the map is capped to bound
//! memory on adversarial workloads (beyond the cap compilation still
//! succeeds but is no longer retained), and on a racing double-compile
//! the first artifact to land wins so every consumer shares one
//! allocation.
//!
//! [`Tape`]: crate::tape::Tape

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A bounded, counted `fingerprint → Arc<T>` compile cache.
#[derive(Debug)]
pub struct CompileCache<T> {
    map: Mutex<HashMap<u128, Arc<T>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> CompileCache<T> {
    /// An empty cache retaining at most `cap` artifacts.
    pub fn new(cap: usize) -> CompileCache<T> {
        CompileCache {
            map: Mutex::new(HashMap::new()),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the artifact for `key`, compiling (outside the lock) on a
    /// miss. At the cap, fresh artifacts are returned uncached; on a
    /// race, whichever artifact landed first is kept and shared.
    pub fn get_or_compile(&self, key: u128, compile: impl FnOnce() -> T) -> Arc<T> {
        if let Some(t) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compile());
        let mut map = self.map.lock();
        if map.len() >= self.cap && !map.contains_key(&key) {
            return fresh;
        }
        Arc::clone(map.entry(key).or_insert(fresh))
    }

    /// Cumulative `(hits, misses)`. Counters are monotone; callers
    /// wanting per-analysis numbers snapshot before and after (exact
    /// when no other analysis runs concurrently in the process).
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of artifacts currently retained.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Returns `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_up_to_cap_and_counts() {
        let cache: CompileCache<u64> = CompileCache::new(2);
        let a = cache.get_or_compile(1, || 10);
        let b = cache.get_or_compile(1, || 99);
        assert!(Arc::ptr_eq(&a, &b), "hit shares the first artifact");
        assert_eq!(*b, 10);
        assert_eq!(cache.stats(), (1, 1));
        cache.get_or_compile(2, || 20);
        assert_eq!(cache.len(), 2);
        // At the cap: compiled but not retained.
        let c = cache.get_or_compile(3, || 30);
        assert_eq!(*c, 30);
        assert_eq!(cache.len(), 2);
        // Existing keys still hit at the cap.
        assert_eq!(*cache.get_or_compile(2, || 99), 20);
    }
}
