//! HC4 contractors over conjunctions of atoms.
//!
//! A [`Contractor`] is built once from a [`PathCondition`]; it pre-compiles
//! every atom's normalized expression (`lhs - rhs ⋈ 0`) into a
//! [`Tape`] and then offers two operations used by the
//! paver and the analyses:
//!
//! * [`Contractor::contract`] — shrink a box without losing any solution
//!   (HC4-revise per atom, iterated to a fixpoint),
//! * [`Contractor::certainty`] — classify a box as certainly satisfying,
//!   certainly violating, or undecided.

use std::sync::Arc;

use qcoral_constraints::{PathCondition, RelOp};
use qcoral_interval::{Interval, IntervalBox};

use crate::tape::Tape;

/// Reusable working memory for [`Contractor::contract_with`] and
/// [`Contractor::certainty_with`]. The branch-and-prune loop contracts
/// thousands of boxes per paving; reusing one scratch across calls keeps
/// the hot path allocation-free after warm-up.
#[derive(Clone, Debug, Default)]
pub struct ContractScratch {
    /// Per-node interval values for the HC4 forward/backward passes.
    vals: Vec<Interval>,
    /// Dimension widths at the start of a fixpoint pass.
    widths: Vec<f64>,
}

impl ContractScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> ContractScratch {
        ContractScratch::default()
    }
}

/// Three-valued verdict for a box against a constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tri {
    /// Every point of the box satisfies the constraint.
    True,
    /// No point of the box satisfies the constraint.
    False,
    /// The box may contain both solutions and non-solutions.
    Unknown,
}

impl Tri {
    /// Three-valued conjunction.
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }
}

/// The interval the normalized expression must lie in for the atom to
/// hold. Strict and non-strict inequalities share a closed target: the
/// boundary has measure zero for the quantification, and closure keeps the
/// projection sound.
fn target(op: RelOp) -> Option<Interval> {
    match op {
        RelOp::Lt | RelOp::Le => Some(Interval::new(f64::NEG_INFINITY, 0.0)),
        RelOp::Gt | RelOp::Ge => Some(Interval::new(0.0, f64::INFINITY)),
        RelOp::Eq => Some(Interval::ZERO),
        // ≠ carves out a measure-zero set; it cannot narrow a box.
        RelOp::Ne => None,
    }
}

/// A compiled conjunction of atoms with HC4 forward/backward machinery.
/// Tapes are shared through the process-wide cache
/// ([`Tape::compile_cached`]), so contractors for recurring factors reuse
/// one compiled tape per distinct expression.
#[derive(Clone, Debug)]
pub struct Contractor {
    atoms: Vec<(Arc<Tape>, RelOp)>,
    nvars: usize,
    max_passes: usize,
}

impl Contractor {
    /// Compiles the atoms of `pc` for a domain with `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the condition references a variable index `≥ nvars`.
    pub fn new(pc: &PathCondition, nvars: usize) -> Contractor {
        assert!(
            pc.var_bound() <= nvars,
            "path condition references variable beyond domain ({} > {nvars})",
            pc.var_bound()
        );
        let atoms = pc
            .atoms()
            .iter()
            .map(|a| {
                let (expr, op) = a.normalized();
                (Tape::compile_cached(&expr), op)
            })
            .collect();
        Contractor {
            atoms,
            nvars,
            max_passes: 8,
        }
    }

    /// Like [`Contractor::new`] but bypassing the process-wide tape
    /// cache. Use for throwaway conjunctions that will never recur (the
    /// symbolic executor's per-path pruning queries), so they neither
    /// fill the cache's cap nor pin memory.
    ///
    /// # Panics
    ///
    /// Panics if the condition references a variable index `≥ nvars`.
    pub fn new_uncached(pc: &PathCondition, nvars: usize) -> Contractor {
        assert!(
            pc.var_bound() <= nvars,
            "path condition references variable beyond domain ({} > {nvars})",
            pc.var_bound()
        );
        let atoms = pc
            .atoms()
            .iter()
            .map(|a| {
                let (expr, op) = a.normalized();
                (Arc::new(Tape::compile(&expr)), op)
            })
            .collect();
        Contractor {
            atoms,
            nvars,
            max_passes: 8,
        }
    }

    /// Sets the fixpoint pass limit (default 8).
    pub fn with_max_passes(mut self, passes: usize) -> Contractor {
        self.max_passes = passes.max(1);
        self
    }

    /// Number of compiled atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` if the conjunction has no atoms (always true).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Number of domain variables the contractor was compiled for.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Narrows `boxed` in place without losing any solution of the
    /// conjunction. Returns `false` if the box was proven to contain no
    /// solution (the box is left in an empty state).
    ///
    /// Allocates fresh working memory per call; hot loops should hold a
    /// [`ContractScratch`] and use [`Contractor::contract_with`].
    ///
    /// # Panics
    ///
    /// Panics if `boxed.ndim() != self.nvars()`.
    pub fn contract(&self, boxed: &mut IntervalBox) -> bool {
        self.contract_with(boxed, &mut ContractScratch::new())
    }

    /// [`Contractor::contract`] with caller-provided working memory.
    pub fn contract_with(&self, boxed: &mut IntervalBox, scratch: &mut ContractScratch) -> bool {
        assert_eq!(boxed.ndim(), self.nvars, "contract: dimension mismatch");
        let vals = &mut scratch.vals;
        for _pass in 0..self.max_passes {
            scratch.widths.clear();
            scratch
                .widths
                .extend(boxed.dims().iter().map(Interval::width));
            for (tape, op) in &self.atoms {
                let Some(t) = target(*op) else { continue };
                let root_val = tape.forward(boxed, vals);
                if root_val.is_empty() {
                    // Expression undefined on the whole box ⇒ atom false
                    // everywhere ⇒ conjunction unsatisfiable here.
                    *boxed.dim_mut(0) = Interval::EMPTY;
                    return false;
                }
                let narrowed = root_val.intersect(&t);
                let root = tape.root();
                vals[root] = narrowed;
                if narrowed.is_empty() || !tape.backward(vals, boxed) {
                    *boxed.dim_mut(0) = Interval::EMPTY;
                    return false;
                }
            }
            // Stop when a full pass no longer shrinks anything noticeably.
            let mut changed = false;
            for (&before, after) in scratch.widths.iter().zip(boxed.dims()) {
                let shrink = before - after.width();
                if shrink > 1e-12 * before.max(1e-300) {
                    changed = true;
                    break;
                }
            }
            if !changed {
                break;
            }
        }
        true
    }

    /// Classifies the box: [`Tri::True`] if every point satisfies the
    /// whole conjunction, [`Tri::False`] if no point satisfies it,
    /// [`Tri::Unknown`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `boxed.ndim() != self.nvars()`.
    pub fn certainty(&self, boxed: &IntervalBox) -> Tri {
        self.certainty_with(boxed, &mut ContractScratch::new())
    }

    /// [`Contractor::certainty`] with caller-provided working memory.
    pub fn certainty_with(&self, boxed: &IntervalBox, scratch: &mut ContractScratch) -> Tri {
        assert_eq!(boxed.ndim(), self.nvars, "certainty: dimension mismatch");
        let mut acc = Tri::True;
        for (tape, op) in &self.atoms {
            let v = tape.forward(boxed, &mut scratch.vals);
            let verdict = atom_certainty(v, *op);
            acc = acc.and(verdict);
            if acc == Tri::False {
                return Tri::False;
            }
        }
        acc
    }
}

/// Certainty of `value ⋈ 0` given the interval image of the normalized
/// expression. An empty image means the expression is undefined on the
/// whole box, which can never satisfy an atom (NaN semantics).
fn atom_certainty(value: Interval, op: RelOp) -> Tri {
    if value.is_empty() {
        return Tri::False;
    }
    match op {
        RelOp::Lt => {
            if value.hi() < 0.0 {
                Tri::True
            } else if value.lo() >= 0.0 {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Le => {
            if value.hi() <= 0.0 {
                Tri::True
            } else if value.lo() > 0.0 {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Gt => {
            if value.lo() > 0.0 {
                Tri::True
            } else if value.hi() <= 0.0 {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Ge => {
            if value.lo() >= 0.0 {
                Tri::True
            } else if value.hi() < 0.0 {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Eq => {
            if value.is_point() && value.lo() == 0.0 {
                Tri::True
            } else if !value.contains(0.0) {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Ne => {
            if !value.contains(0.0) {
                Tri::True
            } else if value.is_point() && value.lo() == 0.0 {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_constraints::Domain;

    fn pc_and_dom(src: &str) -> (PathCondition, Domain, IntervalBox) {
        let sys = parse_system(src).unwrap();
        let dom_box = crate::domain_box(&sys.domain);
        (sys.constraint_set.pcs()[0].clone(), sys.domain, dom_box)
    }

    #[test]
    fn tri_and_truth_table() {
        assert_eq!(Tri::True.and(Tri::True), Tri::True);
        assert_eq!(Tri::True.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::Unknown.and(Tri::False), Tri::False);
        assert_eq!(Tri::False.and(Tri::True), Tri::False);
    }

    #[test]
    fn contract_simple_bounds() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 20000]; pc x > 9000;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // x narrows to roughly [9000, 20000].
        assert!(b[0].lo() >= 8999.0, "{}", b[0]);
        assert!(b[0].hi() <= 20000.0);
    }

    #[test]
    fn contract_conjunction_to_small_region() {
        let (pc, dom, mut b) =
            pc_and_dom("var x in [0, 10]; var y in [0, 10]; pc x + y <= 2 && x >= 1 && y >= 0.5;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        assert!(b[0].lo() >= 0.99 && b[0].hi() <= 1.51, "{}", b[0]);
        assert!(b[1].lo() >= 0.49 && b[1].hi() <= 1.01, "{}", b[1]);
    }

    #[test]
    fn contract_detects_unsat() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 1]; pc x > 2;");
        let c = Contractor::new(&pc, dom.len());
        assert!(!c.contract(&mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn contract_nonlinear() {
        let (pc, dom, mut b) = pc_and_dom("var x in [-10, 10]; pc x * x <= 4 && x >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        assert!(b[0].lo() >= -0.001 && b[0].hi() <= 2.3, "{}", b[0]);
    }

    #[test]
    fn contract_undefined_everywhere_is_unsat() {
        let (pc, dom, mut b) = pc_and_dom("var x in [-5, -1]; pc sqrt(x) >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert!(!c.contract(&mut b));
    }

    #[test]
    fn certainty_true_false_unknown() {
        let (pc, dom, b) = pc_and_dom("var x in [0, 1]; pc x >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);

        let (pc2, dom2, b2) = pc_and_dom("var x in [0, 1]; pc x > 2;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::False);

        let (pc3, dom3, b3) = pc_and_dom("var x in [0, 1]; pc x > 0.5;");
        let c3 = Contractor::new(&pc3, dom3.len());
        assert_eq!(c3.certainty(&b3), Tri::Unknown);
    }

    #[test]
    fn certainty_strict_vs_nonstrict_boundary() {
        // x ∈ [1, 2]: x >= 1 certainly true; x > 1 unknown (boundary).
        let (pc, dom, b) = pc_and_dom("var x in [1, 2]; pc x >= 1;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);
        let (pc2, dom2, b2) = pc_and_dom("var x in [1, 2]; pc x > 1;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::Unknown);
    }

    #[test]
    fn certainty_ne() {
        let (pc, dom, b) = pc_and_dom("var x in [1, 2]; pc x != 0;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);
        let (pc2, dom2, b2) = pc_and_dom("var x in [-1, 1]; pc x != 0;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::Unknown);
    }

    #[test]
    fn empty_conjunction_is_certainly_true() {
        let c = Contractor::new(&PathCondition::new(), 1);
        let b: IntervalBox = [Interval::new(0.0, 1.0)].into_iter().collect();
        assert_eq!(c.certainty(&b), Tri::True);
        let mut bb = b.clone();
        assert!(c.contract(&mut bb));
        assert_eq!(bb, b);
    }

    #[test]
    fn contract_never_loses_solutions_spot_check() {
        // Triangle constraint from the paper's Figure 2.
        let (pc, dom, mut b) =
            pc_and_dom("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // Known solutions must survive contraction. The triangle is
        // y ≤ 0 with |x| ≤ −y (x between y and −y).
        for &(px, py) in &[(0.5, -0.7), (-0.3, -0.5), (0.1, -0.2), (0.0, 0.0)] {
            assert!(pc.holds(&[px, py]));
            assert!(b.contains_point(&[px, py]), "{b} lost ({px}, {py})");
        }
    }

    #[test]
    fn transcendental_contraction() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 6.283185307179586]; pc sin(x) > 0.9;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // Solutions are around π/2 (≈ [1.12, 2.02]).
        assert!(b[0].lo() > 0.9 && b[0].hi() < 2.3, "{}", b[0]);
        let mid = std::f64::consts::FRAC_PI_2;
        assert!(b.contains_point(&[mid]));
    }
}
