//! HC4 contractors over conjunctions of atoms.
//!
//! A [`Contractor`] is built once from a [`PathCondition`]; the whole
//! conjunction is compiled into one [`IntervalTape`] — the interval kind
//! of the unified tape IR shared with the scalar and columnar float
//! evaluators — and then offers two operations used by the paver and the
//! analyses:
//!
//! * [`Contractor::contract`] — shrink a box without losing any solution
//!   (HC4-revise per atom, iterated to a fixpoint),
//! * [`Contractor::certainty`] — classify a box as certainly satisfying,
//!   certainly violating, or undecided.
//!
//! Both also come batched: [`Contractor::contract_classify_with`]
//! narrows and classifies many candidate boxes per dispatch through the
//! tape's structure-of-arrays kernels; the branch-and-prune paver feeds
//! whole work batches through one call.

use std::sync::Arc;

use qcoral_constraints::{EvalTape, IntervalTape, IvalScratch, PathCondition, RelOp};
use qcoral_interval::{Interval, IntervalBox};

/// Reusable working memory for [`Contractor::contract_with`] and
/// [`Contractor::certainty_with`]. The branch-and-prune loop contracts
/// thousands of boxes per paving; reusing one scratch across calls keeps
/// the hot path allocation-free after warm-up.
#[derive(Debug, Default)]
pub struct ContractScratch {
    ival: IvalScratch,
}

impl ContractScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> ContractScratch {
        ContractScratch::default()
    }
}

/// Three-valued verdict for a box against a constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Tri {
    /// Every point of the box satisfies the constraint.
    True,
    /// No point of the box satisfies the constraint.
    False,
    /// The box may contain both solutions and non-solutions.
    Unknown,
}

impl Tri {
    /// Three-valued conjunction.
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::False, _) | (_, Tri::False) => Tri::False,
            (Tri::True, Tri::True) => Tri::True,
            _ => Tri::Unknown,
        }
    }
}

/// A compiled conjunction of atoms with HC4 forward/backward machinery.
/// Tapes are shared through the process-wide cache
/// ([`crate::tape::compile_cached`]), so contractors for recurring
/// factors reuse one compiled tape per distinct conjunction.
#[derive(Clone, Debug)]
pub struct Contractor {
    tape: Arc<IntervalTape>,
    nvars: usize,
    max_passes: usize,
}

impl Contractor {
    /// Compiles the atoms of `pc` for a domain with `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the condition references a variable index `≥ nvars`.
    pub fn new(pc: &PathCondition, nvars: usize) -> Contractor {
        assert!(
            pc.var_bound() <= nvars,
            "path condition references variable beyond domain ({} > {nvars})",
            pc.var_bound()
        );
        Contractor {
            tape: crate::tape::compile_cached(pc),
            nvars,
            max_passes: 8,
        }
    }

    /// Like [`Contractor::new`] but bypassing the process-wide tape
    /// cache. Use for throwaway conjunctions that will never recur (the
    /// symbolic executor's per-path pruning queries), so they neither
    /// fill the cache's cap nor pin memory.
    ///
    /// # Panics
    ///
    /// Panics if the condition references a variable index `≥ nvars`.
    pub fn new_uncached(pc: &PathCondition, nvars: usize) -> Contractor {
        assert!(
            pc.var_bound() <= nvars,
            "path condition references variable beyond domain ({} > {nvars})",
            pc.var_bound()
        );
        Contractor {
            tape: Arc::new(IntervalTape::compile(&EvalTape::compile(pc))),
            nvars,
            max_passes: 8,
        }
    }

    /// Sets the fixpoint pass limit (default 8).
    pub fn with_max_passes(mut self, passes: usize) -> Contractor {
        self.max_passes = passes.max(1);
        self
    }

    /// Number of compiled atoms.
    pub fn len(&self) -> usize {
        self.tape.num_atoms()
    }

    /// Returns `true` if the conjunction has no atoms (always true).
    pub fn is_empty(&self) -> bool {
        self.tape.num_atoms() == 0
    }

    /// Number of domain variables the contractor was compiled for.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Narrows `boxed` in place without losing any solution of the
    /// conjunction. Returns `false` if the box was proven to contain no
    /// solution (the box is left in an empty state).
    ///
    /// Allocates fresh working memory per call; hot loops should hold a
    /// [`ContractScratch`] and use [`Contractor::contract_with`].
    ///
    /// # Panics
    ///
    /// Panics if `boxed.ndim() != self.nvars()`.
    pub fn contract(&self, boxed: &mut IntervalBox) -> bool {
        self.contract_with(boxed, &mut ContractScratch::new())
    }

    /// [`Contractor::contract`] with caller-provided working memory.
    pub fn contract_with(&self, boxed: &mut IntervalBox, scratch: &mut ContractScratch) -> bool {
        assert_eq!(boxed.ndim(), self.nvars, "contract: dimension mismatch");
        self.tape
            .contract(boxed, self.max_passes, &mut scratch.ival)
    }

    /// Classifies the box: [`Tri::True`] if every point satisfies the
    /// whole conjunction, [`Tri::False`] if no point satisfies it,
    /// [`Tri::Unknown`] otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `boxed.ndim() != self.nvars()`.
    pub fn certainty(&self, boxed: &IntervalBox) -> Tri {
        self.certainty_with(boxed, &mut ContractScratch::new())
    }

    /// [`Contractor::certainty`] with caller-provided working memory.
    pub fn certainty_with(&self, boxed: &IntervalBox, scratch: &mut ContractScratch) -> Tri {
        assert_eq!(boxed.ndim(), self.nvars, "certainty: dimension mismatch");
        self.tape
            .eval_atoms_batch(std::slice::from_ref(boxed), &mut scratch.ival);
        self.classify_lane(0, &scratch.ival)
    }

    /// Contracts a whole batch of boxes and classifies each survivor, in
    /// one structure-of-arrays dispatch per tape node. `verdicts[i]`
    /// reports box `i`: [`Tri::False`] when it was proven solution-free
    /// (its box is emptied in place, exactly like a failing
    /// [`Contractor::contract_with`]), otherwise the certainty of the
    /// *contracted* box. This is the paver's bulk kernel: narrowing and
    /// classifying N boxes costs one pass over the node pool per atom
    /// instead of N.
    ///
    /// # Panics
    ///
    /// Panics if any box's dimension count differs from
    /// [`Contractor::nvars`].
    pub fn contract_classify_with(
        &self,
        boxes: &mut [IntervalBox],
        verdicts: &mut Vec<Tri>,
        scratch: &mut ContractScratch,
    ) {
        verdicts.clear();
        if boxes.is_empty() {
            return;
        }
        for bx in boxes.iter() {
            assert_eq!(bx.ndim(), self.nvars, "contract batch: dimension mismatch");
        }
        self.tape
            .contract_batch(boxes, self.max_passes, &mut scratch.ival);
        // Certainty needs clean (un-narrowed) operand images over the
        // contracted boxes; the batch shapes match, so lane sat-flags
        // survive this second dispatch.
        self.tape.eval_atoms_batch(boxes, &mut scratch.ival);
        for ln in 0..boxes.len() {
            if !scratch.ival.sat(ln) {
                verdicts.push(Tri::False);
            } else {
                verdicts.push(self.classify_lane(ln, &scratch.ival));
            }
        }
    }

    /// Folds per-atom certainties for one lane of the scratch's images.
    fn classify_lane(&self, lane: usize, scratch: &IvalScratch) -> Tri {
        let mut acc = Tri::True;
        for (k, &(_, op, _)) in self.tape.atoms().iter().enumerate() {
            let (l, r) = scratch.image(k, lane);
            acc = acc.and(atom_certainty(l, op, r));
            if acc == Tri::False {
                return Tri::False;
            }
        }
        acc
    }
}

/// Certainty of `l ⋈ r` given the interval images of the two operands
/// over a box. An empty image means the operand is undefined on the
/// whole box, which can never satisfy an atom (NaN semantics). Working
/// on the operand images directly (rather than the sign of `l − r`)
/// avoids the subtraction's outward rounding.
fn atom_certainty(l: Interval, op: RelOp, r: Interval) -> Tri {
    if l.is_empty() || r.is_empty() {
        return Tri::False;
    }
    let disjoint = l.hi() < r.lo() || r.hi() < l.lo();
    let same_point = l.is_point() && r.is_point() && l.lo() == r.lo();
    match op {
        RelOp::Lt => {
            if l.hi() < r.lo() {
                Tri::True
            } else if l.lo() >= r.hi() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Le => {
            if l.hi() <= r.lo() {
                Tri::True
            } else if l.lo() > r.hi() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Gt => {
            if l.lo() > r.hi() {
                Tri::True
            } else if l.hi() <= r.lo() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Ge => {
            if l.lo() >= r.hi() {
                Tri::True
            } else if l.hi() < r.lo() {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Eq => {
            if same_point {
                Tri::True
            } else if disjoint {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        RelOp::Ne => {
            if disjoint {
                Tri::True
            } else if same_point {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_constraints::Domain;

    fn pc_and_dom(src: &str) -> (PathCondition, Domain, IntervalBox) {
        let sys = parse_system(src).unwrap();
        let dom_box = crate::domain_box(&sys.domain);
        (sys.constraint_set.pcs()[0].clone(), sys.domain, dom_box)
    }

    #[test]
    fn tri_and_truth_table() {
        assert_eq!(Tri::True.and(Tri::True), Tri::True);
        assert_eq!(Tri::True.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::Unknown.and(Tri::False), Tri::False);
        assert_eq!(Tri::False.and(Tri::True), Tri::False);
    }

    #[test]
    fn contract_simple_bounds() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 20000]; pc x > 9000;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // x narrows to roughly [9000, 20000].
        assert!(b[0].lo() >= 8999.0, "{}", b[0]);
        assert!(b[0].hi() <= 20000.0);
    }

    #[test]
    fn contract_conjunction_to_small_region() {
        let (pc, dom, mut b) =
            pc_and_dom("var x in [0, 10]; var y in [0, 10]; pc x + y <= 2 && x >= 1 && y >= 0.5;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        assert!(b[0].lo() >= 0.99 && b[0].hi() <= 1.51, "{}", b[0]);
        assert!(b[1].lo() >= 0.49 && b[1].hi() <= 1.01, "{}", b[1]);
    }

    #[test]
    fn contract_detects_unsat() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 1]; pc x > 2;");
        let c = Contractor::new(&pc, dom.len());
        assert!(!c.contract(&mut b));
        assert!(b.is_empty());
    }

    #[test]
    fn contract_nonlinear() {
        let (pc, dom, mut b) = pc_and_dom("var x in [-10, 10]; pc x * x <= 4 && x >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        assert!(b[0].lo() >= -0.001 && b[0].hi() <= 2.3, "{}", b[0]);
    }

    #[test]
    fn contract_undefined_everywhere_is_unsat() {
        let (pc, dom, mut b) = pc_and_dom("var x in [-5, -1]; pc sqrt(x) >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert!(!c.contract(&mut b));
    }

    #[test]
    fn certainty_true_false_unknown() {
        let (pc, dom, b) = pc_and_dom("var x in [0, 1]; pc x >= 0;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);

        let (pc2, dom2, b2) = pc_and_dom("var x in [0, 1]; pc x > 2;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::False);

        let (pc3, dom3, b3) = pc_and_dom("var x in [0, 1]; pc x > 0.5;");
        let c3 = Contractor::new(&pc3, dom3.len());
        assert_eq!(c3.certainty(&b3), Tri::Unknown);
    }

    #[test]
    fn certainty_strict_vs_nonstrict_boundary() {
        // x ∈ [1, 2]: x >= 1 certainly true; x > 1 unknown (boundary).
        let (pc, dom, b) = pc_and_dom("var x in [1, 2]; pc x >= 1;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);
        let (pc2, dom2, b2) = pc_and_dom("var x in [1, 2]; pc x > 1;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::Unknown);
    }

    #[test]
    fn certainty_ne() {
        let (pc, dom, b) = pc_and_dom("var x in [1, 2]; pc x != 0;");
        let c = Contractor::new(&pc, dom.len());
        assert_eq!(c.certainty(&b), Tri::True);
        let (pc2, dom2, b2) = pc_and_dom("var x in [-1, 1]; pc x != 0;");
        let c2 = Contractor::new(&pc2, dom2.len());
        assert_eq!(c2.certainty(&b2), Tri::Unknown);
    }

    #[test]
    fn empty_conjunction_is_certainly_true() {
        let c = Contractor::new(&PathCondition::new(), 1);
        let b: IntervalBox = [Interval::new(0.0, 1.0)].into_iter().collect();
        assert_eq!(c.certainty(&b), Tri::True);
        let mut bb = b.clone();
        assert!(c.contract(&mut bb));
        assert_eq!(bb, b);
    }

    #[test]
    fn contract_never_loses_solutions_spot_check() {
        // Triangle constraint from the paper's Figure 2.
        let (pc, dom, mut b) =
            pc_and_dom("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // Known solutions must survive contraction. The triangle is
        // y ≤ 0 with |x| ≤ −y (x between y and −y).
        for &(px, py) in &[(0.5, -0.7), (-0.3, -0.5), (0.1, -0.2), (0.0, 0.0)] {
            assert!(pc.holds(&[px, py]));
            assert!(b.contains_point(&[px, py]), "{b} lost ({px}, {py})");
        }
    }

    #[test]
    fn transcendental_contraction() {
        let (pc, dom, mut b) = pc_and_dom("var x in [0, 6.283185307179586]; pc sin(x) > 0.9;");
        let c = Contractor::new(&pc, dom.len());
        assert!(c.contract(&mut b));
        // Solutions are around π/2 (≈ [1.12, 2.02]).
        assert!(b[0].lo() > 0.9 && b[0].hi() < 2.3, "{}", b[0]);
        let mid = std::f64::consts::FRAC_PI_2;
        assert!(b.contains_point(&[mid]));
    }

    #[test]
    fn batch_contract_classify_matches_serial() {
        let (pc, dom, b) = pc_and_dom("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        let c = Contractor::new(&pc, dom.len());
        // A spread of sub-boxes: inner, outer, straddling, and the domain.
        let quarter = |lo: f64, hi: f64| -> IntervalBox {
            [Interval::new(lo, hi), Interval::new(lo, hi)]
                .into_iter()
                .collect()
        };
        let cases = vec![
            b.clone(),
            quarter(-0.5, 0.5),
            quarter(0.9, 1.0),
            quarter(0.0, 1.0),
            quarter(-0.1, 0.1),
        ];
        let mut scratch = ContractScratch::new();
        // Serial reference: contract + certainty one box at a time.
        let mut serial_boxes = cases.clone();
        let mut serial: Vec<Tri> = Vec::new();
        for bx in &mut serial_boxes {
            if !c.contract_with(bx, &mut scratch) {
                serial.push(Tri::False);
            } else {
                serial.push(c.certainty_with(bx, &mut scratch));
            }
        }
        let mut batch_boxes = cases;
        let mut verdicts = Vec::new();
        c.contract_classify_with(&mut batch_boxes, &mut verdicts, &mut scratch);
        assert_eq!(verdicts, serial);
        for (sb, bb) in serial_boxes.iter().zip(&batch_boxes) {
            assert_eq!(sb, bb, "batched contraction must be bit-identical");
        }
    }

    #[test]
    fn batch_classify_empty_conjunction() {
        let c = Contractor::new(&PathCondition::new(), 1);
        let mut boxes: Vec<IntervalBox> = vec![[Interval::new(0.0, 1.0)].into_iter().collect()];
        let mut verdicts = Vec::new();
        c.contract_classify_with(&mut boxes, &mut verdicts, &mut ContractScratch::new());
        assert_eq!(verdicts, vec![Tri::True]);
    }
}
