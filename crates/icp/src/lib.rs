//! Interval constraint propagation (ICP): the reproduction's substitute
//! for RealPaver [Granvilliers & Benhamou, 2006], which the paper uses as
//! an off-the-shelf component (§2.2, §5).
//!
//! Contract (matching the paper's description of RealPaver): given a
//! conjunction of (possibly non-linear) constraints over a bounded box,
//! produce a set of non-overlapping boxes whose union **contains all
//! solutions**. Boxes are classified as
//!
//! * *inner* — every point satisfies the constraints (the paper's "tight"
//!   boxes; sampling them is unnecessary: mean 1, variance 0), or
//! * *boundary* — may contain both solutions and non-solutions (the
//!   paper's "loose" boxes; these are sampled).
//!
//! The solver mirrors RealPaver's knobs (§5): a bound on the number of
//! boxes reported per query (paper: 10), a precision bound in decimal
//! digits (paper: 3), and a time budget per query (paper: 2 s) — see
//! [`PaverConfig`].
//!
//! The algorithm is the classical branch-and-prune loop over an HC4
//! contractor: forward interval evaluation of each constraint's expression
//! tree, backward projection narrowing ([`Contractor`]), then fixpoint
//! iteration over all conjuncts, bisecting undecided boxes until a stop
//! criterion fires ([`pave`]).
//!
//! # Example
//!
//! ```
//! use qcoral_constraints::parse::parse_system;
//! use qcoral_icp::{domain_box, pave, PaverConfig};
//!
//! let sys = parse_system("var x in [-1, 1]; var y in [-1, 1];
//!                         pc x <= -y && y <= x;").unwrap();
//! let dom = domain_box(&sys.domain);
//! let paving = pave(&sys.constraint_set.pcs()[0], &dom, &PaverConfig::default());
//! // All solutions of the triangle are covered by the paving.
//! assert!(paving.all_boxes().count() > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod contract;
pub mod paver;
pub mod tape;

pub use cache::CompileCache;
pub use contract::{ContractScratch, Contractor, Tri};
pub use paver::{batch_lru_cutoff, pave, Paver, PaverConfig, Paving, PavingCache};
pub use tape::tape_cache_stats;

use qcoral_constraints::Domain;
use qcoral_interval::{Interval, IntervalBox};

/// Converts a [`Domain`] into the corresponding [`IntervalBox`].
pub fn domain_box(domain: &Domain) -> IntervalBox {
    domain
        .iter()
        .map(|(_, v)| Interval::new(v.lo, v.hi))
        .collect()
}

/// Quick satisfiability filter used by the symbolic executor: returns
/// `false` only if interval propagation *proves* the conjunction has no
/// solution inside `boxed`. A `true` answer means "possibly satisfiable".
pub fn maybe_satisfiable(pc: &qcoral_constraints::PathCondition, boxed: &IntervalBox) -> bool {
    // Uncached: symbolic execution queries path-specific conjunctions
    // that never recur; caching them would only fill the tape cache's
    // cap and crowd out the analyzer's recurring factors.
    let contractor = Contractor::new_uncached(pc, boxed.ndim());
    let mut b = boxed.clone();
    contractor.contract(&mut b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;

    #[test]
    fn domain_box_roundtrip() {
        let sys = parse_system("var a in [0, 1]; var b in [-2, 3];").unwrap();
        let b = domain_box(&sys.domain);
        assert_eq!(b.ndim(), 2);
        assert_eq!(b[0], Interval::new(0.0, 1.0));
        assert_eq!(b[1], Interval::new(-2.0, 3.0));
    }

    #[test]
    fn maybe_satisfiable_prunes_contradictions() {
        let sys = parse_system("var x in [0, 1]; pc x > 0.5 && x < 0.2;").unwrap();
        let dom = domain_box(&sys.domain);
        assert!(!maybe_satisfiable(&sys.constraint_set.pcs()[0], &dom));
    }

    #[test]
    fn maybe_satisfiable_keeps_feasible() {
        let sys = parse_system("var x in [0, 1]; pc x > 0.5 && x < 0.7;").unwrap();
        let dom = domain_box(&sys.domain);
        assert!(maybe_satisfiable(&sys.constraint_set.pcs()[0], &dom));
    }
}
