//! Branch-and-prune paving: RealPaver's box-decomposition service.
//!
//! [`pave`] splits a domain box into *inner* boxes (all points satisfy the
//! conjunction) and *boundary* boxes (undecided), whose union contains all
//! solutions. Regions outside the paving are proven solution-free — the
//! qCORAL stratified sampler never needs to sample them (paper §3.3).

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use qcoral_constraints::PathCondition;
use qcoral_interval::IntervalBox;

use crate::contract::{ContractScratch, Contractor, Tri};

/// Stop criteria for the paver, mirroring the RealPaver configuration the
/// paper reports in §5: "time budget per query of 2 s, a bound on the
/// number of boxes reported per query of 10, and a lower bound on the size
/// of the computed boxes of 3 decimal digits".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaverConfig {
    /// Maximum number of boxes reported (inner + boundary).
    pub max_boxes: usize,
    /// Boxes whose largest side is below `10^-precision_digits` are not
    /// bisected further.
    pub precision_digits: u32,
    /// Wall-clock budget per query.
    pub time_budget: Duration,
    /// Fixpoint pass limit per contraction.
    pub max_passes: usize,
}

impl Default for PaverConfig {
    /// The paper's RealPaver configuration: 10 boxes, 3 decimal digits,
    /// 2 s budget.
    fn default() -> PaverConfig {
        PaverConfig {
            max_boxes: 10,
            precision_digits: 3,
            time_budget: Duration::from_secs(2),
            max_passes: 8,
        }
    }
}

impl PaverConfig {
    /// Side-length threshold below which boxes are not bisected.
    pub fn min_width(&self) -> f64 {
        10f64.powi(-(self.precision_digits as i32))
    }
}

/// The result of paving: disjoint boxes covering all solutions.
#[derive(Clone, Debug, Default)]
pub struct Paving {
    /// Boxes where the conjunction certainly holds everywhere.
    pub inner: Vec<IntervalBox>,
    /// Boxes that may contain both solutions and non-solutions.
    pub boundary: Vec<IntervalBox>,
}

impl Paving {
    /// Returns `true` if the constraint was proven unsatisfiable on the
    /// queried box (no box survived).
    pub fn is_unsat(&self) -> bool {
        self.inner.is_empty() && self.boundary.is_empty()
    }

    /// All boxes, inner first. Borrowing iterator — the paving's boxes are
    /// not cloned (the old `Vec`-returning version cloned every box and
    /// dominated the sampler's setup cost).
    pub fn all_boxes(&self) -> impl Iterator<Item = &IntervalBox> + '_ {
        self.inner.iter().chain(self.boundary.iter())
    }

    /// Number of boxes in the paving.
    pub fn len(&self) -> usize {
        self.inner.len() + self.boundary.len()
    }

    /// Returns `true` if the paving has no boxes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Work item ordered by box volume so the largest undecided region is
/// refined first (best-first branch and prune).
struct WorkItem {
    boxed: IntervalBox,
    volume: f64,
}

impl PartialEq for WorkItem {
    fn eq(&self, other: &Self) -> bool {
        self.volume == other.volume
    }
}

impl Eq for WorkItem {}

impl PartialOrd for WorkItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WorkItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.volume
            .partial_cmp(&other.volume)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Number of work items popped and contracted per batched dispatch. A
/// batch amortizes the per-atom kernel dispatch over many boxes (the
/// structure-of-arrays layout of
/// `qcoral_constraints::IntervalTape::contract_batch`); larger batches
/// also commit the paver to refining more boxes per round, so the size
/// stays modest to keep best-first ordering meaningful.
const PAVE_BATCH: usize = 16;

/// A reusable paver holding a compiled [`Contractor`].
#[derive(Debug)]
pub struct Paver {
    contractor: Contractor,
    config: PaverConfig,
}

impl Paver {
    /// Compiles `pc` for paving over boxes with `nvars` dimensions.
    pub fn new(pc: &PathCondition, nvars: usize, config: PaverConfig) -> Paver {
        let contractor = Contractor::new(pc, nvars).with_max_passes(config.max_passes);
        Paver { contractor, config }
    }

    /// The paver's configuration.
    pub fn config(&self) -> &PaverConfig {
        &self.config
    }

    /// Pavés `domain`, returning disjoint boxes covering all solutions of
    /// the compiled conjunction. Work items are popped up to
    /// `PAVE_BATCH` (16) at a time and contracted + classified in one bulk
    /// dispatch; decisions are then made in pop (largest-first) order, so
    /// the budget accounting matches the serial loop. One
    /// [`ContractScratch`] is reused across the whole branch-and-prune
    /// loop, so the per-box work is free of heap allocation except for
    /// the boxes themselves.
    pub fn pave(&self, domain: &IntervalBox) -> Paving {
        let start = Instant::now();
        let mut scratch = ContractScratch::new();
        let mut paving = Paving::default();
        let mut heap = BinaryHeap::new();
        heap.push(WorkItem {
            volume: domain.volume(),
            boxed: domain.clone(),
        });
        let min_width = self.config.min_width();
        let mut batch: Vec<IntervalBox> = Vec::with_capacity(PAVE_BATCH);
        let mut verdicts: Vec<Tri> = Vec::with_capacity(PAVE_BATCH);

        while !heap.is_empty() {
            batch.clear();
            while batch.len() < PAVE_BATCH {
                let Some(WorkItem { boxed, .. }) = heap.pop() else {
                    break;
                };
                batch.push(boxed);
            }
            // Contraction never increases the box count, so it is applied
            // even once the box budget is exhausted.
            self.contractor
                .contract_classify_with(&mut batch, &mut verdicts, &mut scratch);
            let n = batch.len();
            for (i, boxed) in batch.drain(..).enumerate() {
                match verdicts[i] {
                    Tri::True => {
                        paving.inner.push(boxed);
                        continue;
                    }
                    Tri::False => continue,
                    Tri::Unknown => {}
                }
                // Undecided batch mates still pending after this box
                // count against the budget exactly as if they were on
                // the heap.
                let remaining = n - i - 1;
                let total = paving.len() + heap.len() + remaining + 1;
                let out_of_budget = total >= self.config.max_boxes
                    || boxed.max_width() <= min_width
                    || boxed.ndim() == 0
                    || start.elapsed() >= self.config.time_budget;
                if out_of_budget {
                    paving.boundary.push(boxed);
                } else {
                    let (l, r) = boxed.bisect();
                    let lv = l.volume();
                    let rv = r.volume();
                    heap.push(WorkItem {
                        boxed: l,
                        volume: lv,
                    });
                    heap.push(WorkItem {
                        boxed: r,
                        volume: rv,
                    });
                }
            }
        }
        paving
    }
}

/// One-shot convenience wrapper around [`Paver`].
pub fn pave(pc: &PathCondition, domain: &IntervalBox, config: &PaverConfig) -> Paving {
    Paver::new(pc, domain.ndim(), config.clone()).pave(domain)
}

/// Cache key: the conjunction's structural fingerprint (linear in DAG
/// size, never a rendered tree), the box's exact bit pattern, and the
/// budget-relevant paver knobs.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PavingKey {
    pc: u128,
    box_bits: Vec<(u64, u64)>,
    max_boxes: usize,
    precision_digits: u32,
    time_budget_ns: u128,
    max_passes: usize,
}

impl PavingKey {
    fn new(pc: &PathCondition, domain: &IntervalBox, config: &PaverConfig) -> PavingKey {
        PavingKey {
            pc: pc.fingerprint(),
            box_bits: domain
                .dims()
                .iter()
                .map(|d| (d.lo().to_bits(), d.hi().to_bits()))
                .collect(),
            max_boxes: config.max_boxes,
            precision_digits: config.precision_digits,
            time_budget_ns: config.time_budget.as_nanos(),
            max_passes: config.max_passes,
        }
    }
}

/// A concurrent cache of pavings keyed by the canonicalized conjunction,
/// the queried box, and the budget-relevant paver knobs.
///
/// Independent factors recur across path conditions (the empirical core of
/// the paper's PARTCACHE observation), so the analyzer asks for the same
/// `(conjunction, sub-box)` paving over and over — sometimes from several
/// threads at once. The cache compiles and pavés once and shares the
/// result as an [`Arc<Paving>`]. On a race, whichever paving lands first
/// wins, and *every* caller gets that one, keeping all consumers of a key
/// consistent within a run. Bounded: past [`PavingCache::CAP`] distinct
/// keys, the least-recently-used pavings are evicted in batches — a
/// process-lifetime cache (e.g. a long-lived service sharing one across
/// all requests) keeps tracking the current working set instead of
/// freezing on the first `CAP` keys it ever saw.
#[derive(Debug, Default)]
pub struct PavingCache {
    map: Mutex<PavingMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cutoff tick for one batch-LRU eviction round over a map whose entries
/// carry `last_used` ticks: the caller drops every entry with
/// `last_used <= cutoff`. Evicts the overflow past `cap` plus a ~12%
/// batch margin — amortized batches instead of per-insert scans — always
/// at least one entry and never all of them, so the most recently
/// touched entry survives. Shared by [`PavingCache`] and the core
/// crate's `FactorStore` so the two bounded caches cannot drift apart.
///
/// Callers must invoke this only when `ticks.len() > cap >= 1`.
pub fn batch_lru_cutoff(mut ticks: Vec<u64>, cap: usize) -> u64 {
    let len = ticks.len();
    debug_assert!(len > cap && cap >= 1);
    let excess = len.saturating_sub(cap);
    let drop_n = (excess + cap / 8).clamp(1, len - 1);
    ticks.sort_unstable();
    ticks[drop_n - 1]
}

#[derive(Debug, Default)]
struct PavingMap {
    map: HashMap<PavingKey, (Arc<Paving>, u64)>,
    tick: u64,
}

impl PavingCache {
    /// Maximum retained pavings (each holds up to `max_boxes` boxes).
    pub const CAP: usize = 1024;

    /// Creates an empty cache.
    pub fn new() -> PavingCache {
        PavingCache::default()
    }

    /// Returns the paving of `pc` over `domain`, computing it at most once
    /// per distinct live key.
    pub fn pave_cached(
        &self,
        pc: &PathCondition,
        domain: &IntervalBox,
        config: &PaverConfig,
    ) -> Arc<Paving> {
        self.pave_cached_counted(pc, domain, config).0
    }

    /// [`PavingCache::pave_cached`], additionally reporting whether the
    /// paving was answered from the cache (`true` = hit). The flag gives
    /// per-caller accounting: the cache-global [`PavingCache::stats`]
    /// counters mix every concurrent user of a shared cache.
    pub fn pave_cached_counted(
        &self,
        pc: &PathCondition,
        domain: &IntervalBox,
        config: &PaverConfig,
    ) -> (Arc<Paving>, bool) {
        let key = PavingKey::new(pc, domain, config);
        {
            let mut inner = self.map.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((p, last_used)) = inner.map.get_mut(&key) {
                *last_used = tick;
                let p = Arc::clone(p);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (p, true);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Pave outside the lock: pavings can take the full time budget and
        // must not serialize unrelated lookups.
        let fresh = Arc::new(pave(pc, domain, config));
        let mut inner = self.map.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let shared = Arc::clone(&inner.map.entry(key).or_insert((fresh, tick)).0);
        if inner.map.len() > Self::CAP {
            let ticks: Vec<u64> = inner.map.values().map(|&(_, t)| t).collect();
            let cutoff = batch_lru_cutoff(ticks, Self::CAP);
            inner.map.retain(|_, &mut (_, t)| t > cutoff);
        }
        (shared, false)
    }

    /// Number of distinct pavings held.
    pub fn len(&self) -> usize {
        self.map.lock().map.len()
    }

    /// Returns `true` if no paving is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since creation.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops all cached pavings (counters are retained).
    pub fn clear(&self) {
        self.map.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_interval::Interval;

    fn setup(src: &str) -> (PathCondition, IntervalBox) {
        let sys = parse_system(src).unwrap();
        let b = crate::domain_box(&sys.domain);
        (sys.constraint_set.pcs()[0].clone(), b)
    }

    fn paving_covers(paving: &Paving, point: &[f64]) -> bool {
        paving.all_boxes().any(|b| b.contains_point(point))
    }

    #[test]
    fn box_constraint_is_exact() {
        // The paper's Cube case: ICP identifies the exact box, σ = 0.
        let (pc, dom) = setup(
            "var x in [-2, 2]; var y in [-2, 2]; var z in [-2, 2];
             pc x >= -1 && x <= 1 && y >= -1 && y <= 1 && z >= -1 && z <= 1;",
        );
        let paving = pave(&pc, &dom, &PaverConfig::default());
        assert!(paving.boundary.is_empty(), "cube should be exactly inner");
        assert_eq!(paving.inner.len(), 1);
        let vol: f64 = paving.inner.iter().map(IntervalBox::volume).sum();
        assert!((vol - 8.0).abs() < 1e-6, "volume {vol}");
    }

    #[test]
    fn unsat_gives_empty_paving() {
        let (pc, dom) = setup("var x in [0, 1]; pc x > 1.5;");
        let paving = pave(&pc, &dom, &PaverConfig::default());
        assert!(paving.is_unsat());
    }

    #[test]
    fn respects_box_budget() {
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        for budget in [4, 10, 32] {
            let cfg = PaverConfig {
                max_boxes: budget,
                ..PaverConfig::default()
            };
            let paving = pave(&pc, &dom, &cfg);
            assert!(paving.len() <= budget, "{} > {budget}", paving.len());
            assert!(!paving.is_unsat());
        }
    }

    #[test]
    fn paving_covers_all_sampled_solutions() {
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x <= -y && y <= x;");
        let paving = pave(&pc, &dom, &PaverConfig::default());
        // Deterministic grid scan: every satisfying point must be covered.
        let n = 50;
        for i in 0..=n {
            for j in 0..=n {
                let px = -1.0 + 2.0 * i as f64 / n as f64;
                let py = -1.0 + 2.0 * j as f64 / n as f64;
                if pc.holds(&[px, py]) {
                    assert!(
                        paving_covers(&paving, &[px, py]),
                        "paving lost solution ({px}, {py})"
                    );
                }
            }
        }
    }

    #[test]
    fn inner_boxes_only_contain_solutions() {
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        let cfg = PaverConfig {
            max_boxes: 64,
            ..PaverConfig::default()
        };
        let paving = pave(&pc, &dom, &cfg);
        assert!(!paving.inner.is_empty(), "circle should yield inner boxes");
        for b in &paving.inner {
            // Check the corners and center of each inner box.
            let c = b.center();
            assert!(pc.holds(&c));
            let corners = [
                vec![b[0].lo(), b[1].lo()],
                vec![b[0].lo(), b[1].hi()],
                vec![b[0].hi(), b[1].lo()],
                vec![b[0].hi(), b[1].hi()],
            ];
            for corner in corners {
                assert!(pc.holds(&corner), "inner box {b} has corner outside");
            }
        }
    }

    #[test]
    fn more_boxes_tighter_cover() {
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        let small = pave(
            &pc,
            &dom,
            &PaverConfig {
                max_boxes: 4,
                ..PaverConfig::default()
            },
        );
        let large = pave(
            &pc,
            &dom,
            &PaverConfig {
                max_boxes: 128,
                ..PaverConfig::default()
            },
        );
        let cover = |p: &Paving| -> f64 { p.all_boxes().map(IntervalBox::volume).sum() };
        // The true area is π; covers over-approximate it and shrink with
        // more boxes.
        assert!(cover(&large) <= cover(&small) + 1e-9);
        assert!(cover(&large) >= std::f64::consts::PI - 1e-6);
    }

    #[test]
    fn transcendental_paving() {
        let (pc, dom) = setup("var h in [-10, 10]; var t in [-10, 10]; pc sin(h * t) > 0.25;");
        let paving = pave(&pc, &dom, &PaverConfig::default());
        assert!(!paving.is_unsat());
        // A known solution: h·t = π/2.
        assert!(paving_covers(&paving, &[1.0, std::f64::consts::FRAC_PI_2]));
    }

    #[test]
    fn zero_dim_degenerate() {
        // A condition over a single variable whose domain is a point.
        let dom: IntervalBox = [Interval::new(1.0, 1.0)].into_iter().collect();
        let sys = parse_system("var x in [0, 2]; pc x >= 0.5;").unwrap();
        let paving = pave(&sys.constraint_set.pcs()[0], &dom, &PaverConfig::default());
        assert_eq!(paving.inner.len(), 1);
    }

    #[test]
    fn ne_atom_is_never_narrowed_but_classified() {
        // x != 0.5 carves a measure-zero set: the paver cannot narrow on
        // it, but certainty classification still works per box.
        let (pc, dom) = setup("var x in [0, 1]; pc x != 0.5 && x > 0.25;");
        let paving = pave(&pc, &dom, &PaverConfig::default());
        assert!(!paving.is_unsat());
        // Solutions on both sides of the removed point survive.
        assert!(paving_covers(&paving, &[0.3]));
        assert!(paving_covers(&paving, &[0.9]));
    }

    #[test]
    fn equality_atom_collapses_to_thin_boxes() {
        let (pc, dom) = setup("var x in [0, 2]; var y in [0, 2]; pc x + y == 1;");
        let paving = pave(&pc, &dom, &PaverConfig::default());
        assert!(!paving.is_unsat());
        // The line x + y = 1 must stay covered...
        assert!(paving_covers(&paving, &[0.5, 0.5]));
        assert!(paving_covers(&paving, &[0.25, 0.75]));
        // ...while the cover collapses towards zero volume.
        let cover: f64 = paving.all_boxes().map(IntervalBox::volume).sum();
        assert!(cover < 1.0, "cover {cover} should shrink towards the line");
        // Equality constraints can never be certainly true on a fat box.
        assert!(paving.inner.is_empty());
    }

    #[test]
    fn precision_floor_halts_bisection() {
        // A 0-digit precision floor (min side 1.0) must stop refinement
        // long before the generous box budget does; 3 digits refines
        // further under the same budget.
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        let coarse = pave(
            &pc,
            &dom,
            &PaverConfig {
                max_boxes: 1024,
                precision_digits: 0,
                ..PaverConfig::default()
            },
        );
        let fine = pave(
            &pc,
            &dom,
            &PaverConfig {
                max_boxes: 1024,
                precision_digits: 3,
                ..PaverConfig::default()
            },
        );
        assert!(
            coarse.len() < 64,
            "0-digit paving should stay coarse, got {} boxes",
            coarse.len()
        );
        assert!(coarse.len() < fine.len());
        // No box was bisected below the floor: every split parent had
        // max_width > 1, so children have max_width > 0.5.
        for b in coarse.all_boxes() {
            assert!(b.max_width() > 0.5 - 1e-12, "{b}");
        }
    }

    #[test]
    fn noninteger_power_paving_stays_tight() {
        // A band constraint through a non-integer power. The tightened
        // pow forward/backward projections (no [0, ∞) hull) let the
        // contractor collapse the domain to the solution band directly,
        // so the paver must not spend its box budget re-discovering it:
        // solutions are x ∈ [4^0.4, 9^0.4] ≈ [1.741, 2.408].
        let (pc, dom) = setup("var x in [0, 100]; pc pow(x, 2.5) >= 4 && pow(x, 2.5) <= 9;");
        let cfg = PaverConfig::default();
        let paving = pave(&pc, &dom, &cfg);
        assert!(!paving.is_unsat());
        assert!(paving_covers(&paving, &[2.0]));
        // No budget regression: with the over-wide hulls the paver burned
        // its whole budget on boundary boxes scattered across [0, 100]
        // and could never certify an inner box.
        assert!(paving.len() <= cfg.max_boxes, "{}", paving.len());
        assert!(
            !paving.inner.is_empty(),
            "interior of the band must certify as inner"
        );
        for b in paving.all_boxes() {
            assert!(
                b[0].lo() >= 1.7 && b[0].hi() <= 2.45,
                "box {b} strays outside the solution band"
            );
        }
    }

    #[test]
    fn zero_time_budget_halts_immediately_but_stays_sound() {
        let (pc, dom) = setup("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;");
        let paving = pave(
            &pc,
            &dom,
            &PaverConfig {
                max_boxes: 4096,
                time_budget: Duration::ZERO,
                ..PaverConfig::default()
            },
        );
        // The very first undecided box is emitted without bisection.
        assert_eq!(paving.len(), 1, "no refinement under a zero budget");
        // Soundness is unaffected: a known solution stays covered.
        assert!(paving_covers(&paving, &[0.0, 0.0]));
    }

    #[test]
    fn paving_cache_computes_each_key_once() {
        let sys =
            parse_system("var x in [-1, 1]; var y in [-1, 1]; pc x * x + y * y <= 1;").unwrap();
        let pc = sys.constraint_set.pcs()[0].clone();
        let dom = crate::domain_box(&sys.domain);
        let cache = PavingCache::new();
        let cfg = PaverConfig::default();
        let a = cache.pave_cached(&pc, &dom, &cfg);
        let b = cache.pave_cached(&pc, &dom, &cfg);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second request is a hit");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
        // A different box is a different key.
        let half: IntervalBox = [Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)]
            .into_iter()
            .collect();
        let c = cache.pave_cached(&pc, &half, &cfg);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), (1, 2));
        // So is a different budget.
        let small = PaverConfig {
            max_boxes: 4,
            ..PaverConfig::default()
        };
        let d = cache.pave_cached(&pc, &dom, &small);
        assert!(d.len() <= 4);
        assert_eq!(cache.stats(), (1, 3));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn paving_cache_evicts_lru_instead_of_freezing() {
        // A process-lifetime cache must keep admitting new keys past CAP
        // (evicting the least-recently-used), and a hot key must survive.
        let sys = parse_system("var x in [0, 1]; pc x > 0.5;").unwrap();
        let pc = sys.constraint_set.pcs()[0].clone();
        let cache = PavingCache::new();
        let cfg = PaverConfig {
            max_boxes: 2,
            ..PaverConfig::default()
        };
        let boxed = |lo: f64| -> IntervalBox { [Interval::new(lo, 1.0)].into_iter().collect() };
        let hot = boxed(0.0);
        cache.pave_cached(&pc, &hot, &cfg);
        for i in 1..=(PavingCache::CAP + 8) {
            cache.pave_cached(&pc, &boxed(i as f64 * 1e-6), &cfg);
            // Keep the hot key recent so eviction targets the others.
            cache.pave_cached(&pc, &hot, &cfg);
        }
        assert!(cache.len() <= PavingCache::CAP, "len {}", cache.len());
        let (hits0, _) = cache.stats();
        cache.pave_cached(&pc, &hot, &cfg);
        assert_eq!(cache.stats().0, hits0 + 1, "hot key survived eviction");
    }

    #[test]
    fn paver_reuse() {
        let sys = parse_system("var x in [0, 1]; pc x > 0.5;").unwrap();
        let paver = Paver::new(&sys.constraint_set.pcs()[0], 1, PaverConfig::default());
        let d1: IntervalBox = [Interval::new(0.0, 1.0)].into_iter().collect();
        let d2: IntervalBox = [Interval::new(0.6, 0.9)].into_iter().collect();
        assert!(!paver.pave(&d1).is_unsat());
        let p2 = paver.pave(&d2);
        assert_eq!(p2.inner.len(), 1);
        assert!(p2.boundary.is_empty());
    }
}
