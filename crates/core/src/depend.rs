//! The variable dependency relation of paper §4.2 (Definition 1).
//!
//! Two input variables depend on each other if they appear together in at
//! least one constraint of any path condition; the relation is closed
//! transitively, so it is an equivalence and induces a partition of the
//! variables. Constraints over different partition classes are
//! statistically independent and their estimators multiply (Eq. 7–8).
//!
//! The paper computes weakly connected components of a variable
//! co-occurrence graph (via the JUNG library); here the partition is
//! computed with a union-find structure, which is asymptotically better
//! and dependency-free.

use qcoral_constraints::{ConstraintSet, VarId, VarSet};

/// A classic disjoint-set (union-find) structure with path compression
/// and union by rank.
///
/// # Example
///
/// ```
/// use qcoral::depend::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 2);
/// assert_eq!(uf.find(0), uf.find(2));
/// assert_ne!(uf.find(0), uf.find(1));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Computes the dependency partition of Definition 1: the
/// `computeDependencyRelation` procedure of Algorithm 1.
///
/// Variables co-occurring in any atom of any path condition are unioned;
/// the returned [`VarSet`]s are the equivalence classes, in increasing
/// order of their smallest member. Every variable in `0..nvars` appears in
/// exactly one class (unconstrained variables form singletons).
pub fn dependency_partition(cs: &ConstraintSet, nvars: usize) -> Vec<VarSet> {
    let mut uf = UnionFind::new(nvars);
    for pc in cs.pcs() {
        for atom in pc.atoms() {
            let mut scratch = VarSet::new(nvars);
            atom.collect_vars(&mut scratch);
            let mut first: Option<usize> = None;
            for v in scratch.iter() {
                match first {
                    None => first = Some(v.index()),
                    Some(f) => {
                        uf.union(f, v.index());
                    }
                }
            }
        }
    }
    // Group variables by representative, preserving smallest-member order.
    let mut class_of_root: Vec<Option<usize>> = vec![None; nvars];
    let mut classes: Vec<VarSet> = Vec::new();
    for v in 0..nvars {
        let root = uf.find(v);
        let class = match class_of_root[root] {
            Some(c) => c,
            None => {
                classes.push(VarSet::new(nvars));
                class_of_root[root] = Some(classes.len() - 1);
                classes.len() - 1
            }
        };
        classes[class].insert(VarId(v as u32));
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;

    fn partition(src: &str) -> Vec<Vec<u32>> {
        let sys = parse_system(src).unwrap();
        dependency_partition(&sys.constraint_set, sys.domain.len())
            .into_iter()
            .map(|s| s.iter().map(|v| v.0).collect())
            .collect()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        uf.union(1, 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(4, 5));
    }

    #[test]
    fn paper_example_partition() {
        // §4.4: headFlap and tailFlap depend on each other (they share
        // the sin constraint); altitude is independent.
        let p = partition(
            "var altitude in [0, 20000];
             var headFlap in [-10, 10];
             var tailFlap in [-10, 10];
             pc altitude > 9000;
             pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
        );
        assert_eq!(p, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn transitive_closure() {
        // x–y via one atom, y–z via another, in *different* PCs:
        // Definition 1 closes over all path conditions of the program.
        let p = partition(
            "var x in [0,1]; var y in [0,1]; var z in [0,1];
             pc x + y < 1;
             pc y + z < 1;",
        );
        assert_eq!(p, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn unconstrained_vars_are_singletons() {
        let p = partition(
            "var a in [0,1]; var unused in [0,1]; var b in [0,1];
             pc a < 0.5 && b < 0.5;",
        );
        assert_eq!(p, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn fully_dependent_single_class() {
        let p = partition(
            "var a in [0,1]; var b in [0,1]; var c in [0,1];
             pc a * b * c > 0.1;",
        );
        assert_eq!(p, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_constraint_set_gives_singletons() {
        let p = partition("var a in [0,1]; var b in [0,1];");
        assert_eq!(p, vec![vec![0], vec![1]]);
    }
}
