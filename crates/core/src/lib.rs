//! qCORAL: compositional statistical quantification of solution spaces for
//! complex mathematical constraints — a from-scratch Rust reproduction of
//! the PLDI 2014 paper *"Compositional Solution Space Quantification for
//! Probabilistic Software Analysis"* (Borges, Filieri, d'Amorim,
//! Păsăreanu, Visser).
//!
//! Given a disjunction of path conditions `PCT` produced by symbolic
//! execution and a usage profile over a bounded floating-point input
//! domain, the analyzer estimates
//!
//! ```text
//! Pr[ input ∼ profile satisfies any PC in PCT ]   (paper Eq. 1)
//! ```
//!
//! returning a mean and a sound variance bound. Three composable
//! techniques drive the estimator variance down:
//!
//! 1. **Disjunction composition** (§4.1): path conditions are pairwise
//!    disjoint, so their estimators add; the summed variance is an upper
//!    bound (Theorem 1).
//! 2. **Conjunction decomposition** (§4.2): the variable dependency
//!    partition splits each PC into independent factors whose estimators
//!    multiply (Eq. 7–8); factors recur across PCs and are cached.
//! 3. **ICP-driven stratified sampling** (§3.3): an interval solver pavés
//!    each factor's sub-domain into boxes guaranteed to contain all
//!    solutions; sampling is stratified over the boxes (Eq. 3), and
//!    regions outside the paving (or inside *inner* boxes) contribute
//!    exact values with zero variance.
//!
//! # Quick start
//!
//! ```
//! use qcoral::{Analyzer, Options};
//! use qcoral_constraints::parse::parse_system;
//! use qcoral_mc::UsageProfile;
//!
//! // The paper's §4.4 safety-monitor example.
//! let sys = parse_system(
//!     "var altitude in [0, 20000];
//!      var headFlap in [-10, 10];
//!      var tailFlap in [-10, 10];
//!      pc altitude > 9000;
//!      pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
//! ).unwrap();
//! let profile = UsageProfile::uniform(sys.domain.len());
//! let report = Analyzer::new(Options::default())
//!     .analyze(&sys.constraint_set, &sys.domain, &profile);
//! println!("P(supervisor called) = {}", report.estimate);
//! assert!((report.estimate.mean - 0.7378).abs() < 0.02);
//! ```

#![warn(missing_docs)]

pub mod analyzer;
pub mod bulkpred;
pub mod depend;
pub mod factor_store;
pub mod iterative;

pub use analyzer::{Analyzer, Options, Report, Stats};
pub use bulkpred::{active_backend, pred_cache_stats, CompiledPred};
pub use depend::{dependency_partition, UnionFind};
pub use factor_store::{FactorStore, FactorStoreEntry, InsertHook, DEFAULT_STORE_CAP};

// Re-export the pieces users need to drive the API without spelling out
// every substrate crate.
pub use qcoral_constraints::{Atom, ConstraintSet, Domain, Expr, PathCondition, RelOp, VarId};
pub use qcoral_icp::PaverConfig;
pub use qcoral_mc::{Allocation, Deadline, Estimate, UsageProfile};
pub use qcoral_obs::{Trace, TraceData};
