//! Cross-run factor-estimate store: Algorithm 2's compositional cache
//! lifted beyond a single analysis.
//!
//! The per-analysis partition cache (`PARTCACHE`) pays off when factors
//! recur across path conditions of *one* query. A long-lived service sees
//! the same independent factors recur across *queries* — and, with a
//! persisted snapshot, across process restarts. [`FactorStore`] keys
//! estimates by the same canonical factor identity the in-run cache uses
//! (structural fingerprint × sub-box bits × projected profile) plus a
//! fingerprint of every analyzer option that affects the sampled value
//! (budget, seed, chunking, stratification, allocation, paver limits).
//!
//! Because every factor's RNG stream is derived from its canonical key
//! (see `Analyzer`), a store hit returns the *bit-identical* estimate a
//! fresh computation would produce — reuse is observationally pure, so a
//! warm service answers recurring factors with zero new pavings and zero
//! new samples without perturbing results.
//!
//! The store is bounded: beyond [`FactorStore::capacity`] entries, the
//! least-recently-used entries are evicted in small batches.
//! [`FactorStore::entries`] / [`FactorStore::absorb`] expose the contents
//! as plain serializable [`FactorStoreEntry`] records for snapshotting;
//! malformed or invalid records are skipped on absorb, never fatal.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use qcoral_obs::{Counter, Registry};
use serde::{Deserialize, Serialize};

use qcoral_mc::Estimate;

/// Canonical identity of one independent factor: the projected
/// conjunction's structural fingerprint, the sub-box's exact interval
/// bits, and the projected usage-profile bits.
pub(crate) type FactorKey = (u128, Vec<(u64, u64)>, Vec<u64>);

/// Full store key: the factor identity plus the options fingerprint.
#[derive(Clone, PartialEq, Eq, Hash)]
struct StoreKey {
    opts_fp: u64,
    factor: FactorKey,
}

struct Slot {
    estimate: Estimate,
    last_used: u64,
}

struct Inner {
    map: HashMap<StoreKey, Slot>,
    tick: u64,
}

/// A bounded, thread-safe, persistable map from canonical factor identity
/// to its estimate. Shared across analyzers via `Arc` (see
/// `Analyzer::with_factor_store`).
pub struct FactorStore {
    cap: usize,
    inner: Mutex<Inner>,
    // Per-instance `qcoral-obs` counters (tests assert per-instance
    // exactness, so these are never minted from the global registry);
    // a server attaches them for exposition via
    // [`FactorStore::register_metrics`].
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    revision: AtomicU64,
    /// Observer invoked once per *fresh* insert (never for re-inserts of
    /// existing keys, never during [`FactorStore::absorb`]), after the
    /// map lock is released. Lets a persister append each new estimate
    /// to a write-ahead log the instant it exists, so a crash between
    /// snapshots loses nothing.
    insert_hook: Mutex<Option<InsertHook>>,
}

/// Callback type of [`FactorStore::set_insert_hook`].
pub type InsertHook = Box<dyn Fn(&FactorStoreEntry) + Send + Sync>;

/// Default entry capacity (each entry is a few hundred bytes).
pub const DEFAULT_STORE_CAP: usize = 65_536;

/// One store entry in wire/snapshot form. Floats are carried as exact
/// bits so a snapshot round-trip cannot perturb estimates; box intervals
/// are flattened `[lo₀, hi₀, lo₁, hi₁, …]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FactorStoreEntry {
    /// Fingerprint of the analyzer options that shaped the estimate.
    pub opts_fp: u64,
    /// Structural fingerprint of the projected conjunction.
    pub fingerprint: u128,
    /// Sub-box bounds as `f64::to_bits`, lo/hi interleaved (even length).
    pub box_bits: Vec<u64>,
    /// Projected usage-profile encoding (see `Analyzer`'s cache keying).
    pub profile_bits: Vec<u64>,
    /// `estimate.mean.to_bits()`.
    pub mean_bits: u64,
    /// `estimate.variance.to_bits()`.
    pub variance_bits: u64,
}

impl FactorStore {
    /// Creates an empty store holding at most `cap` entries (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> FactorStore {
        FactorStore {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            revision: AtomicU64::new(0),
            insert_hook: Mutex::new(None),
        }
    }

    /// Installs (or clears) the fresh-insert observer: called once per
    /// estimate newly inserted by `FactorStore::insert` (never for
    /// `FactorStore::absorb`, so recovery replay cannot echo into a
    /// log). The hook runs on the inserting thread with no store lock
    /// held, so it may call back into the store (though appending to a
    /// log is the intended use).
    pub fn set_insert_hook(&self, hook: Option<InsertHook>) {
        *self.insert_hook.lock() = hook;
    }

    /// The configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Returns `true` if the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative `(hits, misses)` across all lookups.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Attaches this store's hit/miss counters to `registry` as
    /// `qcoral_factor_store_hits_total` / `qcoral_factor_store_misses_total`
    /// (the service does this once for its long-lived store).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "qcoral_factor_store_hits_total",
            "Cross-run factor-store lookups answered from the store.",
            Arc::clone(&self.hits),
        );
        registry.register_counter(
            "qcoral_factor_store_misses_total",
            "Cross-run factor-store lookups that missed.",
            Arc::clone(&self.misses),
        );
    }

    /// Monotone counter bumped whenever an insert/absorb actually adds a
    /// new entry; lets a persister skip snapshots when nothing changed
    /// (lookups and re-inserts of existing keys do not dirty the store).
    pub fn revision(&self) -> u64 {
        self.revision.load(Ordering::Relaxed)
    }

    pub(crate) fn get(&self, opts_fp: u64, factor: &FactorKey) -> Option<Estimate> {
        // The clone keeps the lookup O(1); factor keys are a fingerprint
        // plus a few machine words per dimension, far below sampling cost.
        let key = StoreKey {
            opts_fp,
            factor: factor.clone(),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|slot| {
            slot.last_used = tick;
            slot.estimate
        });
        drop(inner);
        match found {
            Some(e) => {
                self.hits.inc();
                Some(e)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    pub(crate) fn insert(&self, opts_fp: u64, factor: FactorKey, estimate: Estimate) {
        self.insert_impl(opts_fp, factor, estimate, true);
    }

    /// `notify` distinguishes genuinely new estimates (analyzer inserts,
    /// which the hook should log) from re-loaded ones
    /// ([`FactorStore::absorb`], whose entries came *from* persistence
    /// and must not be logged again).
    fn insert_impl(&self, opts_fp: u64, factor: FactorKey, estimate: Estimate, notify: bool) {
        let key = StoreKey { opts_fp, factor };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let inserted = match inner.map.entry(key) {
            // Re-inserting an existing key keeps the stored estimate
            // (estimates for one key are deterministic, so they agree)
            // and only refreshes recency — the store did not change, so
            // the revision must not move, or every warm hit-path
            // re-insert would dirty the store and trigger a needless
            // O(store-size) snapshot rewrite.
            Entry::Occupied(mut o) => {
                o.get_mut().last_used = tick;
                None
            }
            Entry::Vacant(v) => {
                let entry = (notify && self.insert_hook.lock().is_some()).then(|| {
                    let factor = &v.key().factor;
                    FactorStoreEntry {
                        opts_fp,
                        fingerprint: factor.0,
                        box_bits: factor.1.iter().flat_map(|&(lo, hi)| [lo, hi]).collect(),
                        profile_bits: factor.2.clone(),
                        mean_bits: estimate.mean.to_bits(),
                        variance_bits: estimate.variance.to_bits(),
                    }
                });
                v.insert(Slot {
                    estimate,
                    last_used: tick,
                });
                Some(entry)
            }
        };
        if inner.map.len() > self.cap {
            evict_lru(&mut inner, self.cap);
        }
        drop(inner);
        if let Some(entry) = inserted {
            self.revision.fetch_add(1, Ordering::Relaxed);
            if let Some(entry) = entry {
                if let Some(hook) = &*self.insert_hook.lock() {
                    hook(&entry);
                }
            }
        }
    }

    /// Snapshots the contents as serializable entries, least recently
    /// used first (so absorbing them in order reproduces the LRU order).
    pub fn entries(&self) -> Vec<FactorStoreEntry> {
        let inner = self.inner.lock();
        let mut pairs: Vec<(&StoreKey, &Slot)> = inner.map.iter().collect();
        pairs.sort_by_key(|(_, slot)| slot.last_used);
        pairs
            .into_iter()
            .map(|(key, slot)| FactorStoreEntry {
                opts_fp: key.opts_fp,
                fingerprint: key.factor.0,
                box_bits: key.factor.1.iter().flat_map(|&(lo, hi)| [lo, hi]).collect(),
                profile_bits: key.factor.2.clone(),
                mean_bits: slot.estimate.mean.to_bits(),
                variance_bits: slot.estimate.variance.to_bits(),
            })
            .collect()
    }

    /// Loads entries (e.g. from a snapshot), skipping malformed ones:
    /// odd-length `box_bits`, NaN means, or negative/NaN variances are
    /// dropped silently — a damaged snapshot degrades to a colder cache,
    /// never an invalid estimate. Returns the number of entries absorbed.
    pub fn absorb(&self, entries: impl IntoIterator<Item = FactorStoreEntry>) -> usize {
        let mut accepted = 0;
        for e in entries {
            if e.box_bits.len() % 2 != 0 {
                continue;
            }
            let mean = f64::from_bits(e.mean_bits);
            let variance = f64::from_bits(e.variance_bits);
            if mean.is_nan() || variance.is_nan() || variance < 0.0 {
                continue;
            }
            let factor: FactorKey = (
                e.fingerprint,
                e.box_bits.chunks_exact(2).map(|p| (p[0], p[1])).collect(),
                e.profile_bits,
            );
            self.insert_impl(e.opts_fp, factor, Estimate { mean, variance }, false);
            accepted += 1;
        }
        accepted
    }
}

/// Drops the least-recently-used ~12% of entries (at least one, never
/// all), so a saturated store evicts in amortized batches instead of
/// per insert. The batch policy is shared with `PavingCache`.
fn evict_lru(inner: &mut Inner, cap: usize) {
    let ticks: Vec<u64> = inner.map.values().map(|s| s.last_used).collect();
    let cutoff = qcoral_icp::batch_lru_cutoff(ticks, cap);
    inner.map.retain(|_, slot| slot.last_used > cutoff);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> FactorKey {
        (i as u128, vec![(i, i + 1)], vec![0])
    }

    fn est(i: u64) -> Estimate {
        Estimate {
            mean: i as f64 / 100.0,
            variance: 1e-6,
        }
    }

    #[test]
    fn get_insert_round_trip_and_stats() {
        let s = FactorStore::new(16);
        assert_eq!(s.get(1, &key(0)), None);
        s.insert(1, key(0), est(5));
        assert_eq!(s.get(1, &key(0)), Some(est(5)));
        // Different options fingerprint ⇒ different entry.
        assert_eq!(s.get(2, &key(0)), None);
        assert_eq!(s.stats(), (1, 2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_eviction_bounds_size_and_keeps_recent() {
        let cap = 32;
        let s = FactorStore::new(cap);
        for i in 0..cap as u64 {
            s.insert(0, key(i), est(i));
        }
        // Touch the first entries so they become the most recent.
        for i in 0..4 {
            assert!(s.get(0, &key(i)).is_some());
        }
        // Overflow the store; the touched entries must survive.
        for i in cap as u64..(cap as u64 + 8) {
            s.insert(0, key(i), est(i));
        }
        assert!(s.len() <= cap, "len {} over cap {cap}", s.len());
        for i in 0..4 {
            assert!(s.get(0, &key(i)).is_some(), "recently used {i} evicted");
        }
    }

    #[test]
    fn capacity_one_keeps_the_newest_entry() {
        // Regression: the eviction batch must never drop *everything* —
        // with cap = 1 the just-inserted entry has to survive.
        let s = FactorStore::new(1);
        for i in 0..5 {
            s.insert(0, key(i), est(i));
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(0, &key(i)), Some(est(i)), "newest entry evicted");
        }
    }

    #[test]
    fn entries_round_trip_bit_exact() {
        let s = FactorStore::new(8);
        let e = Estimate {
            mean: 0.1 + 0.2, // not exactly 0.3: bit-exactness matters
            variance: f64::MIN_POSITIVE,
        };
        s.insert(7, key(3), e);
        let snapshot = s.entries();
        assert_eq!(snapshot.len(), 1);
        let t = FactorStore::new(8);
        assert_eq!(t.absorb(snapshot), 1);
        let back = t.get(7, &key(3)).unwrap();
        assert_eq!(back.mean.to_bits(), e.mean.to_bits());
        assert_eq!(back.variance.to_bits(), e.variance.to_bits());
    }

    #[test]
    fn absorb_skips_malformed_entries() {
        let t = FactorStore::new(8);
        let good = FactorStoreEntry {
            opts_fp: 0,
            fingerprint: 1,
            box_bits: vec![0, 1],
            profile_bits: vec![],
            mean_bits: 0.5f64.to_bits(),
            variance_bits: 0.0f64.to_bits(),
        };
        let odd_box = FactorStoreEntry {
            box_bits: vec![0, 1, 2],
            ..good.clone()
        };
        let nan_mean = FactorStoreEntry {
            mean_bits: f64::NAN.to_bits(),
            ..good.clone()
        };
        let neg_var = FactorStoreEntry {
            variance_bits: (-1.0f64).to_bits(),
            ..good.clone()
        };
        assert_eq!(t.absorb([odd_box, nan_mean, neg_var, good]), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn revision_tracks_inserts() {
        let s = FactorStore::new(8);
        let r0 = s.revision();
        s.insert(0, key(1), est(1));
        assert!(s.revision() > r0);
        let r1 = s.revision();
        s.get(0, &key(1));
        assert_eq!(s.revision(), r1, "lookups do not dirty the store");
        s.insert(0, key(1), est(2));
        assert_eq!(
            s.revision(),
            r1,
            "re-inserting an existing key does not dirty the store"
        );
        assert_eq!(s.get(0, &key(1)), Some(est(1)), "stored estimate kept");
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let cap = 32;
        let s = FactorStore::new(cap);
        for i in 0..cap as u64 {
            s.insert(0, key(i), est(i));
        }
        // Re-insert (not look up) the oldest entries, then overflow: the
        // re-inserted keys must now be recent enough to survive eviction.
        for i in 0..4 {
            s.insert(0, key(i), est(i));
        }
        for i in cap as u64..(cap as u64 + 8) {
            s.insert(0, key(i), est(i));
        }
        for i in 0..4 {
            assert!(s.get(0, &key(i)).is_some(), "re-inserted {i} evicted");
        }
    }
}
