//! The qCORAL analyzer: Algorithms 1–3 of the paper.
//!
//! [`Analyzer::analyze`] implements Algorithm 1 (iterate over path
//! conditions, sum the estimates per Theorem 1), delegating to
//! `analyzeConjunction` (Algorithm 2: split the conjunction along the
//! dependency partition, multiply the factor estimators per Eq. 7–8, with
//! optional caching) and `stratSampling` (Algorithm 3: pave the factor's
//! sub-domain with ICP, then run stratified hit-or-miss Monte Carlo per
//! Eq. 3).
//!
//! # Parallelism and determinism
//!
//! The pipeline is embarrassingly parallel at three levels, and
//! [`Options::parallel`] fans all three out:
//!
//! 1. **path conditions** (Theorem 1 — disjoint estimators add),
//! 2. **independent factors** of each conjunction (Eq. 7–8 — independent
//!    estimators multiply), and
//! 3. **sample chunks / strata** inside each factor's stratified run.
//!
//! Every random stream is derived from *what* is being sampled — the
//! canonical factor key or the `(pc, factor)` index pair, plus the chunk
//! counter — never from execution order. Combined with fixed reduction
//! orders, a parallel run returns the bit-identical [`Report`] estimate
//! of the serial run (provided the ICP time budget does not bind, the
//! same caveat the serial path already carries).

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use qcoral_obs::trace::arg;
use qcoral_obs::{Counter, Histogram, Registry, Trace, TraceData};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use qcoral_constraints::{ConstraintSet, Domain, PathCondition, VarId, VarSet};
use qcoral_icp::{domain_box, tape_cache_stats, PaverConfig, PavingCache};
use qcoral_interval::IntervalBox;
use qcoral_mc::{
    align_strata, hit_or_miss_plan_bulk, initial_allocation, mix_seed, neyman_allocation,
    refine_plan_bulk, stratified_plan_bulk, Allocation, BulkPred, Deadline, Dist, Estimate,
    IsEstimator, SamplePlan, Stratum, StratumAccum, UsageProfile,
};

use crate::bulkpred::CompiledPred;
use crate::depend::dependency_partition;
use crate::factor_store::{FactorKey, FactorStore};

/// Feature configuration for the analyzer. The paper's named
/// configurations map to presets:
///
/// * `qCORAL{}` — [`Options::plain`]: hit-or-miss Monte Carlo per path
///   condition, no stratification, no decomposition.
/// * `qCORAL{STRAT}` — [`Options::strat`]: adds ICP-driven stratified
///   sampling of each path condition.
/// * `qCORAL{STRAT,PARTCACHE}` — [`Options::strat_partcache`]: adds
///   independence partitioning and the partition cache.
///
/// Options serialize (and deserialize) as plain JSON, which is how the
/// `qcoral-service` wire protocol carries per-request configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Options {
    /// Total sample budget per analyzed (sub-)problem.
    pub samples: u64,
    /// Enable ICP-based stratified sampling (the paper's `STRAT`).
    pub stratified: bool,
    /// Decompose conjunctions along the dependency partition (§4.2).
    pub partition: bool,
    /// Cache and reuse partition results across path conditions (the
    /// caching half of the paper's `PARTCACHE`). Requires `partition`.
    pub cache: bool,
    /// Sample allocation across strata (paper: equal per stratum).
    /// [`Allocation::ImportanceAdaptive`] additionally arms the
    /// rare-event escalation below.
    pub allocation: Allocation,
    /// Rare-event escalation threshold, active only under
    /// [`Allocation::ImportanceAdaptive`]: a factor whose stratified
    /// pilot round *estimates* a probability strictly below this (exact
    /// mass plus weighted boundary hit rate — the raw conditional hit
    /// rate is no rarity signal, because boundary strata hug the
    /// constraint surface) switches its boundary-region budget to the
    /// paver-seeded adaptive importance-sampling engine
    /// ([`qcoral_mc::IsEstimator`]); at or above it the factor stays
    /// stratified. `1.0` forces IS on every factor with boundary
    /// strata, `0.0` disables the switch entirely. Folded into the
    /// sampling fingerprints only under `ImportanceAdaptive`, so every
    /// other configuration keeps its historic cache keys (and warm
    /// stores) unchanged.
    pub is_threshold: f64,
    /// ICP paver budget (paper defaults: 10 boxes, 3 digits, 2 s).
    pub paver: PaverConfig,
    /// Fan out path conditions, independent factors and sample chunks
    /// across threads (Theorem 1 explicitly allows it). Results are
    /// deterministic regardless of scheduling.
    pub parallel: bool,
    /// Samples per RNG chunk: the parallel work granule of the sampler.
    /// Affects which stream each sample draws from (so changing it changes
    /// the estimate like reseeding does), never the statistics.
    pub chunk: u64,
    /// RNG seed; same seed ⇒ same report.
    pub seed: u64,
    /// Target standard error for [`Analyzer::analyze_iterative`]: the
    /// refinement loop stops as soon as the composed estimate's
    /// `√variance` is at or below this. `None` makes the pipeline and
    /// service use one-shot [`Analyzer::analyze`]; a direct
    /// `analyze_iterative` call treats `None` as an unreachable target
    /// (refine until `max_rounds` or until no refinable variance
    /// remains). Ignored by `analyze`.
    pub target_stderr: Option<f64>,
    /// Sampling-round ceiling for `analyze_iterative`, counting the
    /// initial round (clamped to at least 1). Ignored by `analyze`.
    pub max_rounds: u64,
    /// Extra-sample budget each refinement round (rounds after the
    /// first) distributes across the highest-variance factors. Ignored
    /// by `analyze`.
    pub round_budget: u64,
    /// Discretization error bound ε for non-uniform usage profiles:
    /// continuous marginals are discretized into adaptive histograms
    /// whose per-bin mass-linearization error is at most ε (see
    /// [`mod@qcoral_mc::discretize`]), and boundary strata are split along
    /// the resulting mass edges so allocation follows probability mass.
    /// Changing ε changes the strata — and therefore the sample streams
    /// — of factors over non-uniform marginals, so ε is folded into
    /// those factors' cache keys; uniform-profile
    /// factors are unaffected and keep their keys.
    pub profile_epsilon: f64,
    /// Soft wall-clock budget in milliseconds. When set, the analyzer
    /// converts it to a [`Deadline`] at the start of the run (unless an
    /// explicit one was attached via [`Analyzer::with_deadline`], which
    /// wins) and cooperatively stops sampling once it expires, returning
    /// a best-effort *partial* report flagged
    /// [`Stats::deadline_exceeded`] instead of an error. `None` (the
    /// default) never interrupts anything. Excluded from the sampling
    /// fingerprints: a deadline changes how much work finishes, never
    /// which streams completed work draws from — and partial results are
    /// never cached (see [`FactorStore`]), so cached estimates stay
    /// reproducible.
    pub deadline_ms: Option<u64>,
    /// Collect a per-request execution trace: span timers over paving,
    /// tape compilation, factor sampling and refinement rounds, drained
    /// into [`Report::trace`] and exportable as Chrome trace-event JSON
    /// (see [`qcoral_obs::TraceData::to_chrome_json`]). Spans read
    /// monotonic clocks only and never touch an RNG, so tracing cannot
    /// perturb estimates: trace-on and trace-off runs are bit-identical.
    /// Excluded from both sampling fingerprints (like `parallel` and
    /// `deadline_ms`) — tracing never changes which streams are drawn,
    /// so warm factor stores stay warm.
    pub trace: bool,
}

impl Options {
    /// `qCORAL{}`: plain per-PC hit-or-miss Monte Carlo.
    pub fn plain() -> Options {
        Options {
            samples: 10_000,
            stratified: false,
            partition: false,
            cache: false,
            allocation: Allocation::EqualPerStratum,
            is_threshold: qcoral_mc::DEFAULT_IS_THRESHOLD,
            paver: PaverConfig::default(),
            parallel: false,
            chunk: SamplePlan::DEFAULT_CHUNK,
            seed: 0xC05A1u64,
            target_stderr: None,
            max_rounds: 8,
            round_budget: 10_000,
            profile_epsilon: 1e-3,
            deadline_ms: None,
            trace: false,
        }
    }

    /// `qCORAL{STRAT}`: ICP-driven stratified sampling per path condition.
    pub fn strat() -> Options {
        Options {
            stratified: true,
            ..Options::plain()
        }
    }

    /// `qCORAL{STRAT,PARTCACHE}`: stratification plus independence
    /// partitioning with caching — the paper's full configuration.
    pub fn strat_partcache() -> Options {
        Options {
            stratified: true,
            partition: true,
            cache: true,
            ..Options::plain()
        }
    }

    /// Sets the per-problem sample budget.
    pub fn with_samples(mut self, samples: u64) -> Options {
        self.samples = samples;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Options {
        self.seed = seed;
        self
    }

    /// Sets the stratum allocation policy.
    /// [`Allocation::ImportanceAdaptive`] arms the rare-event
    /// importance-sampling escalation (see [`Options::is_threshold`]).
    pub fn with_allocation(mut self, allocation: Allocation) -> Options {
        self.allocation = allocation;
        self
    }

    /// Sets the rare-event pilot-estimate threshold (see
    /// [`Options::is_threshold`]).
    pub fn with_is_threshold(mut self, threshold: f64) -> Options {
        self.is_threshold = threshold;
        self
    }

    /// Enables or disables parallel PC analysis.
    pub fn with_parallel(mut self, parallel: bool) -> Options {
        self.parallel = parallel;
        self
    }

    /// Sets the ICP paver configuration.
    pub fn with_paver(mut self, paver: PaverConfig) -> Options {
        self.paver = paver;
        self
    }

    /// Sets the target standard error for
    /// [`Analyzer::analyze_iterative`] (and routes the pipeline/service
    /// through it).
    pub fn with_target_stderr(mut self, target: f64) -> Options {
        self.target_stderr = Some(target);
        self
    }

    /// Sets the sampling-round ceiling for `analyze_iterative`.
    pub fn with_max_rounds(mut self, rounds: u64) -> Options {
        self.max_rounds = rounds;
        self
    }

    /// Sets the per-round refinement budget for `analyze_iterative`.
    pub fn with_round_budget(mut self, budget: u64) -> Options {
        self.round_budget = budget;
        self
    }

    /// Sets the profile-discretization error bound ε (see
    /// [`Options::profile_epsilon`]).
    pub fn with_profile_epsilon(mut self, epsilon: f64) -> Options {
        self.profile_epsilon = epsilon;
        self
    }

    /// Sets the soft wall-clock budget (see [`Options::deadline_ms`]).
    pub fn with_deadline_ms(mut self, ms: u64) -> Options {
        self.deadline_ms = Some(ms);
        self
    }

    /// Enables or disables per-request trace collection (see
    /// [`Options::trace`]).
    pub fn with_trace(mut self, trace: bool) -> Options {
        self.trace = trace;
        self
    }

    /// Fingerprint of every option that shapes a factor's *estimate*:
    /// sample budget, seed, chunking, stratification, allocation and the
    /// paver limits. `parallel` is excluded — fan-out never changes
    /// results — so serial and parallel runs share cross-run cache
    /// entries. Keys the [`FactorStore`].
    ///
    /// The hash is an explicitly pinned FNV-1a fold (not
    /// `DefaultHasher`, whose algorithm may change between Rust
    /// releases): the value is persisted in factor-store snapshots, so
    /// it must match across processes *and* toolchains or every restart
    /// would silently start cold.
    pub fn sampling_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for word in [
            self.samples,
            self.seed,
            self.chunk.max(1),
            self.stratified as u64,
            // EqualPerStratum keeps its historic encoding (its sample
            // streams are unchanged, so old snapshots stay warm);
            // Proportional moved from 1 to 2 when its rounding changed
            // to the budget-clamped largest-remainder split, so stale
            // snapshots go cold instead of resurrecting estimates a
            // fresh run can no longer reproduce.
            match self.allocation {
                Allocation::EqualPerStratum => 0,
                Allocation::Proportional => 2,
                Allocation::VarianceAdaptive => 3,
                // Fresh word: IS estimates share streams with no earlier
                // release, so stale entries must go cold.
                Allocation::ImportanceAdaptive => 4,
            },
            self.paver.max_boxes as u64,
            self.paver.precision_digits as u64,
            self.paver.time_budget.as_nanos() as u64,
            self.paver.max_passes as u64,
        ] {
            h = fnv_fold(h, word);
        }
        // IS-only bits, folded conditionally: every configuration that
        // existed before the rare-event engine keeps its exact historic
        // fingerprint (uniform keys unchanged, warm stores stay warm),
        // while IS runs key on everything that shapes their streams.
        if self.allocation == Allocation::ImportanceAdaptive {
            h = fnv_fold(h, self.is_threshold.to_bits());
        }
        h
    }

    /// Fingerprint keying estimates produced by
    /// [`Analyzer::analyze_iterative`]: the one-shot
    /// [`Options::sampling_fingerprint`] plus every knob that shapes the
    /// refinement trajectory (target, round ceiling, round budget). A
    /// distinct tag word keeps iterative and one-shot estimates for
    /// otherwise-identical options from ever sharing a
    /// [`FactorStore`] entry — their sample streams differ.
    pub fn iterative_fingerprint(&self) -> u64 {
        let mut h = fnv_fold(self.sampling_fingerprint(), ITERATIVE_TAG);
        for word in [
            self.target_stderr.unwrap_or(0.0).to_bits(),
            self.max_rounds.max(1),
            self.round_budget,
        ] {
            h = fnv_fold(h, word);
        }
        h
    }
}

impl Default for Options {
    /// The paper's full configuration, [`Options::strat_partcache`].
    fn default() -> Options {
        Options::strat_partcache()
    }
}

/// Cumulative counters gathered during an analysis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Partition-cache hits (Algorithm 2).
    pub cache_hits: u64,
    /// Partition-cache misses.
    pub cache_misses: u64,
    /// ICP inner boxes across all pavings.
    pub inner_boxes: u64,
    /// ICP boundary boxes across all pavings.
    pub boundary_boxes: u64,
    /// Number of paving requests (cache hits included).
    pub pavings: u64,
    /// Paving-cache hits during this analysis (a hit skips HC4
    /// compilation and the whole branch-and-prune loop). Counted per
    /// analysis, so the numbers stay exact even when the cache is shared
    /// with concurrent analyses (as in `qcoral-service`).
    pub paving_cache_hits: u64,
    /// Paving-cache misses during this analysis (same accounting).
    pub paving_cache_misses: u64,
    /// Compiled-tape cache hits during this analysis. The tape cache is
    /// process-wide, so this is a delta of global counters: exact unless
    /// other analyses run concurrently in the same process.
    pub tape_cache_hits: u64,
    /// Compiled-tape cache misses during this analysis (same caveat).
    pub tape_cache_misses: u64,
    /// Cross-run factor-store hits: factors answered from a
    /// [`FactorStore`] without paving or sampling anything.
    pub factor_store_hits: u64,
    /// Cross-run factor-store misses (0 when no store is attached).
    pub factor_store_misses: u64,
    /// Monte Carlo sampling budget charged, across all sampled factors.
    /// Zero means every factor came from a cache — no RNG was touched.
    /// (Exact inner strata may draw fewer samples than budgeted.)
    pub samples_drawn: u64,
    /// Sampling rounds executed by [`Analyzer::analyze_iterative`]
    /// (0 for one-shot `analyze`; 1 when every factor was answered from
    /// the cross-run store or the target held after the initial round).
    pub rounds: u64,
    /// Samples drawn by refinement rounds after the first — the extra
    /// budget variance-driven reallocation decided to spend (a subset of
    /// `samples_drawn`; 0 for one-shot `analyze`).
    pub refine_samples: u64,
    /// Whether `analyze_iterative` stopped because the composed standard
    /// error reached [`Options::target_stderr`]. `false` when the round
    /// ceiling or refinement exhaustion stopped the loop first, when no
    /// target was set, and always for one-shot `analyze`.
    pub target_met: bool,
    /// Factors whose boundary-region estimate came from the adaptive
    /// importance-sampling engine (see [`qcoral_mc::IsEstimator`]):
    /// under [`Allocation::ImportanceAdaptive`], the factors whose pilot
    /// hit rate fell below [`Options::is_threshold`] and whose proposal
    /// produced hits. Always 0 under other allocations and for fully
    /// cache-answered runs.
    pub is_factors: u64,
    /// Degenerate-proposal fallbacks: factors that switched to IS but
    /// whose first proposal round found zero hits, deterministically
    /// falling back to stratified sampling for the rest of their budget.
    /// A non-zero count usually means the paver's boundary boxes carry
    /// essentially no satisfiable mass at this precision.
    pub is_fallbacks: u64,
    /// Whether the run's [`Deadline`] expired before the analysis
    /// finished. When `true` the report is a best-effort *partial*
    /// result: factors (or whole path conditions) that never ran
    /// contribute `0 ± 0`, truncated factors contribute the sound
    /// smaller-`n` estimate of the chunks they completed, and
    /// `samples_drawn` still reflects the *budgeted* (not completed)
    /// charge. Nothing computed after expiry is deposited in any cache.
    /// Always `false` without a deadline.
    pub deadline_exceeded: bool,
    /// Predicate-evaluation backend the analysis used for tape-compiled
    /// predicates: `"jit"` (native x86-64 kernels, `jit` feature on and
    /// CPU supported), `"bulk"` (columnar interpreter — the default
    /// build, or the runtime fallback on unsupported hosts), or
    /// `"scalar"` (row-by-row closure predicates; not produced by the
    /// standard analyzers). Empty on partial reports synthesized before
    /// an analysis ran (e.g. shed-at-deadline replies).
    pub backend: String,
}

/// The result of a qCORAL analysis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The combined estimator: mean of the target-event probability and a
    /// variance upper bound (Theorem 1).
    pub estimate: Estimate,
    /// Per-path-condition estimates, in input order.
    pub per_pc: Vec<Estimate>,
    /// Counters.
    pub stats: Stats,
    /// Wall-clock analysis time.
    pub wall: Duration,
    /// The execution trace, when [`Options::trace`] asked for one (or a
    /// collector was injected via [`Analyzer::with_trace`]); `None`
    /// otherwise. `Option` keeps the wire format compatible: absent on
    /// untraced reports.
    pub trace: Option<TraceData>,
}

impl Report {
    /// Standard deviation of the combined estimator.
    pub fn std_dev(&self) -> f64 {
        self.estimate.std_dev()
    }
}

/// The qCORAL solution-space quantifier.
///
/// # Example
///
/// ```
/// use qcoral::{Analyzer, Options};
/// use qcoral_constraints::parse::parse_system;
/// use qcoral_mc::UsageProfile;
///
/// let sys = parse_system(
///     "var altitude in [0, 20000];
///      var headFlap in [-10, 10];
///      var tailFlap in [-10, 10];
///      pc altitude > 9000;
///      pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
/// ).unwrap();
/// let profile = UsageProfile::uniform(sys.domain.len());
/// let report = Analyzer::new(Options::default().with_samples(20_000))
///     .analyze(&sys.constraint_set, &sys.domain, &profile);
/// // The paper's §4.4 worked example: exact probability ≈ 0.7378.
/// assert!((report.estimate.mean - 0.7378).abs() < 0.01);
/// ```
#[derive(Clone)]
pub struct Analyzer {
    pub(crate) opts: Options,
    /// Shared paving cache: repeated factors compile their HC4 tapes and
    /// pave once, across path conditions, threads and `analyze` calls.
    /// Clones of the analyzer share the cache.
    pub(crate) paving_cache: Arc<PavingCache>,
    /// Optional cross-run factor-estimate store (see [`FactorStore`]):
    /// consulted between the in-run partition cache and fresh sampling,
    /// shared across analyzers, requests and — once persisted — restarts.
    pub(crate) factor_store: Option<Arc<FactorStore>>,
    /// Optional absolute cutoff (see [`Analyzer::with_deadline`]); takes
    /// precedence over [`Options::deadline_ms`].
    pub(crate) deadline: Option<Deadline>,
    /// Optional pre-seeded trace collector (see [`Analyzer::with_trace`]).
    pub(crate) trace: Option<Arc<Trace>>,
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("opts", &self.opts)
            .field("factor_store", &self.factor_store.is_some())
            .finish_non_exhaustive()
    }
}

/// High-bit variant-tag base for non-uniform [`profile_bits`] encodings.
/// The previous encoding's first word for a non-uniform dimension was
/// `1 + edges.len()` — a small integer — so tagged words can never
/// collide with stale snapshot keys: every pre-profile-aware non-uniform
/// entry goes cold (its sample streams changed when stratum alignment
/// landed), while uniform dimensions keep their historic `0` word and
/// stay warm (their streams are untouched).
const PROFILE_TAG: u64 = 0xD157_7000_0000_0000;

/// Stable bit-level encoding of a projected usage profile for cache
/// keying: structurally identical factors over *differently distributed*
/// variables must not share an estimate. `epsilon` is the
/// [`Options::profile_epsilon`] discretization bound; it shapes the
/// aligned strata (and thus the sample streams) of continuous marginals,
/// so it is folded into their encodings — but not into `Uniform` (no
/// alignment) or `Piecewise` (aligned along its own ε-independent
/// edges), whose estimates do not depend on it.
pub(crate) fn profile_bits(profile: &UsageProfile, epsilon: f64) -> Vec<u64> {
    let mut out = Vec::new();
    for i in 0..profile.len() {
        match profile.dist(i) {
            Dist::Uniform => out.push(0),
            Dist::Piecewise { edges, weights } => {
                // Length-prefixed so adjacent dimensions cannot alias.
                out.push(PROFILE_TAG | 1);
                out.push(edges.len() as u64);
                out.extend(edges.iter().map(|v| v.to_bits()));
                out.extend(weights.iter().map(|v| v.to_bits()));
            }
            Dist::Normal { mu, sigma } => {
                out.push(PROFILE_TAG | 2);
                out.push(epsilon.to_bits());
                out.push(mu.to_bits());
                out.push(sigma.to_bits());
            }
            Dist::Exponential { lambda } => {
                out.push(PROFILE_TAG | 3);
                out.push(epsilon.to_bits());
                out.push(lambda.to_bits());
            }
            Dist::TruncatedNormal { mu, sigma, lo, hi } => {
                out.push(PROFILE_TAG | 4);
                out.push(epsilon.to_bits());
                out.extend([mu, sigma, lo, hi].iter().map(|v| v.to_bits()));
            }
        }
    }
    out
}

struct Shared<'a> {
    opts: &'a Options,
    deadline: Option<Deadline>,
    domain_box: IntervalBox,
    profile: &'a UsageProfile,
    partition: Vec<VarSet>,
    pavings_cache: &'a PavingCache,
    store: Option<&'a FactorStore>,
    opts_fp: u64,
    /// Span collector of this run, when tracing (one branch when not).
    trace: Option<&'a Trace>,
    cache: Mutex<HashMap<FactorKey, Estimate>>,
    // Per-analysis counters on the `qcoral-obs` primitives (the same
    // type the process-wide registry serves), so `Stats` and the metrics
    // exposition share one counting substrate. Kept per-run — not
    // registry-minted — because tests and callers rely on exact
    // per-analysis numbers even when analyses run concurrently; the
    // totals are folded into the global registry by `publish_report`.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    store_hits: Arc<Counter>,
    store_misses: Arc<Counter>,
    inner_boxes: Arc<Counter>,
    boundary_boxes: Arc<Counter>,
    pavings: Arc<Counter>,
    paving_hits: Arc<Counter>,
    paving_misses: Arc<Counter>,
    samples_drawn: Arc<Counter>,
    is_factors: Arc<Counter>,
    is_fallbacks: Arc<Counter>,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    pub fn new(opts: Options) -> Analyzer {
        Analyzer {
            opts,
            paving_cache: Arc::new(PavingCache::new()),
            factor_store: None,
            deadline: None,
            trace: None,
        }
    }

    /// The analyzer's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The analyzer's paving cache (shared across `analyze` calls).
    pub fn paving_cache(&self) -> &PavingCache {
        &self.paving_cache
    }

    /// Replaces the paving cache with a shared one, so independent
    /// analyzers (e.g. service workers answering different requests) pave
    /// each recurring factor once.
    pub fn with_paving_cache(mut self, cache: Arc<PavingCache>) -> Analyzer {
        self.paving_cache = cache;
        self
    }

    /// Attaches a cross-run [`FactorStore`]. With [`Options::cache`]
    /// enabled, factor estimates are looked up there after the in-run
    /// cache and deposited there after sampling. Store hits return
    /// bit-identical estimates (all sampling seeds derive from the
    /// canonical factor key), so attaching a store never changes results.
    pub fn with_factor_store(mut self, store: Arc<FactorStore>) -> Analyzer {
        self.factor_store = Some(store);
        self
    }

    /// The attached cross-run factor store, if any.
    pub fn factor_store(&self) -> Option<&Arc<FactorStore>> {
        self.factor_store.as_ref()
    }

    /// Attaches an absolute cooperative [`Deadline`] for subsequent
    /// `analyze`/`analyze_iterative` calls, overriding
    /// [`Options::deadline_ms`]. An absolute instant (rather than a
    /// per-call budget) lets a server charge queueing time against the
    /// request's budget. `None` removes any cutoff.
    pub fn with_deadline(mut self, deadline: Option<Deadline>) -> Analyzer {
        self.deadline = deadline;
        self
    }

    /// Injects a pre-seeded [`Trace`] collector: spans recorded by the
    /// caller before the analysis (queue wait, parsing, symbolic
    /// execution) share the request's timeline with the analyzer's own
    /// spans. The collector is used — and drained into
    /// [`Report::trace`] — whether or not [`Options::trace`] is set;
    /// without an injected collector, each run creates its own when
    /// `Options::trace` asks for one.
    pub fn with_trace(mut self, trace: Arc<Trace>) -> Analyzer {
        self.trace = Some(trace);
        self
    }

    /// The injected trace collector, if any (see
    /// [`Analyzer::with_trace`]): hosts wrapping an analysis in extra
    /// stages (parsing, symbolic execution) record their spans here so
    /// they land in the same [`Report::trace`] timeline.
    pub fn trace(&self) -> Option<&Arc<Trace>> {
        self.trace.as_ref()
    }

    /// The trace collector a run starting now records into, if any.
    pub(crate) fn run_trace(&self) -> Option<Arc<Trace>> {
        self.trace
            .clone()
            .or_else(|| self.opts.trace.then(Trace::new))
    }

    /// The effective deadline of a run starting now: the explicitly
    /// attached one, else a fresh one [`Options::deadline_ms`] from now.
    pub(crate) fn effective_deadline(&self) -> Option<Deadline> {
        self.deadline.or_else(|| {
            self.opts
                .deadline_ms
                .map(|ms| Deadline::after(Duration::from_millis(ms)))
        })
    }

    /// Quantifies `Pr[input ∼ profile satisfies any PC in cs]` over the
    /// bounded `domain` (Algorithm 1). Returns the combined estimate, the
    /// per-PC breakdown and counters.
    ///
    /// # Panics
    ///
    /// Panics if the constraint set references variables outside `domain`
    /// or if `profile.len() != domain.len()`.
    pub fn analyze(&self, cs: &ConstraintSet, domain: &Domain, profile: &UsageProfile) -> Report {
        assert_eq!(
            profile.len(),
            domain.len(),
            "profile and domain must cover the same variables"
        );
        assert!(
            cs.var_bound() <= domain.len(),
            "constraint set references undeclared variables"
        );
        let start = Instant::now();
        let trace = self.run_trace();
        let trace_t0 = qcoral_obs::trace::span_start(&trace);
        let nvars = domain.len();
        let partition = normalized_partition(&self.opts, cs, nvars);

        let (tape_hits0, tape_misses0) = tape_cache_stats();
        let shared = Shared {
            opts: &self.opts,
            deadline: self.effective_deadline(),
            domain_box: domain_box(domain),
            profile,
            partition,
            pavings_cache: &self.paving_cache,
            store: self.factor_store.as_deref(),
            opts_fp: self.opts.sampling_fingerprint(),
            trace: trace.as_deref(),
            cache: Mutex::new(HashMap::new()),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            store_hits: Counter::new(),
            store_misses: Counter::new(),
            inner_boxes: Counter::new(),
            boundary_boxes: Counter::new(),
            pavings: Counter::new(),
            paving_hits: Counter::new(),
            paving_misses: Counter::new(),
            samples_drawn: Counter::new(),
            is_factors: Counter::new(),
            is_fallbacks: Counter::new(),
        };

        // Algorithm 1, fanned out per Theorem 1: each path condition's
        // estimator is independent of the others, and all seeds are
        // derived from (pc index, factor) — not from execution order — so
        // the parallel collect is bit-identical to the serial map.
        let pcs = cs.pcs();
        let per_pc: Vec<Estimate> = if self.opts.parallel && pcs.len() > 1 {
            (0..pcs.len())
                .into_par_iter()
                .map(|i| analyze_conjunction(&shared, &pcs[i], i))
                .collect()
        } else {
            pcs.iter()
                .enumerate()
                .map(|(i, pc)| analyze_conjunction(&shared, pc, i))
                .collect()
        };

        // Theorem 1: disjoint PCs sum; variance adds as an upper bound.
        // (Fixed input-order reduction — independent of thread schedule.)
        let estimate = per_pc.iter().fold(Estimate::ZERO, |acc, e| acc.sum(*e));

        let (tape_hits1, tape_misses1) = tape_cache_stats();
        let stats = Stats {
            cache_hits: shared.cache_hits.get(),
            cache_misses: shared.cache_misses.get(),
            inner_boxes: shared.inner_boxes.get(),
            boundary_boxes: shared.boundary_boxes.get(),
            pavings: shared.pavings.get(),
            paving_cache_hits: shared.paving_hits.get(),
            paving_cache_misses: shared.paving_misses.get(),
            tape_cache_hits: tape_hits1 - tape_hits0,
            tape_cache_misses: tape_misses1 - tape_misses0,
            factor_store_hits: shared.store_hits.get(),
            factor_store_misses: shared.store_misses.get(),
            samples_drawn: shared.samples_drawn.get(),
            rounds: 0,
            refine_samples: 0,
            target_met: false,
            is_factors: shared.is_factors.get(),
            is_fallbacks: shared.is_fallbacks.get(),
            deadline_exceeded: shared.expired(),
            backend: crate::bulkpred::active_backend().to_string(),
        };
        if let Some(t) = &trace {
            t.record(
                "analyze",
                "core",
                trace_t0,
                vec![
                    arg("pcs", per_pc.len()),
                    arg("samples_drawn", stats.samples_drawn),
                ],
            );
        }
        let report = Report {
            estimate,
            per_pc,
            stats,
            wall: start.elapsed(),
            trace: trace.map(|t| t.take()),
        };
        publish_report(&report);
        report
    }
}

/// Process-wide totals of the per-analysis counters, minted once in the
/// global [`Registry`] and fed by [`publish_report`] after every
/// completed analysis. Per-analysis exactness lives in [`Stats`]; these
/// are the lifetime aggregates the `metrics` exposition serves.
struct GlobalAnalysisMetrics {
    analyses: Arc<Counter>,
    samples_drawn: Arc<Counter>,
    pavings: Arc<Counter>,
    paving_hits: Arc<Counter>,
    paving_misses: Arc<Counter>,
    partition_hits: Arc<Counter>,
    partition_misses: Arc<Counter>,
    inner_boxes: Arc<Counter>,
    boundary_boxes: Arc<Counter>,
    rounds: Arc<Counter>,
    refine_samples: Arc<Counter>,
    is_factors: Arc<Counter>,
    is_fallbacks: Arc<Counter>,
    duration_us: Arc<Histogram>,
}

fn global_metrics() -> &'static GlobalAnalysisMetrics {
    static METRICS: OnceLock<GlobalAnalysisMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        GlobalAnalysisMetrics {
            analyses: r.counter(
                "qcoral_analyses_total",
                "Completed analyses (one-shot and iterative).",
            ),
            samples_drawn: r.counter(
                "qcoral_samples_drawn_total",
                "Monte Carlo sampling budget charged across all analyses.",
            ),
            pavings: r.counter(
                "qcoral_pavings_total",
                "ICP paving requests (paving-cache hits included).",
            ),
            paving_hits: r.counter(
                "qcoral_paving_cache_hits_total",
                "Paving requests answered from the paving cache.",
            ),
            paving_misses: r.counter(
                "qcoral_paving_cache_misses_total",
                "Paving requests that ran branch-and-prune.",
            ),
            partition_hits: r.counter(
                "qcoral_partition_cache_hits_total",
                "Factor estimates answered from the in-run partition cache.",
            ),
            partition_misses: r.counter(
                "qcoral_partition_cache_misses_total",
                "Factor estimates the in-run partition cache could not answer.",
            ),
            inner_boxes: r.counter(
                "qcoral_inner_boxes_total",
                "ICP inner boxes across all pavings.",
            ),
            boundary_boxes: r.counter(
                "qcoral_boundary_boxes_total",
                "ICP boundary boxes across all pavings.",
            ),
            rounds: r.counter(
                "qcoral_rounds_total",
                "Sampling rounds executed by iterative analyses.",
            ),
            refine_samples: r.counter(
                "qcoral_refine_samples_total",
                "Samples drawn by refinement rounds after the first.",
            ),
            is_factors: r.counter(
                "qcoral_is_factors_total",
                "Factors quantified by the adaptive importance-sampling engine.",
            ),
            is_fallbacks: r.counter(
                "qcoral_is_fallbacks_total",
                "IS factors that fell back to stratified after a zero-hit proposal round.",
            ),
            duration_us: r.histogram(
                "qcoral_analysis_duration_us",
                "Wall-clock time per analysis, microseconds.",
            ),
        }
    })
}

/// Folds a finished report's counters into the process-wide registry —
/// the single write path from per-analysis [`Stats`] to the lifetime
/// metric families.
pub(crate) fn publish_report(report: &Report) {
    let m = global_metrics();
    let s = &report.stats;
    m.analyses.inc();
    m.samples_drawn.add(s.samples_drawn);
    m.pavings.add(s.pavings);
    m.paving_hits.add(s.paving_cache_hits);
    m.paving_misses.add(s.paving_cache_misses);
    m.partition_hits.add(s.cache_hits);
    m.partition_misses.add(s.cache_misses);
    m.inner_boxes.add(s.inner_boxes);
    m.boundary_boxes.add(s.boundary_boxes);
    m.rounds.add(s.rounds);
    m.refine_samples.add(s.refine_samples);
    m.is_factors.add(s.is_factors);
    m.is_fallbacks.add(s.is_fallbacks);
    m.duration_us.record(report.wall.as_micros() as u64);
}

impl Shared<'_> {
    /// Whether this run's deadline (if any) has passed.
    fn expired(&self) -> bool {
        self.deadline.is_some_and(Deadline::expired)
    }
}

/// The variable partition Algorithm 2 factors each conjunction along:
/// the dependency partition when [`Options::partition`] is set, one
/// whole-domain class otherwise. Classes are normalized to full-domain
/// capacity (`FromIterator for VarSet` sizes to the max index, which the
/// empty-domain edge case trips over).
pub(crate) fn normalized_partition(
    opts: &Options,
    cs: &ConstraintSet,
    nvars: usize,
) -> Vec<VarSet> {
    let partition = if opts.partition {
        dependency_partition(cs, nvars)
    } else {
        // A single class containing every variable: Algorithm 2
        // degenerates to whole-PC analysis.
        vec![(0..nvars as u32).map(VarId).collect::<VarSet>()]
    };
    partition
        .into_iter()
        .map(|s| {
            let mut full = VarSet::new(nvars);
            for v in s.iter() {
                full.insert(v);
            }
            full
        })
        .collect()
}

/// Algorithm 2: analyze one conjunction by independent factors.
///
/// Factors are independent by construction (disjoint variable classes),
/// so under [`Options::parallel`] they are estimated concurrently; the
/// product (Eq. 7–8) is reduced in partition order either way.
fn analyze_conjunction(shared: &Shared<'_>, pc: &PathCondition, pc_idx: usize) -> Estimate {
    // Graceful degradation: once the deadline has passed, path
    // conditions that have not started contribute the sound (if
    // pessimistic) `0 ± 0` instead of pinning the worker further. The
    // report is flagged `deadline_exceeded`, so the caller knows the sum
    // is a lower bound on the work requested.
    if shared.expired() {
        return Estimate::ZERO;
    }
    let t0 = shared.trace.map_or(0, Trace::now_us);
    // Project each class once; a class no constraint touches contributes
    // exactly 1 and is dropped here.
    let factors: Vec<(usize, &VarSet, PathCondition)> = shared
        .partition
        .iter()
        .enumerate()
        .filter_map(|(i, class)| {
            let part = pc.project(class);
            (!part.is_empty()).then_some((i, class, part))
        })
        .collect();
    let estimate_factor = |(factor_idx, class, part): &(usize, &VarSet, PathCondition)| {
        analyze_factor(shared, part, pc_idx, *factor_idx, class)
    };
    let per_factor: Vec<Estimate> = if shared.opts.parallel && factors.len() > 1 {
        factors.par_iter().map(estimate_factor).collect()
    } else {
        factors.iter().map(estimate_factor).collect()
    };
    // Eq. 7–8: independent factors multiply.
    let product = per_factor
        .into_iter()
        .fold(Estimate::ONE, Estimate::product);
    if let Some(t) = shared.trace {
        t.record(
            "pc",
            "core",
            t0,
            vec![arg("pc", pc_idx), arg("factors", factors.len())],
        );
    }
    product
}

/// One independent factor of Algorithm 2: canonicalize the projected
/// conjunction, consult the estimate cache, and sample on a miss.
/// Records one `factor` span per call, annotated with where the answer
/// came from (`partition_cache`, `factor_store`, or `sampled`).
fn analyze_factor(
    shared: &Shared<'_>,
    part: &PathCondition,
    pc_idx: usize,
    factor_idx: usize,
    class: &VarSet,
) -> Estimate {
    let t0 = shared.trace.map_or(0, Trace::now_us);
    let (estimate, source) = analyze_factor_impl(shared, part, pc_idx, factor_idx, class);
    if let Some(t) = shared.trace {
        t.record(
            "factor",
            "sampling",
            t0,
            vec![
                arg("pc", pc_idx),
                arg("factor", factor_idx),
                arg("source", source),
            ],
        );
    }
    estimate
}

/// The body of [`analyze_factor`], returning the estimate plus the
/// source label for its span.
fn analyze_factor_impl(
    shared: &Shared<'_>,
    part: &PathCondition,
    pc_idx: usize,
    factor_idx: usize,
    class: &VarSet,
) -> (Estimate, &'static str) {
    let indices = class.indices();
    // Re-index onto a dense local variable space aligned with the
    // projected box.
    let mut local_of = HashMap::new();
    for (local, &global) in indices.iter().enumerate() {
        local_of.insert(global as u32, local as u32);
    }
    let local_pc = part.remap_vars(&|v: VarId| VarId(local_of[&v.0]));
    let sub_box = shared.domain_box.project(&indices);

    if shared.opts.cache {
        let key = factor_key(
            &local_pc,
            &sub_box,
            &shared.profile.project(&indices),
            shared.opts.profile_epsilon,
        );
        let cached = shared.cache.lock().get(&key).copied();
        match cached {
            Some(e) => {
                shared.cache_hits.inc();
                (e, "partition_cache")
            }
            None => {
                shared.cache_misses.inc();
                // Cross-run store, between the in-run cache and fresh
                // sampling: a hit skips paving and sampling entirely and
                // is bit-identical to recomputing (the sampling seed
                // below is a pure function of the key).
                if let Some(store) = shared.store {
                    if let Some(e) = store.get(shared.opts_fp, &key) {
                        shared.store_hits.inc();
                        let adopted = *shared.cache.lock().entry(key).or_insert(e);
                        return (adopted, "factor_store");
                    }
                    shared.store_misses.inc();
                }
                // Key-derived seed: identical sub-problems produce
                // identical estimates no matter which PC (or thread)
                // computes them first, keeping parallel runs
                // deterministic.
                let e = strat_sampling(
                    shared,
                    &local_pc,
                    &sub_box,
                    &indices,
                    mix_seed(shared.opts.seed, hash_key(&key)),
                );
                // If another thread landed the key first, adopt its value
                // (identical modulo paver time-budget effects) so every
                // consumer of the key agrees within this run — and only
                // the *adopted* value is published to the cross-run
                // store, so persisted estimates can never diverge from
                // what this run reported.
                // A deadline that expired during sampling means `e` may
                // be a truncated partial estimate: report it (flagged),
                // but never let it into the in-run cache or the
                // cross-run store, where it would masquerade as the
                // full-budget, bit-reproducible estimate for this key.
                if shared.expired() {
                    return (e, "sampled");
                }
                let adopted = *shared.cache.lock().entry(key.clone()).or_insert(e);
                if let Some(store) = shared.store {
                    store.insert(shared.opts_fp, key, adopted);
                }
                (adopted, "sampled")
            }
        }
    } else {
        let e = strat_sampling(
            shared,
            &local_pc,
            &sub_box,
            &indices,
            mix_seed(shared.opts.seed, (pc_idx as u64) << 32 | factor_idx as u64),
        );
        (e, "sampled")
    }
}

/// Canonical cache identity of one independent factor: structural
/// fingerprint of the conjunction (linear in DAG size — never a rendered
/// tree), the exact sub-box bits, and the projected marginals (with the
/// discretization ε, where it shapes the estimate) — the estimate
/// depends on all three.
pub(crate) fn factor_key(
    local_pc: &PathCondition,
    sub_box: &IntervalBox,
    projected: &UsageProfile,
    epsilon: f64,
) -> FactorKey {
    (
        local_pc.fingerprint(),
        sub_box
            .dims()
            .iter()
            .map(|d| (d.lo().to_bits(), d.hi().to_bits()))
            .collect::<Vec<_>>(),
        profile_bits(projected, epsilon),
    )
}

/// Ceiling on profile-aligned sub-strata per paving stratum (see
/// [`qcoral_mc::align_strata`]): bounds stratification fan-out on peaked
/// profiles while leaving plenty of room for mass-resolved allocation.
pub(crate) const ALIGN_CAP: usize = 64;

/// Algorithm 3: stratified sampling of one independent factor. Pavings
/// come from the shared [`PavingCache`]; sampling runs on the
/// deterministic chunked plan (serial and parallel draws are identical).
fn strat_sampling(
    shared: &Shared<'_>,
    local_pc: &PathCondition,
    sub_box: &IntervalBox,
    global_indices: &[usize],
    seed: u64,
) -> Estimate {
    // Checked before paving, not just in the chunk loops: the paver can
    // legally spend its whole time budget, which an expired request no
    // longer has. `0 ± 0` zeroes the factor's conjunction — still a
    // sound lower bound for the flagged partial report.
    if shared.expired() {
        return Estimate::ZERO;
    }
    let local_profile = shared.profile.project(global_indices);
    // Compile the predicate once per factor *process-wide*: the scalar
    // tape evaluates each distinct sub-expression once per sample (the
    // tree walk re-evaluates `Arc`-shared sub-terms exponentially often
    // on symexec-generated conditions), and its columnar [`CompiledPred`]
    // twin lets the chunked samplers evaluate 128-sample lane slabs per
    // instruction — same samples, same hits, bit-identical estimates.
    let t_compile = shared.trace.map_or(0, Trace::now_us);
    let pred = CompiledPred::compile_cached(local_pc);
    if let Some(t) = shared.trace {
        t.record(
            "compile",
            "tape",
            t_compile,
            vec![arg("vars", sub_box.dims().len())],
        );
    }
    let plan = SamplePlan {
        seed,
        chunk: shared.opts.chunk.max(1),
        parallel: shared.opts.parallel,
        deadline: shared.deadline,
    };
    if !shared.opts.stratified {
        shared.samples_drawn.add(shared.opts.samples);
        let t_sample = shared.trace.map_or(0, Trace::now_us);
        let e = hit_or_miss_plan_bulk(&*pred, sub_box, &local_profile, shared.opts.samples, plan);
        if let Some(t) = shared.trace {
            t.record(
                "sample",
                "sampling",
                t_sample,
                vec![arg("strata", 1), arg("budget", shared.opts.samples)],
            );
        }
        return e;
    }
    // The counted variant attributes the hit/miss to *this* analysis:
    // the cache may be shared service-wide, and deltas of its global
    // counters would charge concurrent requests' pavings to each other.
    let t_pave = shared.trace.map_or(0, Trace::now_us);
    let (paving, was_hit) =
        shared
            .pavings_cache
            .pave_cached_counted(local_pc, sub_box, &shared.opts.paver);
    if let Some(t) = shared.trace {
        t.record(
            "paving",
            "icp",
            t_pave,
            vec![
                arg("inner", paving.inner.len()),
                arg("boundary", paving.boundary.len()),
                arg("cache_hit", was_hit),
            ],
        );
    }
    if was_hit {
        shared.paving_hits.inc();
    } else {
        shared.paving_misses.inc();
    }
    shared.pavings.inc();
    shared.inner_boxes.add(paving.inner.len() as u64);
    shared.boundary_boxes.add(paving.boundary.len() as u64);
    if paving.is_unsat() {
        return Estimate::ZERO;
    }
    shared.samples_drawn.add(shared.opts.samples);
    let strata: Vec<Stratum> = paving
        .inner
        .iter()
        .cloned()
        .map(Stratum::inner)
        .chain(paving.boundary.iter().cloned().map(Stratum::boundary))
        .collect();
    // Profile-aligned stratification: slice boundary strata along the
    // discretized profile's mass edges so stratum weights (and therefore
    // proportional/Neyman allocation) follow probability mass. A no-op
    // under uniform profiles.
    let strata = align_strata(
        strata,
        &local_profile,
        sub_box,
        shared.opts.profile_epsilon,
        ALIGN_CAP,
    );
    let t_sample = shared.trace.map_or(0, Trace::now_us);
    let e = if shared.opts.allocation == Allocation::ImportanceAdaptive {
        importance_stratified(shared, &*pred, &strata, sub_box, &local_profile, plan)
    } else {
        stratified_plan_bulk(
            &*pred,
            &strata,
            sub_box,
            &local_profile,
            shared.opts.samples,
            shared.opts.allocation,
            plan,
        )
    };
    if let Some(t) = shared.trace {
        t.record(
            "sample",
            "sampling",
            t_sample,
            vec![
                arg("strata", strata.len()),
                arg("budget", shared.opts.samples),
            ],
        );
    }
    e
}

/// Sub-stream tag of a factor's importance-sampling chunk stream: far
/// outside the small stratum indices ([`SamplePlan::substream`] per
/// stratum), so IS draws never collide with stratified ones.
pub(crate) const IS_STREAM: u64 = 0x15AD_AB0C_5EED_0001;

/// Adaptation rounds the one-shot engine gives the IS proposal (the
/// iterative engine adapts once per refinement round instead).
pub(crate) const IS_ROUNDS: u64 = 4;

/// [`Allocation::ImportanceAdaptive`] sampling of one factor: a
/// stratified equal-split pilot over half the budget estimates the
/// factor's probability; factors whose pilot estimate reaches
/// [`Options::is_threshold`] finish with the usual Neyman follow-up
/// (exactly `VarianceAdaptive`'s policy), while rare-event factors
/// hand the remaining budget to the paver-seeded
/// [`IsEstimator`] — seeded from the factor's boundary strata, adapted
/// over [`IS_ROUNDS`] rounds — and compose `exact inner mass + IS
/// boundary estimate`. A proposal whose first round finds zero hits is
/// degenerate: the factor deterministically falls back to the Neyman
/// follow-up (flagged in [`Stats::is_fallbacks`]).
fn importance_stratified<P>(
    shared: &Shared<'_>,
    pred: &P,
    strata: &[Stratum],
    sub_box: &IntervalBox,
    profile: &UsageProfile,
    plan: SamplePlan,
) -> Estimate
where
    P: BulkPred + ?Sized,
{
    let total = shared.opts.samples;
    let expired = || plan.deadline.is_some_and(|d| d.expired());
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, sub_box))
        .collect();
    let mut exact = Estimate::ZERO;
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            exact = exact.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(i, s)| !s.certain && weights[*i] > 0.0)
        .map(|(i, _)| i)
        .collect();
    if sampled.is_empty() {
        return exact;
    }
    let sampled_weights: Vec<f64> = sampled.iter().map(|&i| weights[i]).collect();
    let refine_stratum = |j: usize, add: u64, accum: StratumAccum| -> StratumAccum {
        let i = sampled[j];
        refine_plan_bulk(
            pred,
            &strata[i].boxed,
            profile,
            add,
            plan.substream(i as u64),
            accum,
        )
    };
    let fan_out = |counts: &[u64], accums: &[StratumAccum]| -> Vec<StratumAccum> {
        if plan.parallel && sampled.len() > 1 {
            (0..sampled.len())
                .into_par_iter()
                .map(|j| refine_stratum(j, counts[j], accums[j]))
                .collect()
        } else {
            (0..sampled.len())
                .map(|j| refine_stratum(j, counts[j], accums[j]))
                .collect()
        }
    };
    // Stratified pilot, equal-split like `VarianceAdaptive`'s opening
    // round but over a *quarter* of the budget: under this policy the
    // pilot only needs to detect rarity (and measure the strata for
    // the non-rare Neyman follow-up), while a rare factor wants the
    // lion's share of the budget in the IS stage.
    let pilot = initial_allocation(Allocation::ImportanceAdaptive, total / 2, &sampled_weights);
    let mut accums = fan_out(&pilot, &vec![StratumAccum::EMPTY; sampled.len()]);
    let mut remaining = total.saturating_sub(pilot.iter().sum());
    let drawn: u64 = accums.iter().map(|a| a.n).sum();
    // The rarity signal is the pilot *estimate*, not the raw conditional
    // hit rate: boundary strata hug the constraint surface, so their
    // conditional rates are O(1) even when the event's probability is
    // 1e-8 — the rarity lives in the stratum weights.
    let pilot_estimate = exact.mean
        + accums
            .iter()
            .zip(&sampled_weights)
            .map(|(a, &w)| w * a.estimate().mean)
            .sum::<f64>();
    let rare = drawn > 0 && pilot_estimate < shared.opts.is_threshold;
    if rare && remaining > 0 && !expired() {
        let boundary: Vec<IntervalBox> = sampled.iter().map(|&i| strata[i].boxed.clone()).collect();
        if let Some(mut is) = IsEstimator::seeded(&boundary, profile, sub_box) {
            // Adaptation schedule: `IS_ROUNDS − 1` equal warm-up rounds
            // refine the proposal, then a final round drawing half the
            // IS budget from the best mixture dominates the
            // accumulator. (Equal splits leave the typical round too
            // small to see the heavy tail's top weights, which reads
            // as a stable underestimate.) Round 1 takes the warm-up
            // remainder so it is never empty while `remaining > 0`.
            let half = remaining / 2;
            let per = half / (IS_ROUNDS - 1);
            let first = remaining - half - (IS_ROUNDS - 2) * per;
            let is_plan = plan.substream(IS_STREAM);
            let r1 = is.round(pred, profile, sub_box, first, is_plan);
            if r1.hits > 0 {
                for _ in 2..IS_ROUNDS {
                    is.round(pred, profile, sub_box, per, is_plan);
                }
                is.round(pred, profile, sub_box, half, is_plan);
                shared.is_factors.inc();
                return exact.sum(is.estimate());
            }
            // Degenerate proposal: zero hits in the IS pilot round. Fall
            // back to the stratified follow-up with what is left.
            remaining -= first;
        }
        shared.is_fallbacks.inc();
    }
    if remaining > 0 && !expired() {
        let stddevs: Vec<f64> = accums.iter().map(StratumAccum::std_dev).collect();
        let follow = neyman_allocation(remaining, &sampled_weights, &stddevs);
        accums = fan_out(&follow, &accums);
    }
    accums
        .iter()
        .zip(&sampled_weights)
        .map(|(a, &w)| a.estimate().scale(w))
        .fold(exact, Estimate::sum)
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Domain-separation word folded into [`Options::iterative_fingerprint`].
const ITERATIVE_TAG: u64 = 0x17E2_A71F_ADA9_71FE;

/// One FNV-1a step over a 64-bit word.
fn fnv_fold(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(0x0000_0100_0000_01B3)
}

/// Deterministic 64-bit digest of a factor key. Explicitly pinned
/// (FNV-1a with length prefixes) rather than `DefaultHasher`: the digest
/// seeds every factor's RNG stream, and estimates derived from it are
/// persisted in factor-store snapshots — so it must be reproducible
/// across processes and toolchains, or a warm restart would return
/// estimates a fresh run could no longer reproduce.
pub(crate) fn hash_key(key: &FactorKey) -> u64 {
    let (fingerprint, box_bits, profile_bits) = key;
    let mut h = FNV_OFFSET;
    h = fnv_fold(h, *fingerprint as u64);
    h = fnv_fold(h, (*fingerprint >> 64) as u64);
    h = fnv_fold(h, box_bits.len() as u64);
    for &(lo, hi) in box_bits {
        h = fnv_fold(h, lo);
        h = fnv_fold(h, hi);
    }
    h = fnv_fold(h, profile_bits.len() as u64);
    for &word in profile_bits {
        h = fnv_fold(h, word);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;

    fn paper_system() -> (ConstraintSet, Domain, UsageProfile) {
        let sys = parse_system(
            "var altitude in [0, 20000];
             var headFlap in [-10, 10];
             var tailFlap in [-10, 10];
             pc altitude > 9000;
             pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
        )
        .unwrap();
        let profile = UsageProfile::uniform(sys.domain.len());
        (sys.constraint_set, sys.domain, profile)
    }

    #[test]
    fn paper_example_all_configs_agree() {
        let (cs, dom, prof) = paper_system();
        // Exact probability (paper §4.4): 0.737848.
        for opts in [
            Options::plain().with_samples(40_000),
            Options::strat().with_samples(40_000),
            Options::strat_partcache().with_samples(40_000),
        ] {
            let r = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
            assert!(
                (r.estimate.mean - 0.737848).abs() < 0.02,
                "config {opts:?} estimate {}",
                r.estimate.mean
            );
        }
    }

    #[test]
    fn stratification_reduces_variance_on_paper_example() {
        let (cs, dom, prof) = paper_system();
        let plain = Analyzer::new(Options::plain().with_samples(10_000)).analyze(&cs, &dom, &prof);
        let strat = Analyzer::new(Options::strat().with_samples(10_000)).analyze(&cs, &dom, &prof);
        assert!(
            strat.estimate.variance < plain.estimate.variance,
            "strat {} vs plain {}",
            strat.estimate.variance,
            plain.estimate.variance
        );
    }

    #[test]
    fn partcache_caches_repeated_factors() {
        // The `y`-factor is shared by both PCs; with PARTCACHE it is
        // sampled once and reused.
        let sys = parse_system(
            "var x in [0, 1]; var y in [0, 1];
             pc x < 0.5 && sin(y) > 0.5;
             pc x >= 0.5 && sin(y) > 0.5;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let r = Analyzer::new(Options::strat_partcache().with_samples(2_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.stats.cache_hits, 1, "stats: {:?}", r.stats);
        assert_eq!(r.stats.cache_misses, 3);
        // P = P[x<.5]·P[sin y>.5] + P[x≥.5]·P[sin y>.5] = P[sin y > .5]
        // = 1 − asin(0.5) ≈ 0.4764 over [0,1]... compute exactly:
        // sin(y) > 0.5 for y ∈ (asin(.5), 1] = (0.5236, 1]: length 0.4764.
        assert!(
            (r.estimate.mean - 0.4764).abs() < 0.02,
            "{}",
            r.estimate.mean
        );
    }

    #[test]
    fn cache_distinguishes_profiles_of_identical_factors() {
        // x and y project to the *structurally identical* local factor
        // `v0 < 0.5` over [0, 1], but y is heavily skewed: the estimate
        // cache must not alias them. P = P[x<.5]·P[y<.5] = 0.5 · 0.9.
        let sys = parse_system("var x in [0, 1]; var y in [0, 1]; pc x < 0.5 && y < 0.5;").unwrap();
        let prof = UsageProfile::uniform(2).with_dist(
            1,
            qcoral_mc::Dist::piecewise(vec![0.0, 0.5, 1.0], vec![9.0, 1.0]),
        );
        let r = Analyzer::new(Options::strat_partcache().with_samples(4_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.stats.cache_misses, 2, "distinct keys per profile");
        assert!(
            (r.estimate.mean - 0.45).abs() < 0.02,
            "got {} (0.25 would mean the cache aliased the factors)",
            r.estimate.mean
        );
    }

    #[test]
    fn paving_cache_dedups_repeated_factors() {
        // Partitioning without the estimate cache: the shared sin(y)
        // factor is re-sampled per PC but paved only once, and a second
        // analysis on the same analyzer hits for every factor.
        let sys = parse_system(
            "var x in [0, 1]; var y in [0, 1];
             pc x < 0.5 && sin(y) > 0.5;
             pc x >= 0.5 && sin(y) > 0.5;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let mut opts = Options::strat().with_samples(1_000);
        opts.partition = true;
        let analyzer = Analyzer::new(opts);
        let r = analyzer.analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.stats.pavings, 4, "two factors per PC requested");
        assert_eq!(r.stats.paving_cache_misses, 3, "x<.5, x>=.5, sin(y)");
        assert_eq!(r.stats.paving_cache_hits, 1, "second sin(y) reuses");
        let r2 = analyzer.analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r2.stats.paving_cache_hits, 4);
        assert_eq!(r2.stats.paving_cache_misses, 0);
        assert_eq!(r.estimate, r2.estimate);
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let (cs, dom, prof) = paper_system();
        let opts = Options::strat_partcache().with_samples(5_000).with_seed(7);
        let a = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
        let b = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
        assert_eq!(a.estimate, b.estimate);
        let c = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &dom, &prof);
        assert_eq!(a.estimate, c.estimate, "parallel must match sequential");
    }

    #[test]
    fn seeds_change_estimates() {
        let (cs, dom, prof) = paper_system();
        let a = Analyzer::new(Options::strat().with_samples(1_000).with_seed(1))
            .analyze(&cs, &dom, &prof);
        let b = Analyzer::new(Options::strat().with_samples(1_000).with_seed(2))
            .analyze(&cs, &dom, &prof);
        assert_ne!(a.estimate.mean, b.estimate.mean);
    }

    #[test]
    fn exact_box_constraint_has_zero_variance() {
        // The Cube phenomenon (paper Table 2): ICP identifies the exact
        // box, so the estimate is exact with σ = 0.
        let sys = parse_system(
            "var x in [-2, 2]; var y in [-2, 2];
             pc x >= -1 && x <= 1 && y >= -1 && y <= 1;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let r = Analyzer::new(Options::strat().with_samples(100)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.estimate.variance, 0.0);
        assert!((r.estimate.mean - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_constraint_set_is_zero() {
        let sys = parse_system("var x in [0, 1];").unwrap();
        let prof = UsageProfile::uniform(1);
        let r = Analyzer::new(Options::default()).analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.estimate, Estimate::ZERO);
        assert!(r.per_pc.is_empty());
    }

    #[test]
    fn unsat_pc_contributes_zero() {
        let sys = parse_system("var x in [0, 1]; pc x > 2; pc x < 0.5;").unwrap();
        let prof = UsageProfile::uniform(1);
        let r = Analyzer::new(Options::strat().with_samples(4_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.per_pc[0], Estimate::ZERO);
        assert!((r.estimate.mean - 0.5).abs() < 0.03);
    }

    #[test]
    fn variance_upper_bound_holds_empirically() {
        // Theorem 1: reported variance of the sum ≥ true variance of the
        // estimator. Empirically: repeat analyses with different seeds and
        // compare the dispersion of means to the reported variance.
        let (cs, dom, prof) = paper_system();
        let mut means = Vec::new();
        let mut reported = 0.0;
        for seed in 0..30 {
            let r = Analyzer::new(Options::strat().with_samples(2_000).with_seed(seed))
                .analyze(&cs, &dom, &prof);
            means.push(r.estimate.mean);
            reported = r.estimate.variance;
        }
        let m = means.iter().sum::<f64>() / means.len() as f64;
        let emp_var =
            means.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (means.len() - 1) as f64;
        // Allow slack for the empirical variance estimate itself.
        assert!(
            emp_var <= reported * 3.0 + 1e-9,
            "empirical {emp_var} vs reported bound {reported}"
        );
    }

    #[test]
    fn factor_store_warm_analysis_is_bit_identical_with_zero_work() {
        let (cs, dom, prof) = paper_system();
        let store = Arc::new(FactorStore::new(1024));
        let opts = Options::strat_partcache().with_samples(3_000).with_seed(9);

        // Baseline without any store.
        let plain = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);

        // Cold analyzer with the store: same results, store populated.
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        assert_eq!(
            cold.estimate, plain.estimate,
            "store must not change results"
        );
        assert_eq!(cold.per_pc, plain.per_pc);
        assert_eq!(cold.stats.factor_store_hits, 0);
        assert!(cold.stats.factor_store_misses > 0);
        assert!(!store.is_empty());

        // Warm: a *fresh* analyzer sharing the store answers from it —
        // no pavings, no samples, bit-identical estimates.
        let warm = Analyzer::new(opts)
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        assert_eq!(warm.estimate, plain.estimate);
        assert_eq!(warm.per_pc, plain.per_pc);
        assert!(warm.stats.factor_store_hits > 0);
        assert_eq!(warm.stats.factor_store_misses, 0);
        assert_eq!(warm.stats.pavings, 0, "warm run must not pave");
        assert_eq!(warm.stats.samples_drawn, 0, "warm run must not sample");
    }

    #[test]
    fn factor_store_distinguishes_option_fingerprints() {
        let (cs, dom, prof) = paper_system();
        let store = Arc::new(FactorStore::new(1024));
        let a = Analyzer::new(Options::strat_partcache().with_samples(2_000).with_seed(1))
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        // Different seed ⇒ different fingerprint ⇒ no cross-contamination.
        let b = Analyzer::new(Options::strat_partcache().with_samples(2_000).with_seed(2))
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        assert_eq!(b.stats.factor_store_hits, 0);
        assert_ne!(a.estimate.mean, b.estimate.mean);
    }

    #[test]
    fn samples_drawn_counts_budget_per_sampled_factor() {
        let sys = parse_system("var x in [0, 1]; pc x < 0.25;").unwrap();
        let prof = UsageProfile::uniform(1);
        let r = Analyzer::new(Options::plain().with_samples(1_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.stats.samples_drawn, 1_000);
        // Unsat PCs are proven empty by the paver and charge nothing.
        let sys = parse_system("var x in [0, 1]; pc x > 2;").unwrap();
        let r = Analyzer::new(Options::strat().with_samples(1_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert_eq!(r.stats.samples_drawn, 0);
    }

    #[test]
    fn tape_cache_counters_are_observable() {
        // Unique constants make the factor's expressions fresh, so the
        // first analysis must compile (miss) and a repeat on a fresh
        // analyzer must reuse (hit). Counters are process-global deltas,
        // so only lower bounds are asserted (other tests run in parallel).
        let sys = parse_system(
            "var x in [0, 1]; pc sin(x * 0.123456789) > 0.987654321 && x < 0.3141592;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(1);
        let opts = Options::strat().with_samples(200);
        let r1 = Analyzer::new(opts.clone()).analyze(&sys.constraint_set, &sys.domain, &prof);
        assert!(
            r1.stats.tape_cache_misses >= 1,
            "first compile misses: {:?}",
            r1.stats
        );
        let r2 = Analyzer::new(opts).analyze(&sys.constraint_set, &sys.domain, &prof);
        assert!(
            r2.stats.tape_cache_hits >= 1,
            "recompile hits the cache: {:?}",
            r2.stats
        );
    }

    #[test]
    fn continuous_profiles_quantify_with_exact_masses() {
        // P[x < 0.5] under N(0.5, 0.1) truncated to [0, 1] is exactly
        // 0.5 by symmetry; the x-factor is a pure box, so ICP makes the
        // whole estimate exact regardless of sampling.
        let sys = parse_system("var x in [0, 1]; pc x < 0.5;").unwrap();
        let prof = UsageProfile::uniform(1)
            .with_dist(0, qcoral_mc::Dist::truncated_normal(0.5, 0.1, 0.0, 1.0));
        let r = Analyzer::new(Options::strat().with_samples(2_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        assert!((r.estimate.mean - 0.5).abs() < 1e-9, "{}", r.estimate.mean);

        // A noisy factor under a peaked profile: P[sin(x) > 0.5] with
        // x ~ N(0.9, 0.05) on [0, 1] — nearly all mass above
        // asin(0.5) ≈ 0.5236, so the probability is close to 1 (and far
        // from the uniform 0.4764 answer).
        let sys = parse_system("var x in [0, 1]; pc sin(x) > 0.5;").unwrap();
        let prof = UsageProfile::uniform(1).with_dist(0, qcoral_mc::Dist::normal(0.9, 0.05));
        let r = Analyzer::new(Options::strat().with_samples(20_000)).analyze(
            &sys.constraint_set,
            &sys.domain,
            &prof,
        );
        let d = qcoral_mc::Dist::normal(0.9, 0.05);
        let truth = d.mass(
            &qcoral_interval::Interval::new(std::f64::consts::FRAC_PI_6, 1.0),
            &qcoral_interval::Interval::new(0.0, 1.0),
        );
        assert!(
            (r.estimate.mean - truth).abs() < 0.01,
            "{} vs {truth}",
            r.estimate.mean
        );
    }

    #[test]
    fn aligned_stratification_beats_unaligned_variance() {
        // A peaked profile over a boundary-heavy constraint: aligning
        // strata with the mass edges must not increase the reported
        // variance at equal budget (it concentrates allocation where the
        // mass is). ALIGN_CAP = 1-equivalent is simulated by a huge ε
        // (discretization collapses to few bins).
        let sys = parse_system("var x in [0, 1]; var y in [0, 1]; pc sin(3*x + y) > 0.6;").unwrap();
        let prof = UsageProfile::uniform(2)
            .with_dist(0, qcoral_mc::Dist::normal(0.7, 0.08))
            .with_dist(1, qcoral_mc::Dist::exponential(5.0));
        let aligned = Analyzer::new(
            Options::strat()
                .with_samples(8_000)
                .with_profile_epsilon(1e-3),
        )
        .analyze(&sys.constraint_set, &sys.domain, &prof);
        let coarse = Analyzer::new(
            Options::strat()
                .with_samples(8_000)
                .with_profile_epsilon(0.5),
        )
        .analyze(&sys.constraint_set, &sys.domain, &prof);
        assert!(
            aligned.estimate.variance <= coarse.estimate.variance * 1.05,
            "aligned {} vs coarse {}",
            aligned.estimate.variance,
            coarse.estimate.variance
        );
        assert!(
            (aligned.estimate.mean - coarse.estimate.mean).abs()
                <= 3.0 * (aligned.estimate.std_dev() + coarse.estimate.std_dev()) + 1e-9,
            "estimates must agree statistically: {} vs {}",
            aligned.estimate.mean,
            coarse.estimate.mean
        );
    }

    #[test]
    fn profile_epsilon_keys_continuous_factors_but_not_uniform_ones() {
        let (cs, dom, prof) = paper_system();
        let store = Arc::new(FactorStore::new(1024));
        // Uniform profile: ε is irrelevant, entries stay warm across ε.
        let a = Analyzer::new(Options::strat_partcache().with_samples(1_000))
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        let b = Analyzer::new(
            Options::strat_partcache()
                .with_samples(1_000)
                .with_profile_epsilon(1e-6),
        )
        .with_factor_store(Arc::clone(&store))
        .analyze(&cs, &dom, &prof);
        assert_eq!(a.estimate, b.estimate);
        assert!(b.stats.factor_store_hits > 0, "uniform keys ignore ε");
        // Continuous profile: different ε ⇒ different keys, no cross-hit.
        let np = UsageProfile::uniform(3).with_dist(1, qcoral_mc::Dist::normal(0.0, 3.0));
        let c = Analyzer::new(Options::strat_partcache().with_samples(1_000))
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &np);
        let d = Analyzer::new(
            Options::strat_partcache()
                .with_samples(1_000)
                .with_profile_epsilon(1e-4),
        )
        .with_factor_store(Arc::clone(&store))
        .analyze(&cs, &dom, &np);
        assert_eq!(
            d.stats.factor_store_hits, 2,
            "only the two uniform-variable factors stay ε-independent: {:?}",
            d.stats
        );
        assert!(c.stats.factor_store_misses > 0);
    }

    #[test]
    fn warm_store_is_bit_identical_under_continuous_profiles() {
        let (cs, dom, _) = paper_system();
        let prof = UsageProfile::uniform(3)
            .with_dist(0, qcoral_mc::Dist::exponential(2.0))
            .with_dist(1, qcoral_mc::Dist::normal(0.0, 4.0))
            .with_dist(2, qcoral_mc::Dist::truncated_normal(0.0, 5.0, -8.0, 8.0));
        let store = Arc::new(FactorStore::new(1024));
        let opts = Options::strat_partcache().with_samples(2_000).with_seed(3);
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        assert!(cold.stats.samples_drawn > 0);
        let warm = Analyzer::new(opts)
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        assert_eq!(warm.estimate, cold.estimate, "bit-identical warm hit");
        assert_eq!(warm.per_pc, cold.per_pc);
        assert_eq!(warm.stats.samples_drawn, 0);
        assert_eq!(warm.stats.pavings, 0);
    }

    #[test]
    fn mix_seed_spreads_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
