//! The qCORAL analyzer: Algorithms 1–3 of the paper.
//!
//! [`Analyzer::analyze`] implements Algorithm 1 (iterate over path
//! conditions, sum the estimates per Theorem 1), delegating to
//! `analyzeConjunction` (Algorithm 2: split the conjunction along the
//! dependency partition, multiply the factor estimators per Eq. 7–8, with
//! optional caching) and `stratSampling` (Algorithm 3: pave the factor's
//! sub-domain with ICP, then run stratified hit-or-miss Monte Carlo per
//! Eq. 3).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use qcoral_constraints::{ConstraintSet, Domain, PathCondition, VarId, VarSet};
use qcoral_icp::{domain_box, Paver, PaverConfig};
use qcoral_interval::IntervalBox;
use qcoral_mc::{hit_or_miss, stratified, Allocation, Estimate, Stratum, UsageProfile};

use crate::depend::dependency_partition;

/// Feature configuration for the analyzer. The paper's named
/// configurations map to presets:
///
/// * `qCORAL{}` — [`Options::plain`]: hit-or-miss Monte Carlo per path
///   condition, no stratification, no decomposition.
/// * `qCORAL{STRAT}` — [`Options::strat`]: adds ICP-driven stratified
///   sampling of each path condition.
/// * `qCORAL{STRAT,PARTCACHE}` — [`Options::strat_partcache`]: adds
///   independence partitioning and the partition cache.
#[derive(Clone, Debug)]
pub struct Options {
    /// Total sample budget per analyzed (sub-)problem.
    pub samples: u64,
    /// Enable ICP-based stratified sampling (the paper's `STRAT`).
    pub stratified: bool,
    /// Decompose conjunctions along the dependency partition (§4.2).
    pub partition: bool,
    /// Cache and reuse partition results across path conditions (the
    /// caching half of the paper's `PARTCACHE`). Requires `partition`.
    pub cache: bool,
    /// Sample allocation across strata (paper: equal per stratum).
    pub allocation: Allocation,
    /// ICP paver budget (paper defaults: 10 boxes, 3 digits, 2 s).
    pub paver: PaverConfig,
    /// Analyze path conditions on multiple threads (Theorem 1 explicitly
    /// allows it). Results are deterministic regardless of scheduling.
    pub parallel: bool,
    /// RNG seed; same seed ⇒ same report.
    pub seed: u64,
}

impl Options {
    /// `qCORAL{}`: plain per-PC hit-or-miss Monte Carlo.
    pub fn plain() -> Options {
        Options {
            samples: 10_000,
            stratified: false,
            partition: false,
            cache: false,
            allocation: Allocation::EqualPerStratum,
            paver: PaverConfig::default(),
            parallel: false,
            seed: 0xC0_5A_1u64,
        }
    }

    /// `qCORAL{STRAT}`: ICP-driven stratified sampling per path condition.
    pub fn strat() -> Options {
        Options {
            stratified: true,
            ..Options::plain()
        }
    }

    /// `qCORAL{STRAT,PARTCACHE}`: stratification plus independence
    /// partitioning with caching — the paper's full configuration.
    pub fn strat_partcache() -> Options {
        Options {
            stratified: true,
            partition: true,
            cache: true,
            ..Options::plain()
        }
    }

    /// Sets the per-problem sample budget.
    pub fn with_samples(mut self, samples: u64) -> Options {
        self.samples = samples;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Options {
        self.seed = seed;
        self
    }

    /// Enables or disables parallel PC analysis.
    pub fn with_parallel(mut self, parallel: bool) -> Options {
        self.parallel = parallel;
        self
    }

    /// Sets the ICP paver configuration.
    pub fn with_paver(mut self, paver: PaverConfig) -> Options {
        self.paver = paver;
        self
    }
}

impl Default for Options {
    /// The paper's full configuration, [`Options::strat_partcache`].
    fn default() -> Options {
        Options::strat_partcache()
    }
}

/// Cumulative counters gathered during an analysis.
#[derive(Debug, Default, Serialize)]
pub struct Stats {
    /// Partition-cache hits (Algorithm 2).
    pub cache_hits: u64,
    /// Partition-cache misses.
    pub cache_misses: u64,
    /// ICP inner boxes across all pavings.
    pub inner_boxes: u64,
    /// ICP boundary boxes across all pavings.
    pub boundary_boxes: u64,
    /// Number of paver invocations.
    pub pavings: u64,
}

/// The result of a qCORAL analysis.
#[derive(Debug, Serialize)]
pub struct Report {
    /// The combined estimator: mean of the target-event probability and a
    /// variance upper bound (Theorem 1).
    pub estimate: Estimate,
    /// Per-path-condition estimates, in input order.
    pub per_pc: Vec<Estimate>,
    /// Counters.
    pub stats: Stats,
    /// Wall-clock analysis time.
    pub wall: Duration,
}

impl Report {
    /// Standard deviation of the combined estimator.
    pub fn std_dev(&self) -> f64 {
        self.estimate.std_dev()
    }
}

/// The qCORAL solution-space quantifier.
///
/// # Example
///
/// ```
/// use qcoral::{Analyzer, Options};
/// use qcoral_constraints::parse::parse_system;
/// use qcoral_mc::UsageProfile;
///
/// let sys = parse_system(
///     "var altitude in [0, 20000];
///      var headFlap in [-10, 10];
///      var tailFlap in [-10, 10];
///      pc altitude > 9000;
///      pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
/// ).unwrap();
/// let profile = UsageProfile::uniform(sys.domain.len());
/// let report = Analyzer::new(Options::default().with_samples(20_000))
///     .analyze(&sys.constraint_set, &sys.domain, &profile);
/// // The paper's §4.4 worked example: exact probability ≈ 0.7378.
/// assert!((report.estimate.mean - 0.7378).abs() < 0.01);
/// ```
#[derive(Clone, Debug)]
pub struct Analyzer {
    opts: Options,
}

struct Shared<'a> {
    opts: &'a Options,
    domain_box: IntervalBox,
    profile: &'a UsageProfile,
    partition: Vec<VarSet>,
    cache: Mutex<HashMap<String, Estimate>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    inner_boxes: AtomicU64,
    boundary_boxes: AtomicU64,
    pavings: AtomicU64,
}

impl Analyzer {
    /// Creates an analyzer with the given options.
    pub fn new(opts: Options) -> Analyzer {
        Analyzer { opts }
    }

    /// The analyzer's options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Quantifies `Pr[input ∼ profile satisfies any PC in cs]` over the
    /// bounded `domain` (Algorithm 1). Returns the combined estimate, the
    /// per-PC breakdown and counters.
    ///
    /// # Panics
    ///
    /// Panics if the constraint set references variables outside `domain`
    /// or if `profile.len() != domain.len()`.
    pub fn analyze(
        &self,
        cs: &ConstraintSet,
        domain: &Domain,
        profile: &UsageProfile,
    ) -> Report {
        assert_eq!(
            profile.len(),
            domain.len(),
            "profile and domain must cover the same variables"
        );
        assert!(
            cs.var_bound() <= domain.len(),
            "constraint set references undeclared variables"
        );
        let start = Instant::now();
        let nvars = domain.len();
        let partition = if self.opts.partition {
            dependency_partition(cs, nvars)
        } else {
            // A single class containing every variable: Algorithm 2
            // degenerates to whole-PC analysis.
            vec![(0..nvars as u32).map(VarId).collect::<VarSet>()]
        };
        // `FromIterator for VarSet` sizes to the max index; normalize
        // capacity for the empty-domain edge case.
        let partition: Vec<VarSet> = partition
            .into_iter()
            .map(|s| {
                let mut full = VarSet::new(nvars);
                for v in s.iter() {
                    full.insert(v);
                }
                full
            })
            .collect();

        let shared = Shared {
            opts: &self.opts,
            domain_box: domain_box(domain),
            profile,
            partition,
            cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            inner_boxes: AtomicU64::new(0),
            boundary_boxes: AtomicU64::new(0),
            pavings: AtomicU64::new(0),
        };

        let per_pc: Vec<Estimate> = if self.opts.parallel && cs.len() > 1 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(cs.len());
            let mut results: Vec<Option<Estimate>> = vec![None; cs.len()];
            let chunk = cs.len().div_ceil(threads);
            crossbeam::thread::scope(|scope| {
                let mut pending: &mut [Option<Estimate>] = &mut results;
                for (t, pcs) in cs.pcs().chunks(chunk).enumerate() {
                    let (head, tail) = pending.split_at_mut(pcs.len().min(pending.len()));
                    pending = tail;
                    let shared = &shared;
                    scope.spawn(move |_| {
                        for (i, pc) in pcs.iter().enumerate() {
                            head[i] = Some(analyze_conjunction(shared, pc, t * chunk + i));
                        }
                    });
                }
            })
            .expect("worker thread panicked");
            results
                .into_iter()
                .map(|r| r.expect("every PC analyzed"))
                .collect()
        } else {
            cs.pcs()
                .iter()
                .enumerate()
                .map(|(i, pc)| analyze_conjunction(&shared, pc, i))
                .collect()
        };

        // Theorem 1: disjoint PCs sum; variance adds as an upper bound.
        let estimate = per_pc
            .iter()
            .fold(Estimate::ZERO, |acc, e| acc.sum(*e));

        Report {
            estimate,
            per_pc,
            stats: Stats {
                cache_hits: shared.cache_hits.load(Ordering::Relaxed),
                cache_misses: shared.cache_misses.load(Ordering::Relaxed),
                inner_boxes: shared.inner_boxes.load(Ordering::Relaxed),
                boundary_boxes: shared.boundary_boxes.load(Ordering::Relaxed),
                pavings: shared.pavings.load(Ordering::Relaxed),
            },
            wall: start.elapsed(),
        }
    }
}

/// Algorithm 2: analyze one conjunction by independent factors.
fn analyze_conjunction(shared: &Shared<'_>, pc: &PathCondition, pc_idx: usize) -> Estimate {
    let mut acc = Estimate::ONE;
    for (factor_idx, class) in shared.partition.iter().enumerate() {
        let part = pc.project(class);
        if part.is_empty() {
            // No constraints touch this class: the factor is exactly 1.
            continue;
        }
        let indices = class.indices();
        // Re-index onto a dense local variable space aligned with the
        // projected box.
        let mut local_of = HashMap::new();
        for (local, &global) in indices.iter().enumerate() {
            local_of.insert(global as u32, local as u32);
        }
        let local_pc = part.remap_vars(&|v: VarId| VarId(local_of[&v.0]));
        let sub_box = shared.domain_box.project(&indices);
        let key = format!("{local_pc}|{sub_box}");

        let est = if shared.opts.cache {
            let cached = shared.cache.lock().get(&key).copied();
            match cached {
                Some(e) => {
                    shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                    e
                }
                None => {
                    shared.cache_misses.fetch_add(1, Ordering::Relaxed);
                    // Key-derived seed: identical sub-problems produce
                    // identical estimates no matter which PC (or thread)
                    // computes them first, keeping parallel runs
                    // deterministic.
                    let e = strat_sampling(
                        shared,
                        &local_pc,
                        &sub_box,
                        &indices,
                        mix_seed(shared.opts.seed, hash_str(&key)),
                    );
                    shared.cache.lock().insert(key, e);
                    e
                }
            }
        } else {
            strat_sampling(
                shared,
                &local_pc,
                &sub_box,
                &indices,
                mix_seed(
                    shared.opts.seed,
                    (pc_idx as u64) << 32 | factor_idx as u64,
                ),
            )
        };
        // Eq. 7–8: independent factors multiply.
        acc = acc.product(est);
    }
    acc
}

/// Algorithm 3: stratified sampling of one independent factor.
fn strat_sampling(
    shared: &Shared<'_>,
    local_pc: &PathCondition,
    sub_box: &IntervalBox,
    global_indices: &[usize],
    seed: u64,
) -> Estimate {
    let mut rng = SmallRng::seed_from_u64(seed);
    let local_profile = shared.profile.project(global_indices);
    let mut pred = |p: &[f64]| local_pc.holds(p);
    if !shared.opts.stratified {
        return hit_or_miss(
            &mut pred,
            sub_box,
            &local_profile,
            shared.opts.samples,
            &mut rng,
        );
    }
    let paver = Paver::new(local_pc, sub_box.ndim(), shared.opts.paver.clone());
    let paving = paver.pave(sub_box);
    shared.pavings.fetch_add(1, Ordering::Relaxed);
    shared
        .inner_boxes
        .fetch_add(paving.inner.len() as u64, Ordering::Relaxed);
    shared
        .boundary_boxes
        .fetch_add(paving.boundary.len() as u64, Ordering::Relaxed);
    if paving.is_unsat() {
        return Estimate::ZERO;
    }
    let strata: Vec<Stratum> = paving
        .inner
        .into_iter()
        .map(Stratum::inner)
        .chain(paving.boundary.into_iter().map(Stratum::boundary))
        .collect();
    stratified(
        &mut pred,
        &strata,
        sub_box,
        &local_profile,
        shared.opts.samples,
        shared.opts.allocation,
        &mut rng,
    )
}

fn hash_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// SplitMix64-style mixing of the user seed with a stream id.
fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;

    fn paper_system() -> (ConstraintSet, Domain, UsageProfile) {
        let sys = parse_system(
            "var altitude in [0, 20000];
             var headFlap in [-10, 10];
             var tailFlap in [-10, 10];
             pc altitude > 9000;
             pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
        )
        .unwrap();
        let profile = UsageProfile::uniform(sys.domain.len());
        (sys.constraint_set, sys.domain, profile)
    }

    #[test]
    fn paper_example_all_configs_agree() {
        let (cs, dom, prof) = paper_system();
        // Exact probability (paper §4.4): 0.737848.
        for opts in [
            Options::plain().with_samples(40_000),
            Options::strat().with_samples(40_000),
            Options::strat_partcache().with_samples(40_000),
        ] {
            let r = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
            assert!(
                (r.estimate.mean - 0.737848).abs() < 0.02,
                "config {opts:?} estimate {}",
                r.estimate.mean
            );
        }
    }

    #[test]
    fn stratification_reduces_variance_on_paper_example() {
        let (cs, dom, prof) = paper_system();
        let plain = Analyzer::new(Options::plain().with_samples(10_000)).analyze(&cs, &dom, &prof);
        let strat = Analyzer::new(Options::strat().with_samples(10_000)).analyze(&cs, &dom, &prof);
        assert!(
            strat.estimate.variance < plain.estimate.variance,
            "strat {} vs plain {}",
            strat.estimate.variance,
            plain.estimate.variance
        );
    }

    #[test]
    fn partcache_caches_repeated_factors() {
        // The `y`-factor is shared by both PCs; with PARTCACHE it is
        // sampled once and reused.
        let sys = parse_system(
            "var x in [0, 1]; var y in [0, 1];
             pc x < 0.5 && sin(y) > 0.5;
             pc x >= 0.5 && sin(y) > 0.5;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let r = Analyzer::new(Options::strat_partcache().with_samples(2_000))
            .analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.stats.cache_hits, 1, "stats: {:?}", r.stats);
        assert_eq!(r.stats.cache_misses, 3);
        // P = P[x<.5]·P[sin y>.5] + P[x≥.5]·P[sin y>.5] = P[sin y > .5]
        // = 1 − asin(0.5) ≈ 0.4764 over [0,1]... compute exactly:
        // sin(y) > 0.5 for y ∈ (asin(.5), 1] = (0.5236, 1]: length 0.4764.
        assert!((r.estimate.mean - 0.4764).abs() < 0.02, "{}", r.estimate.mean);
    }

    #[test]
    fn deterministic_across_runs_and_parallelism() {
        let (cs, dom, prof) = paper_system();
        let opts = Options::strat_partcache().with_samples(5_000).with_seed(7);
        let a = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
        let b = Analyzer::new(opts.clone()).analyze(&cs, &dom, &prof);
        assert_eq!(a.estimate, b.estimate);
        let c = Analyzer::new(opts.with_parallel(true)).analyze(&cs, &dom, &prof);
        assert_eq!(a.estimate, c.estimate, "parallel must match sequential");
    }

    #[test]
    fn seeds_change_estimates() {
        let (cs, dom, prof) = paper_system();
        let a = Analyzer::new(Options::strat().with_samples(1_000).with_seed(1))
            .analyze(&cs, &dom, &prof);
        let b = Analyzer::new(Options::strat().with_samples(1_000).with_seed(2))
            .analyze(&cs, &dom, &prof);
        assert_ne!(a.estimate.mean, b.estimate.mean);
    }

    #[test]
    fn exact_box_constraint_has_zero_variance() {
        // The Cube phenomenon (paper Table 2): ICP identifies the exact
        // box, so the estimate is exact with σ = 0.
        let sys = parse_system(
            "var x in [-2, 2]; var y in [-2, 2];
             pc x >= -1 && x <= 1 && y >= -1 && y <= 1;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let r = Analyzer::new(Options::strat().with_samples(100))
            .analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.estimate.variance, 0.0);
        assert!((r.estimate.mean - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_constraint_set_is_zero() {
        let sys = parse_system("var x in [0, 1];").unwrap();
        let prof = UsageProfile::uniform(1);
        let r = Analyzer::new(Options::default()).analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.estimate, Estimate::ZERO);
        assert!(r.per_pc.is_empty());
    }

    #[test]
    fn unsat_pc_contributes_zero() {
        let sys = parse_system("var x in [0, 1]; pc x > 2; pc x < 0.5;").unwrap();
        let prof = UsageProfile::uniform(1);
        let r = Analyzer::new(Options::strat().with_samples(4_000))
            .analyze(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.per_pc[0], Estimate::ZERO);
        assert!((r.estimate.mean - 0.5).abs() < 0.03);
    }

    #[test]
    fn variance_upper_bound_holds_empirically() {
        // Theorem 1: reported variance of the sum ≥ true variance of the
        // estimator. Empirically: repeat analyses with different seeds and
        // compare the dispersion of means to the reported variance.
        let (cs, dom, prof) = paper_system();
        let mut means = Vec::new();
        let mut reported = 0.0;
        for seed in 0..30 {
            let r = Analyzer::new(Options::strat().with_samples(2_000).with_seed(seed))
                .analyze(&cs, &dom, &prof);
            means.push(r.estimate.mean);
            reported = r.estimate.variance;
        }
        let m = means.iter().sum::<f64>() / means.len() as f64;
        let emp_var =
            means.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (means.len() - 1) as f64;
        // Allow slack for the empirical variance estimate itself.
        assert!(
            emp_var <= reported * 3.0 + 1e-9,
            "empirical {emp_var} vs reported bound {reported}"
        );
    }

    #[test]
    fn mix_seed_spreads_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
