//! Iterative, variance-driven quantification:
//! [`Analyzer::analyze_iterative`].
//!
//! One-shot [`Analyzer::analyze`] spends its whole sample budget up
//! front, split statically across strata. The paper's compositional
//! structure makes a better policy possible: after a first round the
//! analyzer *knows* where the variance lives — which path condition,
//! which independent factor of its conjunction, which stratum of that
//! factor's paving — because disjoint estimators add (Theorem 1),
//! independent factors multiply (Eq. 7–8) and strata combine by Eq. 3.
//! `analyze_iterative` exploits all three levels:
//!
//! 1. **Across path conditions** — each refinement round's budget
//!    ([`Options::round_budget`](crate::Options)) is split across PCs proportional to
//!    their variance contribution to the composed sum.
//! 2. **Across factors** — each PC spends its share on the factor with
//!    the largest *exact* contribution to the PC product's variance
//!    (`varⱼ · Π_{i≠j}(meanᵢ² + varᵢ)`, the term Eq. 7–8 attributes to
//!    factor `j`). Factors shared by several PCs — the compositional
//!    payoff — pool their shares and are refined once.
//! 3. **Across strata** — within the chosen factor the share is placed
//!    Neyman-style, proportional to `weight × stddev`
//!    ([`qcoral_mc::neyman_allocation`]); strata that turned out exact
//!    after round one receive nothing further.
//!
//! The loop stops as soon as the composed standard error reaches
//! [`Options::target_stderr`](crate::Options) (recorded as [`Stats::target_met`]), when
//! [`Options::max_rounds`](crate::Options) is exhausted, or when no remaining factor can
//! absorb budget (everything exact or frozen).
//!
//! # Rare-event caveat
//!
//! Eq. 2's estimator reports variance `p̂(1−p̂)/n`, which is **zero** at
//! `p̂ ∈ {0, 1}` — a property shared by every engine in this repo (and
//! the paper's implementation). For the iterative engine it has a
//! sharper consequence: a stratum whose samples all missed (or all
//! hit) is indistinguishable from an exact one, is excluded from
//! follow-up rounds, and no longer holds the composed standard error
//! above the target — so on a stratum whose true probability is far
//! below `1/round-1-samples`, the engine can report `target_met` while
//! carrying a bias of up to roughly `3/n` of that stratum's weight at
//! 95% confidence. Callers hunting rare events should either size
//! [`Options::samples`](crate::Options) so the initial round can see
//! the event at all (the same requirement every hit-or-miss engine
//! here has), or — the purpose-built escape hatch — select
//! [`Allocation::ImportanceAdaptive`]: after round 1, any factor whose
//! pilot estimate fell below
//! [`Options::is_threshold`](crate::Options) swaps its stratified
//! accumulators for a paver-seeded [`IsEstimator`] and each further
//! refinement round adapts the proposal instead of re-running Neyman
//! (see [`qcoral_mc::is`]). A proposal whose pilot round finds zero
//! hits falls back to stratified deterministically and is flagged in
//! [`Stats::is_fallbacks`].
//!
//! # Determinism and the cross-run store
//!
//! Every stratum samples its own counter-seeded chunk stream (seeded
//! from the canonical factor key) and *continues* it across rounds
//! ([`qcoral_mc::refine_plan`]), and every allocation decision is a pure
//! function of deterministic estimates — so for fixed options the
//! report is bit-identical across thread counts. Final factor estimates
//! are deposited in the attached [`FactorStore`](crate::FactorStore)
//! under [`Options::iterative_fingerprint`](crate::Options); a warm run answers every
//! factor from the store (frozen, never refined) and recomposes the
//! bit-identical estimate with zero pavings and zero samples. A
//! *partially* warm store can allocate refinement differently than the
//! original cold run did (frozen factors expose their final variances,
//! not their round-by-round ones), so fresh factors may converge to
//! different — equally valid — estimates; first-write-wins inserts keep
//! whichever landed first stable from then on.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use qcoral_obs::trace::arg;
use qcoral_obs::Trace;
use rayon::prelude::*;

use qcoral_constraints::{ConstraintSet, Domain, PathCondition, VarId};
use qcoral_icp::{domain_box, tape_cache_stats};
use qcoral_interval::IntervalBox;
use qcoral_mc::{
    align_strata, initial_allocation, mix_seed, neyman_allocation, proportional_split,
    refine_plan_bulk, Allocation, Deadline, Estimate, IsEstimator, SamplePlan, Stratum,
    StratumAccum, UsageProfile,
};

use crate::analyzer::{
    factor_key, hash_key, normalized_partition, publish_report, Analyzer, Report, Stats, ALIGN_CAP,
    IS_STREAM,
};
use crate::bulkpred::CompiledPred;
use crate::factor_store::FactorKey;

/// One distinct factor of the analyzed system, deduplicated across path
/// conditions by canonical key.
struct Slot {
    key: FactorKey,
    local_pc: PathCondition,
    sub_box: IntervalBox,
    indices: Vec<usize>,
}

/// Sampling state of one slot.
enum FactorState {
    /// No sampling possible or needed: a cross-run store hit, an unsat
    /// paving, or a paving made entirely of exact strata.
    Frozen(Estimate),
    /// Still refinable.
    Active(Box<ActiveFactor>),
}

impl FactorState {
    fn estimate(&self) -> Estimate {
        match self {
            FactorState::Frozen(e) => *e,
            FactorState::Active(af) => af.estimate(),
        }
    }
}

/// A factor still being sampled: its compiled predicate (scalar +
/// columnar bulk tape), paving strata and per-stratum accumulators.
struct ActiveFactor {
    pred: Arc<CompiledPred>,
    profile: UsageProfile,
    /// The factor's projected domain box (the IS proposal's support
    /// universe; strata live inside it).
    sub_box: IntervalBox,
    strata: Vec<Stratum>,
    /// Exact mass of the certain strata (folded once, never re-sampled).
    exact: Estimate,
    /// Indices into `strata` of the non-certain, positive-weight strata.
    sampled: Vec<usize>,
    sampled_weights: Vec<f64>,
    accums: Vec<StratumAccum>,
    /// Installed after round 1 when [`Allocation::ImportanceAdaptive`]
    /// judged the factor rare; from then on refinement rounds advance
    /// the proposal instead of the stratum accumulators.
    is_engine: Option<IsEstimator>,
    plan: SamplePlan,
}

/// Result of one factor refinement pass, computed purely before being
/// installed by [`refine_states`].
enum Refined {
    /// Stratified path: the new per-stratum accumulators.
    Strata(Vec<StratumAccum>),
    /// Importance path: the advanced (cloned) IS engine.
    Importance(Box<IsEstimator>),
}

impl ActiveFactor {
    /// Current factor estimate: under IS, the exact inner mass plus the
    /// self-normalized boundary estimate; otherwise exact mass plus the
    /// weighted stratum estimates, reduced in stratum order (Eq. 3).
    fn estimate(&self) -> Estimate {
        if let Some(is) = &self.is_engine {
            return self.exact.sum(is.estimate());
        }
        self.accums
            .iter()
            .zip(&self.sampled_weights)
            .map(|(a, &w)| a.estimate().scale(w))
            .fold(self.exact, Estimate::sum)
    }

    fn stddevs(&self) -> Vec<f64> {
        self.accums.iter().map(StratumAccum::std_dev).collect()
    }

    /// The sampled strata's boxes — the IS proposal seed geometry.
    fn boundary_boxes(&self) -> Vec<IntervalBox> {
        self.sampled
            .iter()
            .map(|&i| self.strata[i].boxed.clone())
            .collect()
    }

    /// Spends `counts` further samples on this factor: one adaptation
    /// round of the IS engine (which takes the summed budget whole), or
    /// `counts[j]` samples for sampled stratum `j`, continuing each
    /// stratum's chunk stream. Pure (`&self`), so factors refine
    /// concurrently; the IS path clones the engine and returns the
    /// advanced copy. Rides the columnar bulk evaluator — chunk streams
    /// and hit counts are bit-identical to the scalar path.
    fn refined(&self, counts: &[u64]) -> (Refined, u64) {
        if let Some(engine) = &self.is_engine {
            let budget: u64 = counts.iter().sum();
            let mut engine = engine.clone();
            engine.round(
                &*self.pred,
                &self.profile,
                &self.sub_box,
                budget,
                self.plan.substream(IS_STREAM),
            );
            return (Refined::Importance(Box::new(engine)), budget);
        }
        let mut out = Vec::with_capacity(self.accums.len());
        let mut spent = 0u64;
        for (j, &i) in self.sampled.iter().enumerate() {
            out.push(refine_plan_bulk(
                &*self.pred,
                &self.strata[i].boxed,
                &self.profile,
                counts[j],
                self.plan.substream(i as u64),
                self.accums[j],
            ));
            spent += counts[j];
        }
        (Refined::Strata(out), spent)
    }
}

/// Per-slot stat deltas gathered during prep, reduced in slot order.
#[derive(Default)]
struct PrepStats {
    pavings: u64,
    paving_hits: u64,
    paving_misses: u64,
    inner: u64,
    boundary: u64,
    store_hits: u64,
    store_misses: u64,
}

impl PrepStats {
    fn add(&mut self, other: &PrepStats) {
        self.pavings += other.pavings;
        self.paving_hits += other.paving_hits;
        self.paving_misses += other.paving_misses;
        self.inner += other.inner;
        self.boundary += other.boundary;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
    }
}

/// Applies one refinement pass: computes every factor's new accumulators
/// (concurrently under `parallel`) and installs them. Returns the budget
/// spent. Values are independent per factor, so install order is
/// irrelevant to the result.
fn refine_states(states: &mut [FactorState], work: &[(usize, Vec<u64>)], parallel: bool) -> u64 {
    let compute = |(j, counts): &(usize, Vec<u64>)| -> (usize, Refined, u64) {
        let FactorState::Active(af) = &states[*j] else {
            unreachable!("refinement work only targets active factors");
        };
        let (refined, spent) = af.refined(counts);
        (*j, refined, spent)
    };
    let computed: Vec<(usize, Refined, u64)> = if parallel && work.len() > 1 {
        work.par_iter().map(compute).collect()
    } else {
        work.iter().map(compute).collect()
    };
    let mut total = 0u64;
    for (j, refined, spent) in computed {
        if let FactorState::Active(af) = &mut states[j] {
            match refined {
                Refined::Strata(accums) => af.accums = accums,
                Refined::Importance(engine) => af.is_engine = Some(*engine),
            }
        }
        total += spent;
    }
    total
}

impl Analyzer {
    /// Iterative, variance-driven quantification (see the [module
    /// docs](self)): round 1 spends [`Options::samples`](crate::Options)
    /// per factor like `analyze`, then each further round places
    /// [`Options::round_budget`](crate::Options) on the
    /// highest-variance factor of each conjunction, Neyman-allocated
    /// across its strata, until the composed standard error reaches
    /// [`Options::target_stderr`](crate::Options) or
    /// [`Options::max_rounds`](crate::Options) is exhausted.
    /// [`Stats::rounds`], [`Stats::refine_samples`] and
    /// [`Stats::target_met`] record the trajectory.
    ///
    /// Factors are always deduplicated by canonical key (the iterative
    /// engine subsumes `PARTCACHE` within a run); with
    /// [`Options::cache`](crate::Options) set, final factor estimates
    /// are exchanged with the attached
    /// [`FactorStore`](crate::FactorStore) under
    /// [`Options::iterative_fingerprint`](crate::Options), so a warm
    /// repeat recomposes bit-identically with zero pavings and samples.
    ///
    /// # Panics
    ///
    /// Panics if the constraint set references variables outside
    /// `domain` or if `profile.len() != domain.len()` (as `analyze`).
    pub fn analyze_iterative(
        &self,
        cs: &ConstraintSet,
        domain: &Domain,
        profile: &UsageProfile,
    ) -> Report {
        assert_eq!(
            profile.len(),
            domain.len(),
            "profile and domain must cover the same variables"
        );
        assert!(
            cs.var_bound() <= domain.len(),
            "constraint set references undeclared variables"
        );
        let start = Instant::now();
        let trace = self.run_trace();
        let trace_t0 = qcoral_obs::trace::span_start(&trace);
        let tr = trace.as_deref();
        let opts = &self.opts;
        // Deadline expiry is monotonic (an `Instant` cutoff never
        // un-passes), so one check late in the run also answers "did it
        // expire at any earlier point".
        let deadline = self.effective_deadline();
        let expired = || deadline.is_some_and(Deadline::expired);
        let nvars = domain.len();
        let partition = normalized_partition(opts, cs, nvars);
        let dbox = domain_box(domain);
        let iter_fp = opts.iterative_fingerprint();
        let max_rounds = opts.max_rounds.max(1);
        let (tape_hits0, tape_misses0) = tape_cache_stats();

        // Factor discovery: one slot per distinct canonical factor, and
        // per-PC lists of slot indices (a factor recurring across PCs is
        // sampled once and its refinement benefits every PC).
        let pcs = cs.pcs();
        let mut slots: Vec<Slot> = Vec::new();
        let mut slot_of: HashMap<FactorKey, usize> = HashMap::new();
        let mut pc_slots: Vec<Vec<usize>> = Vec::with_capacity(pcs.len());
        let mut factor_refs = 0u64;
        for pc in pcs {
            let mut mine = Vec::new();
            for class in &partition {
                let part = pc.project(class);
                if part.is_empty() {
                    continue;
                }
                let indices = class.indices();
                let mut local_of = HashMap::new();
                for (local, &global) in indices.iter().enumerate() {
                    local_of.insert(global as u32, local as u32);
                }
                let local_pc = part.remap_vars(&|v: VarId| VarId(local_of[&v.0]));
                let sub_box = dbox.project(&indices);
                let key = factor_key(
                    &local_pc,
                    &sub_box,
                    &profile.project(&indices),
                    opts.profile_epsilon,
                );
                factor_refs += 1;
                let idx = *slot_of.entry(key.clone()).or_insert_with(|| {
                    slots.push(Slot {
                        key,
                        local_pc,
                        sub_box,
                        indices,
                    });
                    slots.len() - 1
                });
                mine.push(idx);
            }
            pc_slots.push(mine);
        }

        // Prep each slot: cross-run store lookup, then paving → strata.
        let store = if opts.cache {
            self.factor_store.as_deref()
        } else {
            None
        };
        let prep_body = |slot: &Slot| -> (FactorState, PrepStats) {
            let mut d = PrepStats::default();
            if let Some(store) = store {
                if let Some(e) = store.get(iter_fp, &slot.key) {
                    d.store_hits = 1;
                    return (FactorState::Frozen(e), d);
                }
                d.store_misses = 1;
            }
            // Past the deadline, skip the paving this factor would pay
            // for and freeze it at `0 ± 0` — the flagged partial report
            // composes a sound lower bound, and the deposit loop below
            // never persists anything from an expired run.
            if expired() {
                return (FactorState::Frozen(Estimate::ZERO), d);
            }
            let local_profile = profile.project(&slot.indices);
            let raw_strata: Vec<Stratum> = if opts.stratified {
                let t_pave = tr.map_or(0, Trace::now_us);
                let (paving, was_hit) = self.paving_cache.pave_cached_counted(
                    &slot.local_pc,
                    &slot.sub_box,
                    &opts.paver,
                );
                // Same span taxonomy as the one-shot engine, so a
                // Perfetto timeline reads identically across both.
                if let Some(t) = tr {
                    t.record(
                        "paving",
                        "icp",
                        t_pave,
                        vec![
                            arg("inner", paving.inner.len()),
                            arg("boundary", paving.boundary.len()),
                            arg("cache_hit", was_hit),
                        ],
                    );
                }
                if was_hit {
                    d.paving_hits = 1;
                } else {
                    d.paving_misses = 1;
                }
                d.pavings = 1;
                d.inner = paving.inner.len() as u64;
                d.boundary = paving.boundary.len() as u64;
                if paving.is_unsat() {
                    return (FactorState::Frozen(Estimate::ZERO), d);
                }
                paving
                    .inner
                    .iter()
                    .cloned()
                    .map(Stratum::inner)
                    .chain(paving.boundary.iter().cloned().map(Stratum::boundary))
                    .collect()
            } else {
                vec![Stratum::boundary(slot.sub_box.clone())]
            };
            // Profile-aligned stratification (identical to the one-shot
            // engine's, so shared pavings yield the same strata): only
            // the ICP-stratified path aligns — the unstratified engine
            // stays the paper's naive baseline.
            let strata = if opts.stratified {
                align_strata(
                    raw_strata,
                    &local_profile,
                    &slot.sub_box,
                    opts.profile_epsilon,
                    ALIGN_CAP,
                )
            } else {
                raw_strata
            };
            let weights: Vec<f64> = strata
                .iter()
                .map(|s| local_profile.box_probability(&s.boxed, &slot.sub_box))
                .collect();
            let mut exact = Estimate::ZERO;
            for (i, s) in strata.iter().enumerate() {
                if s.certain {
                    exact = exact.sum(Estimate::ONE.scale(weights[i]));
                }
            }
            let sampled: Vec<usize> = strata
                .iter()
                .enumerate()
                .filter(|(i, s)| !s.certain && weights[*i] > 0.0)
                .map(|(i, _)| i)
                .collect();
            if sampled.is_empty() {
                return (FactorState::Frozen(exact), d);
            }
            let sampled_weights: Vec<f64> = sampled.iter().map(|&i| weights[i]).collect();
            let t_compile = tr.map_or(0, Trace::now_us);
            let pred = CompiledPred::compile_cached(&slot.local_pc);
            if let Some(t) = tr {
                t.record(
                    "compile",
                    "tape",
                    t_compile,
                    vec![arg("vars", slot.sub_box.dims().len())],
                );
            }
            let accums = vec![StratumAccum::EMPTY; sampled.len()];
            let plan = SamplePlan {
                seed: mix_seed(opts.seed, hash_key(&slot.key)),
                chunk: opts.chunk.max(1),
                parallel: opts.parallel,
                deadline,
            };
            (
                FactorState::Active(Box::new(ActiveFactor {
                    pred,
                    profile: local_profile,
                    sub_box: slot.sub_box.clone(),
                    strata,
                    exact,
                    sampled,
                    sampled_weights,
                    accums,
                    is_engine: None,
                    plan,
                })),
                d,
            )
        };
        // Per-slot `prep` span: paving (box counts) plus where the
        // factor ended up (store hit, frozen exact, or live sampling).
        let prep = |slot: &Slot| -> (FactorState, PrepStats) {
            let t0 = tr.map_or(0, Trace::now_us);
            let (state, d) = prep_body(slot);
            if let Some(t) = tr {
                let outcome = match &state {
                    FactorState::Frozen(_) if d.store_hits == 1 => "factor_store",
                    FactorState::Frozen(_) => "frozen",
                    FactorState::Active(_) => "active",
                };
                t.record(
                    "prep",
                    "core",
                    t0,
                    vec![
                        arg("inner", d.inner),
                        arg("boundary", d.boundary),
                        arg("outcome", outcome),
                    ],
                );
            }
            (state, d)
        };
        let prepped: Vec<(FactorState, PrepStats)> = if opts.parallel && slots.len() > 1 {
            slots.par_iter().map(prep).collect()
        } else {
            slots.iter().map(prep).collect()
        };
        let mut prep_stats = PrepStats::default();
        let mut states: Vec<FactorState> = Vec::with_capacity(prepped.len());
        for (state, d) in prepped {
            prep_stats.add(&d);
            states.push(state);
        }

        // Round 1: the initial budget, statically allocated (for
        // `VarianceAdaptive` the adaptation *is* the later rounds, so
        // round 1 pilots with the equal split; `ImportanceAdaptive`
        // pilots the same way — its hit rate decides the escalation
        // below).
        let round1_alloc = match opts.allocation {
            Allocation::VarianceAdaptive | Allocation::ImportanceAdaptive => {
                Allocation::EqualPerStratum
            }
            a => a,
        };
        let round1: Vec<(usize, Vec<u64>)> = states
            .iter()
            .enumerate()
            .filter_map(|(j, st)| match st {
                FactorState::Active(af) => Some((
                    j,
                    initial_allocation(round1_alloc, opts.samples, &af.sampled_weights),
                )),
                FactorState::Frozen(_) => None,
            })
            .collect();
        let t_round1 = tr.map_or(0, Trace::now_us);
        let mut samples_drawn = refine_states(&mut states, &round1, opts.parallel);
        if let Some(t) = tr {
            t.record(
                "round",
                "sampling",
                t_round1,
                vec![
                    arg("round", 1),
                    arg("budget", samples_drawn),
                    arg("factors", round1.len()),
                ],
            );
        }
        let mut rounds = 1u64;
        let mut refine_samples = 0u64;
        let mut target_met = false;
        let mut is_fallbacks = 0u64;

        // IS escalation: under `ImportanceAdaptive`, a factor whose
        // round-1 estimate fell below the threshold seeds a paver-based
        // IS engine from its sampled strata and pilots it with one more
        // factor budget. A proposal that cannot be built (degenerate
        // geometry) or whose pilot finds zero hits falls back to the
        // stratified accumulators deterministically.
        if opts.allocation == Allocation::ImportanceAdaptive && !expired() {
            // Factor index plus its pilot verdict: the seeded engine (or
            // `None` for a fallback) and the samples the pilot spent.
            type Decision = (usize, (Option<IsEstimator>, u64));
            let pilot = |af: &ActiveFactor| -> Option<(Option<IsEstimator>, u64)> {
                let drawn: u64 = af.accums.iter().map(|a| a.n).sum();
                // Rarity is judged on the pilot *estimate* (exact mass
                // plus weighted boundary hit rate), not the raw
                // conditional hit rate — boundary strata hug the
                // constraint surface, so their conditional rates are
                // O(1) even for 1e-8 events.
                let rare = drawn > 0 && af.estimate().mean < opts.is_threshold;
                if !rare {
                    return None;
                }
                let Some(mut is) =
                    IsEstimator::seeded(&af.boundary_boxes(), &af.profile, &af.sub_box)
                else {
                    return Some((None, 0));
                };
                let r = is.round(
                    &*af.pred,
                    &af.profile,
                    &af.sub_box,
                    opts.samples,
                    af.plan.substream(IS_STREAM),
                );
                if r.hits == 0 {
                    return Some((None, opts.samples));
                }
                Some((Some(is), opts.samples))
            };
            let decide = |j: usize| match &states[j] {
                FactorState::Active(af) => pilot(af).map(|d| (j, d)),
                FactorState::Frozen(_) => None,
            };
            let t_esc = tr.map_or(0, Trace::now_us);
            let decided: Vec<Option<Decision>> = if opts.parallel && states.len() > 1 {
                (0..states.len()).into_par_iter().map(decide).collect()
            } else {
                (0..states.len()).map(decide).collect()
            };
            let decisions = decided.into_iter().flatten();
            let mut escalated = 0u64;
            let mut pilot_spent = 0u64;
            for (j, (engine, spent)) in decisions {
                samples_drawn += spent;
                pilot_spent += spent;
                match engine {
                    Some(is) => {
                        escalated += 1;
                        if let FactorState::Active(af) = &mut states[j] {
                            af.is_engine = Some(is);
                        }
                    }
                    None => is_fallbacks += 1,
                }
            }
            if let Some(t) = tr {
                if escalated + is_fallbacks > 0 {
                    t.record(
                        "is_escalate",
                        "sampling",
                        t_esc,
                        vec![
                            arg("factors", escalated),
                            arg("fallbacks", is_fallbacks),
                            arg("budget", pilot_spent),
                        ],
                    );
                }
            }
        }

        // Refinement loop: compose → stop or reallocate → refine.
        let (per_pc, estimate) = loop {
            let factor_estimates: Vec<Estimate> =
                states.iter().map(FactorState::estimate).collect();
            // Eq. 7–8 per PC, Theorem 1 across PCs, fixed reduction order.
            let per_pc: Vec<Estimate> = pc_slots
                .iter()
                .map(|mine| {
                    mine.iter()
                        .fold(Estimate::ONE, |acc, &j| acc.product(factor_estimates[j]))
                })
                .collect();
            let total = per_pc.iter().fold(Estimate::ZERO, |acc, e| acc.sum(*e));
            if let Some(t) = opts.target_stderr {
                if total.variance.sqrt() <= t {
                    target_met = true;
                    break (per_pc, total);
                }
            }
            if rounds >= max_rounds {
                break (per_pc, total);
            }
            // Cooperative cancellation between rounds (the chunk loops
            // inside a round check the same deadline): the composed
            // estimate so far *is* the best-effort answer.
            if expired() {
                break (per_pc, total);
            }
            // Split the round budget across PCs proportional to their
            // variance contribution, then aim each share at the PC's
            // highest-contribution refinable factor.
            let pc_vars: Vec<f64> = per_pc.iter().map(|e| e.variance).collect();
            let shares = proportional_split(opts.round_budget, &pc_vars);
            let mut budget_for: Vec<u64> = vec![0; states.len()];
            for (pc_idx, &share) in shares.iter().enumerate() {
                if share == 0 {
                    continue;
                }
                let mut best: Option<(f64, usize)> = None;
                for (pos, &j) in pc_slots[pc_idx].iter().enumerate() {
                    if !matches!(states[j], FactorState::Active(_))
                        || factor_estimates[j].variance <= 0.0
                    {
                        continue;
                    }
                    // Exact share of the PC product's variance
                    // attributable to factor j under Eq. 7–8:
                    // varⱼ · Π_{i≠j}(meanᵢ² + varᵢ). Occurrences are
                    // excluded by *position*: a canonical factor can
                    // appear twice in one PC (identically distributed
                    // sibling classes), and only this occurrence — not
                    // its twin — leaves the product.
                    let others: f64 = pc_slots[pc_idx]
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != pos)
                        .map(|(_, &i)| {
                            let e = factor_estimates[i];
                            e.mean * e.mean + e.variance
                        })
                        .product();
                    let score = factor_estimates[j].variance * others;
                    if best.is_none_or(|(s, _)| score > s) {
                        best = Some((score, j));
                    }
                }
                if let Some((_, j)) = best {
                    budget_for[j] += share;
                }
            }
            // Neyman placement within each chosen factor; a factor whose
            // strata are all exact absorbs nothing. An IS factor takes
            // its share whole — the engine spends it as one adaptation
            // round.
            let work: Vec<(usize, Vec<u64>)> = budget_for
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b > 0)
                .filter_map(|(j, &b)| {
                    let FactorState::Active(af) = &states[j] else {
                        return None;
                    };
                    let counts = if af.is_engine.is_some() {
                        vec![b]
                    } else {
                        neyman_allocation(b, &af.sampled_weights, &af.stddevs())
                    };
                    counts.iter().any(|&c| c > 0).then_some((j, counts))
                })
                .collect();
            if work.is_empty() {
                // No remaining factor can absorb budget: every stratum
                // is exact or frozen. Further rounds cannot help.
                break (per_pc, total);
            }
            let t_round = tr.map_or(0, Trace::now_us);
            let spent = refine_states(&mut states, &work, opts.parallel);
            rounds += 1;
            samples_drawn += spent;
            refine_samples += spent;
            if let Some(t) = tr {
                // `stderr` is the composed standard error that *drove*
                // this round's Neyman placement (measured before it).
                t.record(
                    "round",
                    "sampling",
                    t_round,
                    vec![
                        arg("round", rounds),
                        arg("budget", spent),
                        arg("factors", work.len()),
                        arg("stderr", total.variance.sqrt()),
                    ],
                );
            }
        };

        // Deposit final factor estimates for warm repeats (store hits
        // re-insert their own value, which neither changes the store nor
        // bumps its revision). An expired run deposits nothing: its
        // estimates may be deadline-truncated partials, which must never
        // masquerade as the full-budget reproducible values.
        let deadline_exceeded = expired();
        if let Some(store) = store {
            if !deadline_exceeded {
                for (slot, state) in slots.iter().zip(&states) {
                    store.insert(iter_fp, slot.key.clone(), state.estimate());
                }
            }
        }

        let (tape_hits1, tape_misses1) = tape_cache_stats();
        let is_factors = states
            .iter()
            .filter(|s| matches!(s, FactorState::Active(af) if af.is_engine.is_some()))
            .count() as u64;
        let stats = Stats {
            cache_hits: factor_refs - slots.len() as u64,
            cache_misses: slots.len() as u64,
            inner_boxes: prep_stats.inner,
            boundary_boxes: prep_stats.boundary,
            pavings: prep_stats.pavings,
            paving_cache_hits: prep_stats.paving_hits,
            paving_cache_misses: prep_stats.paving_misses,
            tape_cache_hits: tape_hits1 - tape_hits0,
            tape_cache_misses: tape_misses1 - tape_misses0,
            factor_store_hits: prep_stats.store_hits,
            factor_store_misses: prep_stats.store_misses,
            samples_drawn,
            rounds,
            refine_samples,
            target_met,
            is_factors,
            is_fallbacks,
            deadline_exceeded,
            backend: crate::bulkpred::active_backend().to_string(),
        };
        if let Some(t) = &trace {
            t.record(
                "analyze_iterative",
                "core",
                trace_t0,
                vec![
                    arg("pcs", per_pc.len()),
                    arg("rounds", rounds),
                    arg("samples_drawn", samples_drawn),
                ],
            );
        }
        let report = Report {
            estimate,
            per_pc,
            stats,
            wall: start.elapsed(),
            trace: trace.map(|t| t.take()),
        };
        publish_report(&report);
        report
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::factor_store::FactorStore;
    use crate::Options;
    use qcoral_constraints::parse::parse_system;

    fn paper_system() -> (ConstraintSet, Domain, UsageProfile) {
        let sys = parse_system(
            "var altitude in [0, 20000];
             var headFlap in [-10, 10];
             var tailFlap in [-10, 10];
             pc altitude > 9000;
             pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;",
        )
        .unwrap();
        let profile = UsageProfile::uniform(sys.domain.len());
        (sys.constraint_set, sys.domain, profile)
    }

    #[test]
    fn converges_to_target_and_flags_it() {
        let (cs, dom, prof) = paper_system();
        let opts = Options::strat_partcache()
            .with_samples(2_000)
            .with_seed(42)
            .with_target_stderr(1e-3)
            .with_round_budget(2_000)
            .with_max_rounds(40);
        let r = Analyzer::new(opts).analyze_iterative(&cs, &dom, &prof);
        assert!(r.stats.target_met, "stats: {:?}", r.stats);
        assert!(r.estimate.std_dev() <= 1e-3);
        assert!((r.estimate.mean - 0.737848).abs() < 0.01, "{}", r.estimate);
        assert!(r.stats.rounds >= 1);
        assert_eq!(
            r.stats.samples_drawn,
            r.stats.refine_samples + sampled_round1(&r),
            "refine_samples is the post-round-1 share"
        );
    }

    fn sampled_round1(r: &Report) -> u64 {
        r.stats.samples_drawn - r.stats.refine_samples
    }

    #[test]
    fn max_rounds_stops_an_unreachable_target() {
        let (cs, dom, prof) = paper_system();
        let opts = Options::strat_partcache()
            .with_samples(500)
            .with_seed(7)
            .with_target_stderr(1e-9)
            .with_round_budget(500)
            .with_max_rounds(3);
        let r = Analyzer::new(opts).analyze_iterative(&cs, &dom, &prof);
        assert!(!r.stats.target_met);
        assert_eq!(r.stats.rounds, 3);
        assert!(r.stats.refine_samples > 0);
    }

    #[test]
    fn refinement_shrinks_stderr_monotonically_in_budget() {
        let (cs, dom, prof) = paper_system();
        let base = Options::strat_partcache()
            .with_samples(1_000)
            .with_seed(3)
            .with_target_stderr(0.0)
            .with_round_budget(4_000);
        let short =
            Analyzer::new(base.clone().with_max_rounds(1)).analyze_iterative(&cs, &dom, &prof);
        let long = Analyzer::new(base.with_max_rounds(10)).analyze_iterative(&cs, &dom, &prof);
        assert!(
            long.estimate.variance < short.estimate.variance,
            "more rounds must not increase variance: {} vs {}",
            long.estimate.variance,
            short.estimate.variance
        );
        assert!((long.estimate.mean - 0.737848).abs() < 0.02);
    }

    #[test]
    fn exact_systems_finish_in_one_round() {
        let sys = parse_system(
            "var x in [-2, 2]; var y in [-2, 2];
             pc x >= -1 && x <= 1 && y >= -1 && y <= 1;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let opts = Options::strat()
            .with_samples(100)
            .with_target_stderr(1e-6)
            .with_max_rounds(10);
        let r = Analyzer::new(opts).analyze_iterative(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.estimate.variance, 0.0);
        assert!((r.estimate.mean - 0.25).abs() < 1e-12);
        assert!(r.stats.target_met);
        assert_eq!(r.stats.rounds, 1);
        assert_eq!(r.stats.refine_samples, 0);
    }

    #[test]
    fn parallel_is_bit_identical() {
        let (cs, dom, prof) = paper_system();
        let opts = Options::strat_partcache()
            .with_samples(1_500)
            .with_seed(11)
            .with_target_stderr(5e-4)
            .with_round_budget(1_500)
            .with_max_rounds(12);
        let serial = Analyzer::new(opts.clone()).analyze_iterative(&cs, &dom, &prof);
        let parallel = Analyzer::new(opts.with_parallel(true)).analyze_iterative(&cs, &dom, &prof);
        assert_eq!(serial.estimate, parallel.estimate);
        assert_eq!(serial.per_pc, parallel.per_pc);
        assert_eq!(serial.stats.rounds, parallel.stats.rounds);
        assert_eq!(serial.stats.samples_drawn, parallel.stats.samples_drawn);
    }

    #[test]
    fn warm_store_recomposes_bit_identically_with_zero_work() {
        let (cs, dom, prof) = paper_system();
        let store = Arc::new(FactorStore::new(1024));
        let opts = Options::strat_partcache()
            .with_samples(1_000)
            .with_seed(5)
            .with_target_stderr(2e-3)
            .with_round_budget(1_000)
            .with_max_rounds(20);
        let cold = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze_iterative(&cs, &dom, &prof);
        assert!(cold.stats.samples_drawn > 0);
        assert!(!store.is_empty());
        let warm = Analyzer::new(opts)
            .with_factor_store(Arc::clone(&store))
            .analyze_iterative(&cs, &dom, &prof);
        assert_eq!(warm.estimate, cold.estimate, "bit-identical recompose");
        assert_eq!(warm.per_pc, cold.per_pc);
        assert_eq!(warm.stats.samples_drawn, 0, "warm run must not sample");
        assert_eq!(warm.stats.pavings, 0, "warm run must not pave");
        assert!(warm.stats.factor_store_hits > 0);
        assert_eq!(warm.stats.factor_store_misses, 0);
        assert_eq!(warm.stats.target_met, cold.stats.target_met);
    }

    #[test]
    fn iterative_and_one_shot_store_entries_never_collide() {
        let (cs, dom, prof) = paper_system();
        let store = Arc::new(FactorStore::new(1024));
        let opts = Options::strat_partcache().with_samples(1_000).with_seed(9);
        let one_shot = Analyzer::new(opts.clone())
            .with_factor_store(Arc::clone(&store))
            .analyze(&cs, &dom, &prof);
        // Same base options driven iteratively: must not warm-hit the
        // one-shot entries (different fingerprint), and vice versa.
        let iter_opts = opts.with_target_stderr(1e-4).with_round_budget(1_000);
        let it = Analyzer::new(iter_opts)
            .with_factor_store(Arc::clone(&store))
            .analyze_iterative(&cs, &dom, &prof);
        assert_eq!(it.stats.factor_store_hits, 0);
        assert!(it.stats.samples_drawn > 0);
        assert_ne!(one_shot.estimate, it.estimate);
    }

    #[test]
    fn empty_constraint_set_is_zero_and_meets_any_target() {
        let sys = parse_system("var x in [0, 1];").unwrap();
        let prof = UsageProfile::uniform(1);
        let opts = Options::default().with_target_stderr(1e-6);
        let r = Analyzer::new(opts).analyze_iterative(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.estimate, Estimate::ZERO);
        assert!(r.per_pc.is_empty());
        assert!(r.stats.target_met);
    }

    #[test]
    fn shared_factors_are_refined_once_for_all_pcs() {
        // Both PCs share the sin(y) factor; the iterative engine samples
        // it once per round and the x-factors are exact boxes.
        let sys = parse_system(
            "var x in [0, 1]; var y in [0, 1];
             pc x < 0.5 && sin(y) > 0.5;
             pc x >= 0.5 && sin(y) > 0.5;",
        )
        .unwrap();
        let prof = UsageProfile::uniform(2);
        let opts = Options::strat_partcache()
            .with_samples(1_000)
            .with_target_stderr(1e-3)
            .with_round_budget(1_000)
            .with_max_rounds(30);
        let r = Analyzer::new(opts).analyze_iterative(&sys.constraint_set, &sys.domain, &prof);
        assert_eq!(r.stats.cache_hits, 1, "shared factor deduplicated");
        assert_eq!(r.stats.cache_misses, 3, "three distinct factors");
        assert!((r.estimate.mean - 0.4764).abs() < 0.02, "{}", r.estimate);
    }
}
