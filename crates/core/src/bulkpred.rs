//! The analyzer's compiled predicate: a scalar [`EvalTape`] paired with
//! its columnar [`BulkTape`], behind the process-wide predicate cache.
//!
//! Every factor the quantifier samples bottoms out in "evaluate the
//! path-condition predicate on a sample". [`CompiledPred`] carries both
//! evaluation forms — the row-oriented scalar tape (used for one-off
//! points and as the semantic reference) and the register-allocated
//! columnar tape (used by the bulk chunk executor in `qcoral-mc`, which
//! amortizes interpreter dispatch across 128-sample lane chunks) — and
//! implements [`BulkPred`] so the plan-layer samplers ride the columnar
//! path automatically.
//!
//! [`CompiledPred::compile_cached`] memoizes compilation process-wide by
//! the condition's structural fingerprint, mirroring the HC4 tape cache
//! in `qcoral-icp`: recurring factors — the workload's defining
//! redundancy, and the steady state of `qcoral-service` — compile their
//! tapes once per process instead of once per request.

use std::sync::{Arc, OnceLock};

#[cfg(feature = "jit")]
use qcoral_constraints::jit::JitTape;
use qcoral_constraints::{BulkTape, EvalTape, PathCondition};
use qcoral_icp::CompileCache;
use qcoral_mc::BulkPred;
#[cfg(feature = "jit")]
use qcoral_obs::{Counter, Registry};

/// Process-wide compiled-predicate cache, keyed by the path condition's
/// structural fingerprint (see
/// [`PathCondition::fingerprint`](qcoral_constraints::PathCondition::fingerprint)).
/// Shares the bounded [`CompileCache`] machinery with the HC4 tape
/// cache in `qcoral-icp`.
static PRED_CACHE: OnceLock<CompileCache<CompiledPred>> = OnceLock::new();

/// Cap on cached predicates; beyond it compilation still succeeds but
/// results are no longer retained (bounds memory on adversarial
/// workloads), mirroring the HC4 tape cache.
const PRED_CACHE_CAP: usize = 4096;

fn pred_cache() -> &'static CompileCache<CompiledPred> {
    PRED_CACHE.get_or_init(|| CompileCache::new_named(PRED_CACHE_CAP, "pred_cache"))
}

/// Cumulative `(hits, misses)` of the process-wide predicate cache.
/// Counters are monotone; callers wanting per-analysis numbers snapshot
/// before and after (exact when no other analysis runs concurrently in
/// the process).
pub fn pred_cache_stats() -> (u64, u64) {
    pred_cache().stats()
}

/// Name of the predicate-evaluation backend tape-compiled predicates
/// use in this build and process: `"jit"` when the `jit` feature is on
/// and runtime detection finds a CPU the native emitter supports,
/// `"bulk"` for the columnar interpreter otherwise. (`"scalar"` names
/// the row-by-row closure path of `qcoral_mc` — plan-layer callers that
/// never compile a tape; the analyzers always compile one.) Surfaced as
/// `Stats::backend` and by the service's `status` op.
pub fn active_backend() -> &'static str {
    #[cfg(feature = "jit")]
    {
        if qcoral_constraints::jit::jit_available() {
            return "jit";
        }
    }
    "bulk"
}

/// Process-wide JIT compilation counters in the global obs [`Registry`]:
/// kernels emitted and cumulative emission time.
#[cfg(feature = "jit")]
struct JitMetrics {
    compiles: Arc<Counter>,
    compile_us: Arc<Counter>,
}

#[cfg(feature = "jit")]
fn jit_metrics() -> &'static JitMetrics {
    static METRICS: OnceLock<JitMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        JitMetrics {
            compiles: r.counter(
                "qcoral_jit_compile_count",
                "Predicates compiled to native x86-64 kernels.",
            ),
            compile_us: r.counter(
                "qcoral_jit_compile_us",
                "Cumulative wall-clock microseconds spent emitting native kernels.",
            ),
        }
    })
}

/// A factor predicate compiled for both evaluation styles: the scalar
/// row tape and the register-allocated columnar bulk tape. With the
/// `jit` feature, also a native x86-64 kernel compiled from the bulk
/// tape's instruction stream when the running CPU supports one.
///
/// All forms are compiled from the same hash-consed node pool, apply the
/// same `f64` operations in the same order per sample, and share the
/// scalar NaN/early-exit semantics — so the [`BulkPred`] contract
/// (columnar hit counts equal row-by-row hit counts, bit for bit) holds
/// by construction and is pinned by the workspace's equivalence suites.
#[derive(Clone, Debug)]
pub struct CompiledPred {
    scalar: EvalTape,
    bulk: BulkTape,
    #[cfg(feature = "jit")]
    jit: Option<Arc<JitTape>>,
}

impl CompiledPred {
    /// Compiles all evaluation forms for a conjunction. Linear in DAG
    /// size. With the `jit` feature this includes native-kernel
    /// emission (counted in `qcoral_jit_compile_{count,us}`); when the
    /// runtime CPU cannot execute one, the predicate silently keeps the
    /// interpreter — results are bit-identical either way.
    pub fn compile(pc: &PathCondition) -> CompiledPred {
        let scalar = EvalTape::compile(pc);
        let bulk = BulkTape::compile(&scalar);
        #[cfg(feature = "jit")]
        let jit = {
            let t0 = std::time::Instant::now();
            let jit = JitTape::compile(&bulk).map(Arc::new);
            if jit.is_some() {
                let m = jit_metrics();
                m.compiles.inc();
                m.compile_us.add(t0.elapsed().as_micros() as u64);
            }
            jit
        };
        CompiledPred {
            scalar,
            bulk,
            #[cfg(feature = "jit")]
            jit,
        }
    }

    /// Compiles the scalar and bulk tapes only, never a native kernel —
    /// the forced-fallback form, exercising exactly the path a
    /// non-x86-64 host takes. Used by the differential suites and by
    /// the hot-path bench to time the interpreter against the JIT.
    pub fn compile_interpreter_only(pc: &PathCondition) -> CompiledPred {
        let scalar = EvalTape::compile(pc);
        let bulk = BulkTape::compile(&scalar);
        CompiledPred {
            scalar,
            bulk,
            #[cfg(feature = "jit")]
            jit: None,
        }
    }

    /// Compiles through the process-wide predicate cache: structurally
    /// equal conditions share one compiled predicate across factors,
    /// path conditions, analyses, threads and service requests.
    pub fn compile_cached(pc: &PathCondition) -> Arc<CompiledPred> {
        // Fingerprinting happens outside the cache lock, like the
        // compilation itself: both can be heavy.
        let key = pc.fingerprint();
        pred_cache().get_or_compile(key, || CompiledPred::compile(pc))
    }

    /// The scalar row tape.
    pub fn scalar(&self) -> &EvalTape {
        &self.scalar
    }

    /// The columnar bulk tape.
    pub fn bulk(&self) -> &BulkTape {
        &self.bulk
    }

    /// Which backend [`BulkPred::count_hits`] dispatches to for *this*
    /// predicate: `"jit"` when a native kernel was emitted, `"bulk"`
    /// otherwise (feature off, unsupported CPU, or
    /// [`CompiledPred::compile_interpreter_only`]).
    pub fn backend(&self) -> &'static str {
        #[cfg(feature = "jit")]
        {
            if self.jit.is_some() {
                return "jit";
            }
        }
        "bulk"
    }
}

impl BulkPred for CompiledPred {
    fn holds(&self, point: &[f64]) -> bool {
        self.scalar.holds(point)
    }

    fn columnar(&self) -> bool {
        true
    }

    fn count_hits(&self, cols: &[Vec<f64>], n: usize) -> u64 {
        #[cfg(feature = "jit")]
        {
            if let Some(jit) = &self.jit {
                return jit.count_hits(&self.bulk, cols, n);
            }
        }
        self.bulk.count_hits(cols, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_interval::{Interval, IntervalBox};
    use qcoral_mc::{hit_or_miss_plan, hit_or_miss_plan_bulk, SamplePlan, UsageProfile};

    fn pc_of(src: &str) -> PathCondition {
        parse_system(src).unwrap().constraint_set.pcs()[0].clone()
    }

    #[test]
    fn bulk_estimates_match_scalar_bit_for_bit() {
        let pc = pc_of(
            "var x in [-1, 1]; var y in [-1, 1];
             pc sin(3 * x + y) > 0.25 && x * x + y * y <= 0.8;",
        );
        let pred = CompiledPred::compile(&pc);
        let boxed: IntervalBox = [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect();
        let profile = UsageProfile::uniform(2);
        for n in [1u64, 4_095, 4_096, 12_345] {
            let scalar = hit_or_miss_plan(
                &|p: &[f64]| pred.scalar().holds(p),
                &boxed,
                &profile,
                n,
                SamplePlan::serial(5),
            );
            let bulk = hit_or_miss_plan_bulk(&pred, &boxed, &profile, n, SamplePlan::serial(5));
            assert_eq!(scalar, bulk, "n = {n}");
        }
    }

    #[test]
    fn cache_shares_structurally_equal_predicates() {
        // Unique constants keep this test's keys disjoint from others.
        let a = pc_of("var x in [0, 1]; pc sin(x * 0.5417261) > 0.1234987;");
        let b = pc_of("var x in [0, 1]; pc sin(x * 0.5417261) > 0.1234987;");
        let (h0, m0) = pred_cache_stats();
        let pa = CompiledPred::compile_cached(&a);
        let pb = CompiledPred::compile_cached(&b);
        assert!(Arc::ptr_eq(&pa, &pb), "separate parses share one tape");
        let (h1, m1) = pred_cache_stats();
        assert!(m1 > m0, "first compile misses");
        assert!(h1 > h0, "second compile hits");
    }

    #[test]
    fn backend_names_are_consistent() {
        let pc = pc_of("var x in [0, 1]; pc sin(x) > 0.8660977;");
        let fallback = CompiledPred::compile_interpreter_only(&pc);
        assert_eq!(fallback.backend(), "bulk");
        let full = CompiledPred::compile(&pc);
        // The full compile matches the process-wide answer: "jit" only
        // when the feature is on and this CPU passed detection.
        assert_eq!(full.backend(), active_backend());
    }

    /// Forced fallback vs native kernel, whole-pipeline bit identity:
    /// the same seeded sampling plan over the same predicate must yield
    /// the same estimate whether `count_hits` dispatches to the JIT or
    /// to the interpreter it fell back from.
    #[cfg(feature = "jit")]
    #[test]
    fn jit_and_forced_fallback_estimates_are_bit_identical() {
        let pc = pc_of(
            "var x in [-1, 1]; var y in [-1, 1];
             pc sin(3 * x + y) > 0.25 && x * x + y * y <= 0.8;",
        );
        let native = CompiledPred::compile(&pc);
        let fallback = CompiledPred::compile_interpreter_only(&pc);
        if native.backend() != "jit" {
            return; // runtime CPU detection rejected the JIT
        }
        let boxed: IntervalBox = [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect();
        let profile = UsageProfile::uniform(2);
        for n in [1u64, 127, 128, 4_096, 12_345] {
            let jit = hit_or_miss_plan_bulk(&native, &boxed, &profile, n, SamplePlan::serial(5));
            let interp =
                hit_or_miss_plan_bulk(&fallback, &boxed, &profile, n, SamplePlan::serial(5));
            assert_eq!(jit, interp, "n = {n}");
        }
    }

    /// Emitting a kernel bumps the compile counters the metrics
    /// endpoint exposes; the forced-fallback form never does.
    #[cfg(feature = "jit")]
    #[test]
    fn jit_compile_counters_track_emission() {
        let pc = pc_of("var x in [0, 1]; pc cos(x * 2.7172577) < 0.9170423;");
        let before = jit_metrics().compiles.get();
        let pred = CompiledPred::compile(&pc);
        let mid = jit_metrics().compiles.get();
        if pred.backend() == "jit" {
            assert!(mid > before, "native emission counts a compile");
        } else {
            assert_eq!(mid, before, "no kernel, no compile counted");
        }
        let _ = CompiledPred::compile_interpreter_only(&pc);
        assert_eq!(jit_metrics().compiles.get(), mid, "fallback never counts");
    }
}
