//! The analyzer's compiled predicate: a scalar [`EvalTape`] paired with
//! its columnar [`BulkTape`], behind the process-wide predicate cache.
//!
//! Every factor the quantifier samples bottoms out in "evaluate the
//! path-condition predicate on a sample". [`CompiledPred`] carries both
//! evaluation forms — the row-oriented scalar tape (used for one-off
//! points and as the semantic reference) and the register-allocated
//! columnar tape (used by the bulk chunk executor in `qcoral-mc`, which
//! amortizes interpreter dispatch across 128-sample lane chunks) — and
//! implements [`BulkPred`] so the plan-layer samplers ride the columnar
//! path automatically.
//!
//! [`CompiledPred::compile_cached`] memoizes compilation process-wide by
//! the condition's structural fingerprint, mirroring the HC4 tape cache
//! in `qcoral-icp`: recurring factors — the workload's defining
//! redundancy, and the steady state of `qcoral-service` — compile their
//! tapes once per process instead of once per request.

use std::sync::{Arc, OnceLock};

use qcoral_constraints::{BulkTape, EvalTape, PathCondition};
use qcoral_icp::CompileCache;
use qcoral_mc::BulkPred;

/// Process-wide compiled-predicate cache, keyed by the path condition's
/// structural fingerprint (see
/// [`PathCondition::fingerprint`](qcoral_constraints::PathCondition::fingerprint)).
/// Shares the bounded [`CompileCache`] machinery with the HC4 tape
/// cache in `qcoral-icp`.
static PRED_CACHE: OnceLock<CompileCache<CompiledPred>> = OnceLock::new();

/// Cap on cached predicates; beyond it compilation still succeeds but
/// results are no longer retained (bounds memory on adversarial
/// workloads), mirroring the HC4 tape cache.
const PRED_CACHE_CAP: usize = 4096;

fn pred_cache() -> &'static CompileCache<CompiledPred> {
    PRED_CACHE.get_or_init(|| CompileCache::new_named(PRED_CACHE_CAP, "pred_cache"))
}

/// Cumulative `(hits, misses)` of the process-wide predicate cache.
/// Counters are monotone; callers wanting per-analysis numbers snapshot
/// before and after (exact when no other analysis runs concurrently in
/// the process).
pub fn pred_cache_stats() -> (u64, u64) {
    pred_cache().stats()
}

/// A factor predicate compiled for both evaluation styles: the scalar
/// row tape and the register-allocated columnar bulk tape.
///
/// The two are compiled from the same hash-consed node pool, apply the
/// same `f64` operations in the same order per sample, and share the
/// scalar NaN/early-exit semantics — so the [`BulkPred`] contract
/// (columnar hit counts equal row-by-row hit counts, bit for bit) holds
/// by construction and is pinned by the workspace's equivalence suites.
#[derive(Clone, Debug)]
pub struct CompiledPred {
    scalar: EvalTape,
    bulk: BulkTape,
}

impl CompiledPred {
    /// Compiles both tapes for a conjunction. Linear in DAG size.
    pub fn compile(pc: &PathCondition) -> CompiledPred {
        let scalar = EvalTape::compile(pc);
        let bulk = BulkTape::compile(&scalar);
        CompiledPred { scalar, bulk }
    }

    /// Compiles through the process-wide predicate cache: structurally
    /// equal conditions share one compiled predicate across factors,
    /// path conditions, analyses, threads and service requests.
    pub fn compile_cached(pc: &PathCondition) -> Arc<CompiledPred> {
        // Fingerprinting happens outside the cache lock, like the
        // compilation itself: both can be heavy.
        let key = pc.fingerprint();
        pred_cache().get_or_compile(key, || CompiledPred::compile(pc))
    }

    /// The scalar row tape.
    pub fn scalar(&self) -> &EvalTape {
        &self.scalar
    }

    /// The columnar bulk tape.
    pub fn bulk(&self) -> &BulkTape {
        &self.bulk
    }
}

impl BulkPred for CompiledPred {
    fn holds(&self, point: &[f64]) -> bool {
        self.scalar.holds(point)
    }

    fn columnar(&self) -> bool {
        true
    }

    fn count_hits(&self, cols: &[Vec<f64>], n: usize) -> u64 {
        self.bulk.count_hits(cols, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::parse::parse_system;
    use qcoral_interval::{Interval, IntervalBox};
    use qcoral_mc::{hit_or_miss_plan, hit_or_miss_plan_bulk, SamplePlan, UsageProfile};

    fn pc_of(src: &str) -> PathCondition {
        parse_system(src).unwrap().constraint_set.pcs()[0].clone()
    }

    #[test]
    fn bulk_estimates_match_scalar_bit_for_bit() {
        let pc = pc_of(
            "var x in [-1, 1]; var y in [-1, 1];
             pc sin(3 * x + y) > 0.25 && x * x + y * y <= 0.8;",
        );
        let pred = CompiledPred::compile(&pc);
        let boxed: IntervalBox = [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect();
        let profile = UsageProfile::uniform(2);
        for n in [1u64, 4_095, 4_096, 12_345] {
            let scalar = hit_or_miss_plan(
                &|p: &[f64]| pred.scalar().holds(p),
                &boxed,
                &profile,
                n,
                SamplePlan::serial(5),
            );
            let bulk = hit_or_miss_plan_bulk(&pred, &boxed, &profile, n, SamplePlan::serial(5));
            assert_eq!(scalar, bulk, "n = {n}");
        }
    }

    #[test]
    fn cache_shares_structurally_equal_predicates() {
        // Unique constants keep this test's keys disjoint from others.
        let a = pc_of("var x in [0, 1]; pc sin(x * 0.5417261) > 0.1234987;");
        let b = pc_of("var x in [0, 1]; pc sin(x * 0.5417261) > 0.1234987;");
        let (h0, m0) = pred_cache_stats();
        let pa = CompiledPred::compile_cached(&a);
        let pb = CompiledPred::compile_cached(&b);
        assert!(Arc::ptr_eq(&pa, &pb), "separate parses share one tape");
        let (h1, m1) = pred_cache_stats();
        assert!(m1 > m0, "first compile misses");
        assert!(h1 > h0, "second compile hits");
    }
}
