//! Parser for the MiniJ language.
//!
//! Reuses the lexer of `qcoral-constraints` and a *typed* precedence
//! climber: one grammar covers both arithmetic and boolean expressions,
//! with kinds checked as operators are applied (`&&` needs booleans, `<`
//! needs numbers, …), so conditions like `(x + 1) * y < 2 && !(y > 0)`
//! parse without backtracking.
//!
//! ```text
//! program  := "program" IDENT "(" param ("," param)* ")" block
//! param    := IDENT "in" "[" num "," num "]"
//! block    := "{" stmt* "}"
//! stmt     := "double" IDENT "=" expr ";"
//!           | IDENT "=" expr ";"
//!           | "if" "(" expr ")" block ("else" (block | if-stmt))?
//!           | "while" "(" expr ")" block
//!           | "check" "(" expr ")" ";"        # sugar: if (c) { target(); }
//!           | "target" "(" ")" ";"
//!           | "return" ";"
//! ```

use std::collections::HashMap;

use qcoral_constraints::lexer::{ParseError, Pos, Sym, Token, TokenStream};
use qcoral_constraints::parse::apply_function;
use qcoral_constraints::{Expr, RelOp, VarId};

use crate::ast::{Cond, Program, Stmt};

const KEYWORDS: &[&str] = &[
    "program", "double", "if", "else", "while", "target", "return", "check", "in",
];

/// Parses a MiniJ program.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information for syntax errors,
/// kind mismatches (e.g. `&&` on numbers), unknown identifiers, duplicate
/// declarations, or invalid parameter bounds.
///
/// # Example
///
/// ```
/// use qcoral_symexec::parse_program;
///
/// let p = parse_program(
///     "program demo(x in [0, 1]) {
///        double y = x * 2;
///        if (y > 1 && sin(x) < 0.9) { target(); }
///      }",
/// ).unwrap();
/// assert_eq!(p.params.len(), 1);
/// assert_eq!(p.locals.len(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut p = ProgParser {
        ts: TokenStream::new(src)?,
        slots: HashMap::new(),
        params: Vec::new(),
        locals: Vec::new(),
    };
    p.program()
}

/// Expression values during typed parsing: a number or a boolean.
enum PExpr {
    Num(Expr),
    Bool(Cond),
}

impl PExpr {
    fn expect_num(self, pos: Pos) -> Result<Expr, ParseError> {
        match self {
            PExpr::Num(e) => Ok(e),
            PExpr::Bool(_) => Err(ParseError::new(
                "expected a numeric expression, found a boolean one",
                pos,
            )),
        }
    }

    fn expect_bool(self, pos: Pos) -> Result<Cond, ParseError> {
        match self {
            PExpr::Bool(c) => Ok(c),
            PExpr::Num(_) => Err(ParseError::new(
                "expected a boolean condition, found a numeric expression",
                pos,
            )),
        }
    }
}

struct ProgParser {
    ts: TokenStream,
    slots: HashMap<String, usize>,
    params: Vec<(String, f64, f64)>,
    locals: Vec<String>,
}

impl ProgParser {
    fn program(&mut self) -> Result<Program, ParseError> {
        if !self.ts.eat_kw("program") {
            return Err(ParseError::new("expected `program`", self.ts.pos()));
        }
        let name = self.ident()?;
        self.ts.expect_sym(Sym::LParen)?;
        if !self.ts.eat_sym(Sym::RParen) {
            loop {
                let pos = self.ts.pos();
                let pname = self.ident()?;
                if !self.ts.eat_kw("in") {
                    return Err(ParseError::new(
                        "expected `in` after parameter name",
                        self.ts.pos(),
                    ));
                }
                self.ts.expect_sym(Sym::LBracket)?;
                let lo = self.ts.expect_num()?;
                self.ts.expect_sym(Sym::Comma)?;
                let hi = self.ts.expect_num()?;
                self.ts.expect_sym(Sym::RBracket)?;
                if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                    return Err(ParseError::new(
                        format!("invalid bounds [{lo}, {hi}] for parameter `{pname}`"),
                        pos,
                    ));
                }
                self.declare(&pname, pos, true)?;
                self.params.push((pname, lo, hi));
                if !self.ts.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.ts.expect_sym(Sym::RParen)?;
        }
        let body = self.block()?;
        if !self.ts.at_eof() {
            return Err(ParseError::new(
                format!("trailing input after program body: {}", self.ts.peek()),
                self.ts.pos(),
            ));
        }
        Ok(Program {
            name,
            params: std::mem::take(&mut self.params),
            locals: std::mem::take(&mut self.locals),
            body,
        })
    }

    fn declare(&mut self, name: &str, pos: Pos, _is_param: bool) -> Result<usize, ParseError> {
        if KEYWORDS.contains(&name) {
            return Err(ParseError::new(
                format!("`{name}` is a keyword and cannot name a variable"),
                pos,
            ));
        }
        if self.slots.contains_key(name) {
            return Err(ParseError::new(
                format!("duplicate declaration of `{name}`"),
                pos,
            ));
        }
        let slot = self.slots.len();
        self.slots.insert(name.to_owned(), slot);
        Ok(slot)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.ts.expect_ident()
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.ts.expect_sym(Sym::LBrace)?;
        let mut out = Vec::new();
        while !self.ts.eat_sym(Sym::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.ts.pos();
        if self.ts.eat_kw("double") {
            let name = self.ident()?;
            self.ts.expect_sym(Sym::Assign)?;
            let expr = self.num_expr()?;
            self.ts.expect_sym(Sym::Semi)?;
            let slot = self.declare(&name, pos, false)?;
            self.locals.push(name);
            return Ok(Stmt::Assign { slot, expr });
        }
        if self.ts.eat_kw("if") {
            return self.if_stmt();
        }
        if self.ts.eat_kw("while") {
            self.ts.expect_sym(Sym::LParen)?;
            let cond = self.bool_expr()?;
            self.ts.expect_sym(Sym::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.ts.eat_kw("target") {
            self.ts.expect_sym(Sym::LParen)?;
            self.ts.expect_sym(Sym::RParen)?;
            self.ts.expect_sym(Sym::Semi)?;
            return Ok(Stmt::Target);
        }
        if self.ts.eat_kw("check") {
            self.ts.expect_sym(Sym::LParen)?;
            let cond = self.bool_expr()?;
            self.ts.expect_sym(Sym::RParen)?;
            self.ts.expect_sym(Sym::Semi)?;
            return Ok(Stmt::If {
                cond,
                then_branch: vec![Stmt::Target],
                else_branch: vec![],
            });
        }
        if self.ts.eat_kw("return") {
            self.ts.expect_sym(Sym::Semi)?;
            return Ok(Stmt::Return);
        }
        // Assignment to an existing variable.
        match self.ts.peek().clone() {
            Token::Ident(name) => {
                self.ts.next();
                let slot = *self.slots.get(&name).ok_or_else(|| {
                    ParseError::new(
                        format!("unknown variable `{name}` (declare with `double {name} = …;`)"),
                        pos,
                    )
                })?;
                self.ts.expect_sym(Sym::Assign)?;
                let expr = self.num_expr()?;
                self.ts.expect_sym(Sym::Semi)?;
                Ok(Stmt::Assign { slot, expr })
            }
            t => Err(ParseError::new(
                format!("expected statement, found {t}"),
                pos,
            )),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.ts.expect_sym(Sym::LParen)?;
        let cond = self.bool_expr()?;
        self.ts.expect_sym(Sym::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if self.ts.eat_kw("else") {
            if self.ts.eat_kw("if") {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn num_expr(&mut self) -> Result<Expr, ParseError> {
        let pos = self.ts.pos();
        self.or_expr()?.expect_num(pos)
    }

    fn bool_expr(&mut self) -> Result<Cond, ParseError> {
        let pos = self.ts.pos();
        self.or_expr()?.expect_bool(pos)
    }

    // ---- typed precedence climbing ----

    fn or_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let mut acc = self.and_expr()?;
        while self.ts.eat_sym(Sym::OrOr) {
            let lhs = acc.expect_bool(pos)?;
            let rpos = self.ts.pos();
            let rhs = self.and_expr()?.expect_bool(rpos)?;
            acc = PExpr::Bool(Cond::Or(Box::new(lhs), Box::new(rhs)));
        }
        Ok(acc)
    }

    fn and_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let mut acc = self.cmp_expr()?;
        while self.ts.eat_sym(Sym::AndAnd) {
            let lhs = acc.expect_bool(pos)?;
            let rpos = self.ts.pos();
            let rhs = self.cmp_expr()?.expect_bool(rpos)?;
            acc = PExpr::Bool(Cond::And(Box::new(lhs), Box::new(rhs)));
        }
        Ok(acc)
    }

    fn cmp_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let lhs = self.add_expr()?;
        let op = match self.ts.peek() {
            Token::Sym(Sym::Lt) => Some(RelOp::Lt),
            Token::Sym(Sym::Le) => Some(RelOp::Le),
            Token::Sym(Sym::Gt) => Some(RelOp::Gt),
            Token::Sym(Sym::Ge) => Some(RelOp::Ge),
            Token::Sym(Sym::EqEq) => Some(RelOp::Eq),
            Token::Sym(Sym::Ne) => Some(RelOp::Ne),
            _ => None,
        };
        let Some(op) = op else { return Ok(lhs) };
        self.ts.next();
        let l = lhs.expect_num(pos)?;
        let rpos = self.ts.pos();
        let r = self.add_expr()?.expect_num(rpos)?;
        Ok(PExpr::Bool(Cond::Cmp(l, op, r)))
    }

    fn add_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let mut acc = self.mul_expr()?;
        loop {
            if self.ts.eat_sym(Sym::Plus) {
                let l = acc.expect_num(pos)?;
                let rpos = self.ts.pos();
                let r = self.mul_expr()?.expect_num(rpos)?;
                acc = PExpr::Num(l.add(r));
            } else if self.ts.eat_sym(Sym::Minus) {
                let l = acc.expect_num(pos)?;
                let rpos = self.ts.pos();
                let r = self.mul_expr()?.expect_num(rpos)?;
                acc = PExpr::Num(l.sub(r));
            } else {
                return Ok(acc);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let mut acc = self.prefix_expr()?;
        loop {
            if self.ts.eat_sym(Sym::Star) {
                let l = acc.expect_num(pos)?;
                let rpos = self.ts.pos();
                let r = self.prefix_expr()?.expect_num(rpos)?;
                acc = PExpr::Num(l.mul(r));
            } else if self.ts.eat_sym(Sym::Slash) {
                let l = acc.expect_num(pos)?;
                let rpos = self.ts.pos();
                let r = self.prefix_expr()?.expect_num(rpos)?;
                acc = PExpr::Num(l.div(r));
            } else {
                return Ok(acc);
            }
        }
    }

    fn prefix_expr(&mut self) -> Result<PExpr, ParseError> {
        if self.ts.eat_sym(Sym::Minus) {
            let pos = self.ts.pos();
            let e = self.prefix_expr()?.expect_num(pos)?;
            return Ok(PExpr::Num(e.neg()));
        }
        if self.ts.eat_sym(Sym::Plus) {
            return self.prefix_expr();
        }
        if self.ts.eat_sym(Sym::Not) {
            let pos = self.ts.pos();
            let c = self.prefix_expr()?.expect_bool(pos)?;
            return Ok(PExpr::Bool(Cond::Not(Box::new(c))));
        }
        self.pow_expr()
    }

    fn pow_expr(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        let base = self.primary()?;
        if self.ts.eat_sym(Sym::Caret) {
            let b = base.expect_num(pos)?;
            let rpos = self.ts.pos();
            let e = self.prefix_expr()?.expect_num(rpos)?;
            return Ok(PExpr::Num(b.pow(e)));
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<PExpr, ParseError> {
        let pos = self.ts.pos();
        match self.ts.next() {
            Token::Num(v) => Ok(PExpr::Num(Expr::constant(v))),
            Token::Sym(Sym::LParen) => {
                let inner = self.or_expr()?;
                self.ts.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if self.ts.eat_sym(Sym::LParen) {
                    let mut args = Vec::new();
                    if !self.ts.eat_sym(Sym::RParen) {
                        loop {
                            let apos = self.ts.pos();
                            args.push(self.or_expr()?.expect_num(apos)?);
                            if !self.ts.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                        self.ts.expect_sym(Sym::RParen)?;
                    }
                    return Ok(PExpr::Num(apply_function(&name, args, pos)?));
                }
                if let Some(&slot) = self.slots.get(&name) {
                    return Ok(PExpr::Num(Expr::var(VarId(slot as u32))));
                }
                match name.as_str() {
                    "pi" => Ok(PExpr::Num(Expr::constant(std::f64::consts::PI))),
                    "e" => Ok(PExpr::Num(Expr::constant(std::f64::consts::E))),
                    _ => Err(ParseError::new(format!("unknown variable `{name}`"), pos)),
                }
            }
            t => Err(ParseError::new(
                format!("expected expression, found {t}"),
                pos,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1() {
        let p = parse_program(
            "program monitor(altitude in [0, 20000],
                             headFlap in [-10, 10],
                             tailFlap in [-10, 10]) {
               if (altitude <= 9000) {
                 if (sin(headFlap * tailFlap) > 0.25) { target(); }
               } else {
                 target();
               }
             }",
        )
        .unwrap();
        assert_eq!(p.name, "monitor");
        assert_eq!(p.params.len(), 3);
        assert_eq!(p.params[0], ("altitude".into(), 0.0, 20000.0));
        assert!(p.locals.is_empty());
        assert_eq!(p.body.len(), 1);
    }

    #[test]
    fn typed_conditions() {
        let p = parse_program(
            "program t(x in [0, 1], y in [0, 1]) {
               if ((x + 1) * y < 2 && !(y > 0) || x == y) { target(); }
             }",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::If { cond, .. } => {
                assert!(matches!(cond, Cond::Or(..)));
            }
            s => panic!("expected if, got {s:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let p = parse_program(
            "program t(x in [0, 3]) {
               if (x < 1) { return; }
               else if (x < 2) { target(); }
               else { return; }
             }",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::If { else_branch, .. } => {
                assert_eq!(else_branch.len(), 1);
                assert!(matches!(else_branch[0], Stmt::If { .. }));
            }
            s => panic!("expected if, got {s:?}"),
        }
    }

    #[test]
    fn check_sugar() {
        let p = parse_program("program t(x in [0, 1]) { check(x > 0.5); }").unwrap();
        match &p.body[0] {
            Stmt::If { then_branch, .. } => assert_eq!(then_branch[0], Stmt::Target),
            s => panic!("expected desugared if, got {s:?}"),
        }
    }

    #[test]
    fn locals_get_slots_after_params() {
        let p = parse_program(
            "program t(a in [0, 1]) {
               double b = a + 1;
               b = b * 2;
             }",
        )
        .unwrap();
        assert_eq!(p.locals, vec!["b".to_owned()]);
        assert_eq!(
            p.body[0],
            Stmt::Assign {
                slot: 1,
                expr: Expr::var(VarId(0)).add(Expr::constant(1.0)),
            }
        );
    }

    #[test]
    fn error_kind_mismatch() {
        let err = parse_program("program t(x in [0,1]) { if (x + 1) { target(); } }").unwrap_err();
        assert!(err.msg.contains("boolean"), "{err}");
        let err2 = parse_program("program t(x in [0,1]) { double y = x > 0; }").unwrap_err();
        assert!(err2.msg.contains("numeric"), "{err2}");
    }

    #[test]
    fn error_unknown_variable() {
        let err = parse_program("program t(x in [0,1]) { y = 1; }").unwrap_err();
        assert!(err.msg.contains("unknown variable `y`"), "{err}");
    }

    #[test]
    fn error_duplicate_declaration() {
        let err = parse_program("program t(x in [0,1]) { double x = 1; }").unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn error_keyword_as_variable() {
        let err = parse_program("program t(if in [0,1]) { }").unwrap_err();
        assert!(err.msg.contains("keyword"), "{err}");
    }

    #[test]
    fn error_bad_bounds() {
        let err = parse_program("program t(x in [2, 1]) { }").unwrap_err();
        assert!(err.msg.contains("invalid bounds"), "{err}");
    }

    #[test]
    fn not_binds_to_parenthesized_condition() {
        let p = parse_program("program t(x in [0,1]) { if (!(x < 0.5)) { target(); } }").unwrap();
        match &p.body[0] {
            Stmt::If { cond, .. } => assert!(matches!(cond, Cond::Not(_))),
            s => panic!("expected if, got {s:?}"),
        }
    }

    #[test]
    fn no_params_program() {
        let p = parse_program("program t() { target(); }").unwrap();
        assert!(p.params.is_empty());
    }
}
