//! Flattening of structured MiniJ programs into a jump-based instruction
//! form, shared by the concrete interpreter and the symbolic executor.
//! Loops become backward jumps, so bounded symbolic exploration only needs
//! a branch-decision budget rather than structural recursion.

use qcoral_constraints::Expr;

use crate::ast::{Cond, Program, Stmt};

/// One flat instruction. `ip` denotes instruction indices.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// Store the value of `expr` into `slot`.
    Assign {
        /// Destination frame slot.
        slot: usize,
        /// Right-hand side.
        expr: Expr,
    },
    /// Evaluate the condition: fall through when true, jump to `otherwise`
    /// when false.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Jump target when the condition is false.
        otherwise: usize,
    },
    /// Unconditional jump.
    Jump(usize),
    /// Target event: record and terminate the path.
    Target,
    /// Terminate the path without the event.
    Return,
}

/// A program flattened to instructions.
#[derive(Clone, Debug)]
pub struct FlatProgram {
    /// The instruction sequence; execution starts at 0 and falling off the
    /// end is an implicit [`Instr::Return`].
    pub instrs: Vec<Instr>,
    /// Number of parameters (frame slots `0..nparams` are inputs).
    pub nparams: usize,
    /// Total frame size.
    pub frame_size: usize,
}

/// Flattens a structured program.
pub fn flatten(prog: &Program) -> FlatProgram {
    let mut instrs = Vec::new();
    emit_block(&prog.body, &mut instrs);
    FlatProgram {
        instrs,
        nparams: prog.params.len(),
        frame_size: prog.frame_size(),
    }
}

fn emit_block(stmts: &[Stmt], out: &mut Vec<Instr>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { slot, expr } => out.push(Instr::Assign {
                slot: *slot,
                expr: expr.clone(),
            }),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch_at = out.len();
                out.push(Instr::Jump(usize::MAX)); // placeholder
                emit_block(then_branch, out);
                if else_branch.is_empty() {
                    let end = out.len();
                    out[branch_at] = Instr::Branch {
                        cond: cond.clone(),
                        otherwise: end,
                    };
                } else {
                    let jump_at = out.len();
                    out.push(Instr::Jump(usize::MAX)); // placeholder over else
                    let else_start = out.len();
                    emit_block(else_branch, out);
                    let end = out.len();
                    out[branch_at] = Instr::Branch {
                        cond: cond.clone(),
                        otherwise: else_start,
                    };
                    out[jump_at] = Instr::Jump(end);
                }
            }
            Stmt::While { cond, body } => {
                let head = out.len();
                out.push(Instr::Jump(usize::MAX)); // placeholder
                emit_block(body, out);
                out.push(Instr::Jump(head));
                let end = out.len();
                out[head] = Instr::Branch {
                    cond: cond.clone(),
                    otherwise: end,
                };
            }
            Stmt::Target => out.push(Instr::Target),
            Stmt::Return => out.push(Instr::Return),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::{RelOp, VarId};

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn cmp(op: RelOp, rhs: f64) -> Cond {
        Cond::Cmp(x(), op, Expr::constant(rhs))
    }

    #[test]
    fn flatten_if_else() {
        let p = Program {
            name: "t".into(),
            params: vec![("x".into(), 0.0, 1.0)],
            locals: vec![],
            body: vec![Stmt::If {
                cond: cmp(RelOp::Gt, 0.5),
                then_branch: vec![Stmt::Target],
                else_branch: vec![Stmt::Return],
            }],
        };
        let f = flatten(&p);
        assert_eq!(f.instrs.len(), 4);
        assert!(matches!(f.instrs[0], Instr::Branch { otherwise: 3, .. }));
        assert!(matches!(f.instrs[1], Instr::Target));
        assert!(matches!(f.instrs[2], Instr::Jump(4)));
        assert!(matches!(f.instrs[3], Instr::Return));
    }

    #[test]
    fn flatten_if_without_else() {
        let p = Program {
            name: "t".into(),
            params: vec![("x".into(), 0.0, 1.0)],
            locals: vec![],
            body: vec![
                Stmt::If {
                    cond: cmp(RelOp::Gt, 0.5),
                    then_branch: vec![Stmt::Target],
                    else_branch: vec![],
                },
                Stmt::Return,
            ],
        };
        let f = flatten(&p);
        assert!(matches!(f.instrs[0], Instr::Branch { otherwise: 2, .. }));
        assert!(matches!(f.instrs[1], Instr::Target));
        assert!(matches!(f.instrs[2], Instr::Return));
    }

    #[test]
    fn flatten_while_loops_back() {
        let p = Program {
            name: "t".into(),
            params: vec![("x".into(), 0.0, 1.0)],
            locals: vec!["i".into()],
            body: vec![Stmt::While {
                cond: Cond::Cmp(Expr::var(VarId(1)), RelOp::Lt, Expr::constant(3.0)),
                body: vec![Stmt::Assign {
                    slot: 1,
                    expr: Expr::var(VarId(1)).add(Expr::constant(1.0)),
                }],
            }],
        };
        let f = flatten(&p);
        // Branch(→3), Assign, Jump(0)
        assert!(matches!(f.instrs[0], Instr::Branch { otherwise: 3, .. }));
        assert!(matches!(f.instrs[1], Instr::Assign { .. }));
        assert!(matches!(f.instrs[2], Instr::Jump(0)));
        assert_eq!(f.frame_size, 2);
    }
}
