//! The bounded symbolic executor.
//!
//! Depth-first exploration over the flattened program: program state maps
//! frame slots to expressions over the *input* variables; each non-trivial
//! branch decision conjoins atoms onto the path condition. Branching uses
//! Shannon expansion of the condition's boolean structure, which keeps
//! sibling cases pairwise disjoint — the property the disjunction
//! composition rule (paper §4.1) depends on.
//!
//! Mirroring SPF as described in §3.1:
//!
//! * exploration is bounded by a branch-decision budget
//!   ([`SymConfig::max_depth`], paper default 50);
//! * paths cut by the bound are collected separately
//!   ([`SymResult::bound_hit`]) so their probability mass can bound the
//!   confidence of the result;
//! * infeasible branches are pruned — here with the ICP contractor.
//!
//! Branch decisions whose condition folds to a constant (loop counters,
//! etc.) consume no budget and add nothing to the path condition.
//!
//! # NaN caveat
//!
//! Path constraints use mathematical semantics: an atom and its negation
//! are both false on inputs where a sub-expression is undefined (NaN). A
//! concrete Java-style run of `if (!(sqrt(x) >= 0))` on `x < 0` takes the
//! then-branch, while no collected PC covers that input. Subjects should
//! guard partial operations explicitly (as the paper's do).

use std::sync::Arc;

use qcoral_constraints::{Atom, ConstraintSet, Domain, Expr, PathCondition};
use qcoral_icp::{domain_box, maybe_satisfiable};
use qcoral_interval::IntervalBox;

use crate::ast::{Cond, Program};
use crate::flat::{flatten, FlatProgram, Instr};

/// Exploration limits and toggles.
#[derive(Clone, Debug)]
pub struct SymConfig {
    /// Maximum non-trivial branch decisions per path (the paper's SPF
    /// search bound; §6.3 uses 50).
    pub max_depth: usize,
    /// Global cap on completed paths; exploration beyond it is recorded as
    /// bound-hit.
    pub max_paths: usize,
    /// Prune branches the ICP contractor proves infeasible.
    pub prune_infeasible: bool,
}

impl Default for SymConfig {
    /// Paper-style defaults: depth 50, pruning on.
    fn default() -> SymConfig {
        SymConfig {
            max_depth: 50,
            max_paths: 100_000,
            prune_infeasible: true,
        }
    }
}

/// The product of symbolic execution: the paper's `PCT`/`PCF` split plus
/// the bound-hit set of §3.1.
#[derive(Clone, Debug)]
pub struct SymResult {
    /// The bounded input domain (from the parameter declarations).
    pub domain: Domain,
    /// Path conditions of complete paths that reached `target();`.
    pub target: ConstraintSet,
    /// Path conditions of complete paths that terminated without the
    /// event.
    pub no_target: ConstraintSet,
    /// Path conditions cut off by the depth or path budget; their
    /// probability mass bounds the result's confidence.
    pub bound_hit: ConstraintSet,
    /// All complete paths in bounded depth-first exploration order, each
    /// tagged with whether it reached the target. Used by protocols that
    /// select "the first N% of PCs in DFS order" (paper §6.3).
    pub complete: Vec<(PathCondition, bool)>,
    /// Number of complete paths explored.
    pub paths: usize,
    /// Number of branches pruned as infeasible.
    pub pruned: usize,
}

struct State {
    ip: usize,
    store: Vec<Arc<Expr>>,
    pc: Vec<Atom>,
    depth: usize,
}

/// Symbolically executes `prog`, collecting the disjoint path conditions
/// that reach the target event.
pub fn symbolic_execute(prog: &Program, cfg: &SymConfig) -> SymResult {
    let flat = flatten(prog);
    let domain = prog.domain();
    let dbox = domain_box(&domain);
    let mut result = SymResult {
        domain,
        target: ConstraintSet::new(),
        no_target: ConstraintSet::new(),
        bound_hit: ConstraintSet::new(),
        complete: Vec::new(),
        paths: 0,
        pruned: 0,
    };

    let mut store: Vec<Arc<Expr>> = Vec::with_capacity(flat.frame_size);
    for i in 0..flat.nparams {
        store.push(Arc::new(Expr::var(qcoral_constraints::VarId(i as u32))));
    }
    for _ in flat.nparams..flat.frame_size {
        store.push(Arc::new(Expr::constant(0.0)));
    }
    let mut stack = vec![State {
        ip: 0,
        store,
        pc: Vec::new(),
        depth: 0,
    }];

    while let Some(state) = stack.pop() {
        if result.paths >= cfg.max_paths {
            // Budget exhausted: everything still queued is unexplored.
            result.bound_hit.push(PathCondition::from_atoms(state.pc));
            continue;
        }
        step(&flat, state, cfg, &dbox, &mut stack, &mut result);
    }
    result
}

/// Runs one state forward until it branches symbolically or terminates.
fn step(
    flat: &FlatProgram,
    mut state: State,
    cfg: &SymConfig,
    dbox: &IntervalBox,
    stack: &mut Vec<State>,
    result: &mut SymResult,
) {
    loop {
        if state.ip >= flat.instrs.len() {
            let pc = PathCondition::from_atoms(state.pc);
            result.no_target.push(pc.clone());
            result.complete.push((pc, false));
            result.paths += 1;
            return;
        }
        match &flat.instrs[state.ip] {
            Instr::Assign { slot, expr } => {
                let substituted = expr.substitute(&state.store);
                state.store[*slot] = Arc::new(substituted.fold());
                state.ip += 1;
            }
            Instr::Jump(t) => state.ip = *t,
            Instr::Target => {
                let pc = PathCondition::from_atoms(state.pc);
                result.target.push(pc.clone());
                result.complete.push((pc, true));
                result.paths += 1;
                return;
            }
            Instr::Return => {
                let pc = PathCondition::from_atoms(state.pc);
                result.no_target.push(pc.clone());
                result.complete.push((pc, false));
                result.paths += 1;
                return;
            }
            Instr::Branch { cond, otherwise } => {
                let otherwise = *otherwise;
                let cases = split_cond(cond, &state.store);
                // A branch is "trivial" if it folded to a single case with
                // no atoms: it costs no depth budget.
                let symbolic = cases.iter().any(|(atoms, _)| !atoms.is_empty());
                if symbolic && state.depth >= cfg.max_depth {
                    result.bound_hit.push(PathCondition::from_atoms(state.pc));
                    return;
                }
                // Push in reverse so the first case is explored first
                // (bounded depth-first order, like the paper's protocol).
                let mut pushed = 0;
                for (atoms, outcome) in cases.into_iter().rev() {
                    let mut pc = state.pc.clone();
                    pc.extend(atoms.iter().cloned());
                    if cfg.prune_infeasible
                        && !atoms.is_empty()
                        && !maybe_satisfiable(&PathCondition::from_atoms(pc.clone()), dbox)
                    {
                        result.pruned += 1;
                        continue;
                    }
                    stack.push(State {
                        ip: if outcome { state.ip + 1 } else { otherwise },
                        store: state.store.clone(),
                        pc,
                        depth: state.depth + usize::from(!atoms.is_empty()),
                    });
                    pushed += 1;
                }
                if pushed == 0 {
                    // All branches infeasible: the path itself is
                    // infeasible (possible only with NaN-producing
                    // guards); drop it.
                    result.paths += 1;
                }
                return;
            }
        }
    }
}

/// Shannon expansion of a condition against the current symbolic store:
/// returns pairwise-disjoint cases `(atoms over inputs, outcome)`.
/// Conditions that fold to constants yield a single empty-atom case.
fn split_cond(cond: &Cond, store: &[Arc<Expr>]) -> Vec<(Vec<Atom>, bool)> {
    match cond {
        Cond::Cmp(lhs, op, rhs) => {
            let l = lhs.substitute(store).fold();
            let r = rhs.substitute(store).fold();
            if let (Expr::Const(a), Expr::Const(b)) = (&l, &r) {
                return vec![(Vec::new(), op.apply(*a, *b))];
            }
            let atom = Atom::new(l, *op, r);
            let neg = atom.negate();
            vec![(vec![atom], true), (vec![neg], false)]
        }
        Cond::Not(c) => split_cond(c, store)
            .into_iter()
            .map(|(atoms, b)| (atoms, !b))
            .collect(),
        Cond::And(a, b) => {
            let mut out = Vec::new();
            for (aa, oa) in split_cond(a, store) {
                if !oa {
                    out.push((aa, false));
                } else {
                    for (bb, ob) in split_cond(b, store) {
                        let mut atoms = aa.clone();
                        atoms.extend(bb);
                        out.push((atoms, ob));
                    }
                }
            }
            out
        }
        Cond::Or(a, b) => {
            let mut out = Vec::new();
            for (aa, oa) in split_cond(a, store) {
                if oa {
                    out.push((aa, true));
                } else {
                    for (bb, ob) in split_cond(b, store) {
                        let mut atoms = aa.clone();
                        atoms.extend(bb);
                        out.push((atoms, ob));
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn exec(src: &str) -> SymResult {
        symbolic_execute(&parse_program(src).unwrap(), &SymConfig::default())
    }

    #[test]
    fn listing1_produces_paper_pcs() {
        let r = exec(
            "program monitor(altitude in [0, 20000],
                             headFlap in [-10, 10],
                             tailFlap in [-10, 10]) {
               if (altitude <= 9000) {
                 if (sin(headFlap * tailFlap) > 0.25) { target(); }
               } else {
                 target();
               }
             }",
        );
        // PCT1: altitude > 9000 ; PCT2: altitude ≤ 9000 ∧ sin(h·t) > 0.25.
        assert_eq!(r.target.len(), 2);
        assert_eq!(r.no_target.len(), 1);
        assert!(r.bound_hit.is_empty());
        // Disjointness + coverage on sampled points.
        let ok = |alt: f64, h: f64, t: f64| {
            let sat: usize = r
                .target
                .pcs()
                .iter()
                .chain(r.no_target.pcs())
                .filter(|pc| pc.holds(&[alt, h, t]))
                .count();
            sat == 1
        };
        assert!(ok(9500.0, 0.0, 0.0));
        assert!(ok(100.0, 1.0, 1.5));
        assert!(ok(100.0, 0.0, 0.0));
    }

    #[test]
    fn concrete_loops_fold_away() {
        let r = exec(
            "program p(x in [0, 10]) {
               double acc = 0;
               double i = 0;
               while (i < 4) {
                 acc = acc + x;
                 i = i + 1;
               }
               if (acc > 20) { target(); }
             }",
        );
        // The loop condition is concrete: exactly two complete paths, and
        // the loop consumed no depth budget.
        assert_eq!(r.target.len(), 1);
        assert_eq!(r.no_target.len(), 1);
        assert!(r.bound_hit.is_empty());
        // Target PC is 4x > 20, i.e. x > 5.
        assert!(r.target.pcs()[0].holds(&[5.5]));
        assert!(!r.target.pcs()[0].holds(&[4.5]));
    }

    #[test]
    fn symbolic_loop_hits_bound() {
        let cfg = SymConfig {
            max_depth: 5,
            ..SymConfig::default()
        };
        let prog = parse_program(
            "program p(x in [0.01, 1]) {
               double acc = 0;
               while (acc < 1) {
                 acc = acc + x;
               }
               target();
             }",
        )
        .unwrap();
        let r = symbolic_execute(&prog, &cfg);
        // Some paths complete (large x), the deep ones hit the bound.
        assert!(!r.target.is_empty());
        assert!(!r.bound_hit.is_empty());
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        let r = exec(
            "program p(x in [0, 1]) {
               if (x > 0.5) {
                 if (x < 0.2) { target(); }
               }
             }",
        );
        assert!(r.target.is_empty());
        assert!(r.pruned >= 1);
    }

    #[test]
    fn shannon_cases_are_disjoint_for_or() {
        let r = exec(
            "program p(x in [0, 1], y in [0, 1]) {
               if (x < 0.3 || y < 0.3) { target(); }
             }",
        );
        // Shannon expansion of `a || b`: {a}, {¬a ∧ b} — two target PCs.
        assert_eq!(r.target.len(), 2);
        // Exhaustive disjointness check on a grid.
        for i in 0..20 {
            for j in 0..20 {
                let p = [i as f64 / 20.0, j as f64 / 20.0];
                let n: usize = r.target.pcs().iter().filter(|pc| pc.holds(&p)).count();
                assert!(n <= 1, "point {p:?} satisfied {n} PCs");
            }
        }
    }

    #[test]
    fn store_substitution_tracks_dataflow() {
        let r = exec(
            "program p(x in [0, 2]) {
               double y = x * x;
               double z = y + 1;
               if (z > 2) { target(); }
             }",
        );
        assert_eq!(r.target.len(), 1);
        // Target iff x² + 1 > 2 ⇔ x > 1 on [0, 2].
        assert!(r.target.pcs()[0].holds(&[1.5]));
        assert!(!r.target.pcs()[0].holds(&[0.5]));
    }

    #[test]
    fn path_budget_moves_overflow_to_bound_hit() {
        let cfg = SymConfig {
            max_paths: 2,
            ..SymConfig::default()
        };
        let prog = parse_program(
            "program p(a in [0,1], b in [0,1], c in [0,1]) {
               if (a < 0.5) { }
               if (b < 0.5) { }
               if (c < 0.5) { target(); }
             }",
        )
        .unwrap();
        let r = symbolic_execute(&prog, &cfg);
        assert_eq!(r.paths, 2);
        assert!(!r.bound_hit.is_empty());
    }

    #[test]
    fn empty_program_is_one_no_target_path() {
        let r = exec("program p(x in [0, 1]) { }");
        assert_eq!(r.paths, 1);
        assert_eq!(r.no_target.len(), 1);
        assert!(r.no_target.pcs()[0].is_empty());
    }
}
