//! Abstract syntax of the MiniJ language.
//!
//! Program expressions reuse [`Expr`] from `qcoral-constraints`, but with
//! variables interpreted as *frame slots* (parameters first, then locals)
//! rather than input variables; the symbolic executor substitutes slot
//! contents to obtain expressions over the inputs.

use std::fmt;

use qcoral_constraints::{Domain, Expr, RelOp};

/// A boolean condition: comparisons combined with `&&`, `||`, `!`.
#[derive(Clone, Debug, PartialEq)]
pub enum Cond {
    /// A relational comparison of two arithmetic expressions (over frame
    /// slots).
    Cmp(Expr, RelOp, Expr),
    /// Conjunction (short-circuit order preserved for branching).
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

impl Cond {
    /// Evaluates the condition on a concrete frame. NaN comparisons are
    /// false (and their negations true), matching the constraint
    /// semantics.
    pub fn eval(&self, frame: &[f64]) -> bool {
        match self {
            Cond::Cmp(a, op, b) => op.apply(a.eval(frame), b.eval(frame)),
            Cond::And(a, b) => a.eval(frame) && b.eval(frame),
            Cond::Or(a, b) => a.eval(frame) || b.eval(frame),
            Cond::Not(c) => !c.eval(frame),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Cond::And(a, b) => write!(f, "({a}) && ({b})"),
            Cond::Or(a, b) => write!(f, "({a}) || ({b})"),
            Cond::Not(c) => write!(f, "!({c})"),
        }
    }
}

/// A MiniJ statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Assignment to a frame slot (also covers `double x = e;`
    /// declarations — the parser allocates the slot).
    Assign {
        /// Destination frame slot.
        slot: usize,
        /// Right-hand side over frame slots.
        expr: Expr,
    },
    /// Conditional with optional else branch.
    If {
        /// Branch condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// While loop (bounded during symbolic execution).
    While {
        /// Loop guard.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Marks the target event and terminates the path (the paper's
    /// `callSupervisor()`).
    Target,
    /// Terminates the path without the event.
    Return,
}

/// A parsed MiniJ program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name (diagnostic only).
    pub name: String,
    /// Input parameters with their bounded domains; parameter `i`
    /// occupies frame slot `i` and input variable `i`.
    pub params: Vec<(String, f64, f64)>,
    /// Local variable names; local `j` occupies frame slot
    /// `params.len() + j`. Locals start at 0.0.
    pub locals: Vec<String>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Total number of frame slots (parameters + locals).
    pub fn frame_size(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// The bounded input domain induced by the parameter declarations.
    ///
    /// # Panics
    ///
    /// Panics if parameter bounds are invalid (the parser already rejects
    /// this for parsed programs).
    pub fn domain(&self) -> Domain {
        let mut d = Domain::new();
        for (name, lo, hi) in &self.params {
            d.declare(name, *lo, *hi)
                .expect("parser guarantees valid, unique parameter bounds");
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_constraints::VarId;

    #[test]
    fn cond_eval_with_connectives() {
        let x = Expr::var(VarId(0));
        let c = Cond::And(
            Box::new(Cond::Cmp(x.clone(), RelOp::Gt, Expr::constant(0.0))),
            Box::new(Cond::Not(Box::new(Cond::Cmp(
                x.clone(),
                RelOp::Ge,
                Expr::constant(1.0),
            )))),
        );
        assert!(c.eval(&[0.5]));
        assert!(!c.eval(&[1.5]));
        assert!(!c.eval(&[-0.5]));
        let o = Cond::Or(
            Box::new(Cond::Cmp(x.clone(), RelOp::Lt, Expr::constant(0.0))),
            Box::new(Cond::Cmp(x, RelOp::Gt, Expr::constant(1.0))),
        );
        assert!(o.eval(&[-1.0]));
        assert!(o.eval(&[2.0]));
        assert!(!o.eval(&[0.5]));
    }

    #[test]
    fn nan_condition_negation() {
        let x = Expr::var(VarId(0));
        let c = Cond::Cmp(x.clone().sqrt(), RelOp::Ge, Expr::constant(0.0));
        assert!(!c.eval(&[-1.0]));
        // !(NaN >= 0) is true under eval (branch semantics), mirroring
        // Java where the comparison itself is false.
        assert!(Cond::Not(Box::new(c)).eval(&[-1.0]));
    }

    #[test]
    fn program_domain() {
        let p = Program {
            name: "t".into(),
            params: vec![("a".into(), 0.0, 1.0), ("b".into(), -5.0, 5.0)],
            locals: vec!["tmp".into()],
            body: vec![],
        };
        assert_eq!(p.frame_size(), 3);
        let d = p.domain();
        assert_eq!(d.len(), 2);
        assert_eq!(d.bounds(VarId(1)), (-5.0, 5.0));
    }
}
