//! Concrete interpreter for MiniJ programs.
//!
//! Used for differential validation of the symbolic executor: for any
//! concrete input, the interpreter hits the target if and only if the
//! input satisfies one of the symbolically collected target PCs (provided
//! the run stays within the exploration bound).

use crate::flat::{flatten, FlatProgram, Instr};
use crate::Program;

/// The result of a concrete run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The run executed `target();`.
    Target,
    /// The run terminated without the event.
    NoTarget,
    /// The run exceeded the step budget (diverging loop).
    StepLimit,
}

/// Executes `prog` on the given parameter values (locals start at 0).
/// `max_steps` bounds the number of executed instructions.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of parameters.
pub fn run(prog: &Program, inputs: &[f64], max_steps: u64) -> Outcome {
    run_flat(&flatten(prog), inputs, max_steps)
}

/// Executes an already-flattened program (cheaper when running many
/// inputs).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of parameters.
pub fn run_flat(flat: &FlatProgram, inputs: &[f64], max_steps: u64) -> Outcome {
    assert_eq!(
        inputs.len(),
        flat.nparams,
        "input arity mismatch: program has {} parameters",
        flat.nparams
    );
    let mut frame = vec![0.0f64; flat.frame_size];
    frame[..inputs.len()].copy_from_slice(inputs);
    let mut ip = 0usize;
    let mut steps = 0u64;
    while ip < flat.instrs.len() {
        steps += 1;
        if steps > max_steps {
            return Outcome::StepLimit;
        }
        match &flat.instrs[ip] {
            Instr::Assign { slot, expr } => {
                frame[*slot] = expr.eval(&frame);
                ip += 1;
            }
            Instr::Branch { cond, otherwise } => {
                if cond.eval(&frame) {
                    ip += 1;
                } else {
                    ip = *otherwise;
                }
            }
            Instr::Jump(t) => ip = *t,
            Instr::Target => return Outcome::Target,
            Instr::Return => return Outcome::NoTarget,
        }
    }
    Outcome::NoTarget
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn straight_line_target() {
        let p = parse_program("program p(x in [0, 1]) { target(); }").unwrap();
        assert_eq!(run(&p, &[0.5], 1000), Outcome::Target);
    }

    #[test]
    fn branch_both_ways() {
        let p = parse_program("program p(x in [0, 1]) { if (x > 0.5) { target(); } }").unwrap();
        assert_eq!(run(&p, &[0.7], 1000), Outcome::Target);
        assert_eq!(run(&p, &[0.3], 1000), Outcome::NoTarget);
    }

    #[test]
    fn locals_and_loop() {
        let p = parse_program(
            "program p(x in [0, 10]) {
               double acc = 0;
               double i = 0;
               while (i < 4) {
                 acc = acc + x;
                 i = i + 1;
               }
               if (acc > 20) { target(); }
             }",
        )
        .unwrap();
        // acc = 4x; target iff x > 5.
        assert_eq!(run(&p, &[6.0], 1000), Outcome::Target);
        assert_eq!(run(&p, &[4.0], 1000), Outcome::NoTarget);
    }

    #[test]
    fn step_limit_detects_divergence() {
        let p = parse_program("program p(x in [0, 1]) { while (x < 2) { x = x; } }").unwrap();
        assert_eq!(run(&p, &[0.5], 100), Outcome::StepLimit);
    }

    #[test]
    fn return_stops_early() {
        let p = parse_program("program p(x in [0, 1]) { return; target(); }").unwrap();
        assert_eq!(run(&p, &[0.5], 100), Outcome::NoTarget);
    }

    #[test]
    fn paper_listing1_semantics() {
        let p = parse_program(
            "program monitor(altitude in [0, 20000],
                             headFlap in [-10, 10],
                             tailFlap in [-10, 10]) {
               if (altitude <= 9000) {
                 if (sin(headFlap * tailFlap) > 0.25) { target(); }
               } else {
                 target();
               }
             }",
        )
        .unwrap();
        assert_eq!(run(&p, &[9500.0, 0.0, 0.0], 100), Outcome::Target);
        assert_eq!(run(&p, &[100.0, 0.0, 0.0], 100), Outcome::NoTarget);
        // sin(1 · π/2) = 1 > 0.25
        assert_eq!(
            run(&p, &[100.0, 1.0, std::f64::consts::FRAC_PI_2], 100),
            Outcome::Target
        );
    }
}
