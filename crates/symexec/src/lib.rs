//! Bounded symbolic execution of a small imperative language — the
//! reproduction's substitute for Symbolic PathFinder (SPF), the Java
//! bytecode engine the paper uses as its front end (§3, Figure 1).
//!
//! The output contract matches what the qCORAL analysis consumes: the set
//! of complete-path conditions that reach the *target event*, pairwise
//! disjoint by construction, plus (as the paper describes in §3.1) the
//! set of paths that hit the exploration bound — whose probability mass
//! measures the confidence in the bounded result.
//!
//! The language ("MiniJ") is Java-flavoured, mirroring the paper's
//! Listing 1:
//!
//! ```text
//! program safety_monitor(altitude in [0, 20000],
//!                        headFlap in [-10, 10],
//!                        tailFlap in [-10, 10]) {
//!   if (altitude <= 9000) {
//!     if (sin(headFlap * tailFlap) > 0.25) { target(); }
//!   } else {
//!     target();
//!   }
//! }
//! ```
//!
//! * `target();` marks the occurrence of the event of interest (the
//!   paper's `callSupervisor()`); the path terminates there, which keeps
//!   the collected PCs prefix-disjoint.
//! * Conditions may use `&&`, `||`, `!` and parentheses; branching uses
//!   Shannon expansion so sibling cases stay disjoint.
//! * Loops are executed symbolically with a branch-decision bound
//!   (paper §6.3 uses SPF with search bound 50).
//! * Infeasible branches are pruned with the ICP contractor, playing the
//!   role of SPF's satisfiability checks.
//!
//! # Example
//!
//! ```
//! use qcoral_symexec::{parse_program, symbolic_execute, SymConfig};
//!
//! let prog = parse_program(
//!     "program p(x in [0, 1]) {
//!        if (x > 0.5) { target(); }
//!      }",
//! ).unwrap();
//! let result = symbolic_execute(&prog, &SymConfig::default());
//! assert_eq!(result.target.len(), 1);
//! assert_eq!(result.no_target.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod flat;
pub mod interp;
pub mod parser;

pub use ast::{Cond, Program, Stmt};
pub use exec::{symbolic_execute, SymConfig, SymResult};
pub use interp::{run, Outcome};
pub use parser::parse_program;
