//! Differential testing: for randomly generated programs and random
//! inputs, the concrete interpreter hits the target if and only if the
//! input satisfies exactly one symbolically collected target PC.
//!
//! Generated programs avoid partial operations (`sqrt`, `/`, `ln`) in
//! guards so that the NaN caveat documented in `exec.rs` does not apply.

use proptest::prelude::*;
use qcoral_constraints::{Expr, RelOp, VarId};
use qcoral_symexec::ast::{Cond, Program, Stmt};
use qcoral_symexec::{run, symbolic_execute, Outcome, SymConfig};

const NPARAMS: usize = 2;

/// A random total (NaN-free on the domain) arithmetic expression over the
/// two parameters and up to one local slot.
fn arith(max_slot: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-2.0f64..2.0).prop_map(Expr::constant),
        (0..=max_slot).prop_map(|i| Expr::var(VarId(i))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            inner.clone().prop_map(|a| a.sin()),
            inner.clone().prop_map(|a| a.cos()),
            inner.prop_map(|a| a.abs()),
        ]
    })
}

fn relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge)
    ]
}

fn cond(max_slot: u32) -> impl Strategy<Value = Cond> {
    let cmp =
        (arith(max_slot), relop(), arith(max_slot)).prop_map(|(l, op, r)| Cond::Cmp(l, op, r));
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cond::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|c| Cond::Not(Box::new(c))),
        ]
    })
}

/// A random program: a local assignment, then nested branching with
/// targets sprinkled in.
fn program() -> impl Strategy<Value = Program> {
    (
        arith(NPARAMS as u32 - 1),
        cond(NPARAMS as u32),
        cond(NPARAMS as u32),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(local_init, c1, c2, t_then, t_nested)| {
            let then_branch = if t_then {
                vec![Stmt::Target]
            } else {
                vec![Stmt::If {
                    cond: c2.clone(),
                    then_branch: vec![Stmt::Target],
                    else_branch: vec![Stmt::Return],
                }]
            };
            let else_branch = if t_nested {
                vec![Stmt::If {
                    cond: c2,
                    then_branch: vec![Stmt::Return],
                    else_branch: vec![Stmt::Target],
                }]
            } else {
                vec![]
            };
            Program {
                name: "gen".into(),
                params: vec![("p0".into(), -1.0, 1.0), ("p1".into(), -1.0, 1.0)],
                locals: vec!["l0".into()],
                body: vec![
                    Stmt::Assign {
                        slot: NPARAMS,
                        expr: local_init,
                    },
                    Stmt::If {
                        cond: c1,
                        then_branch,
                        else_branch,
                    },
                ],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn symbolic_pcs_partition_and_match_interpreter(
        prog in program(),
        points in prop::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 32)
    ) {
        let sym = symbolic_execute(&prog, &SymConfig::default());
        prop_assert!(sym.bound_hit.is_empty(), "loop-free programs never hit the bound");
        for (x, y) in points {
            let input = [x, y];
            let concrete = run(&prog, &input, 10_000) == Outcome::Target;
            let holding: Vec<bool> = sym
                .complete
                .iter()
                .filter(|(pc, _)| pc.holds(&input))
                .map(|(_, t)| *t)
                .collect();
            prop_assert_eq!(
                holding.len(),
                1,
                "input {:?} satisfied {} complete-path PCs",
                input,
                holding.len()
            );
            prop_assert_eq!(
                holding[0], concrete,
                "symbolic/concrete disagree on {:?}", input
            );
        }
    }
}
