//! Outward-rounded interval arithmetic and n-dimensional boxes.
//!
//! This crate is the numerical substrate underneath the qCORAL
//! reproduction's interval constraint propagation (ICP) solver. It provides
//!
//! * [`Interval`] — a closed interval over `f64` with *outward rounding*:
//!   every arithmetic operation widens its result so that the returned
//!   interval is guaranteed to contain the exact real-arithmetic image of
//!   the operands. This is the soundness property the paper's RealPaver
//!   usage relies on ("the union of all boxes reported on output contains
//!   all solutions", §2.2).
//! * [`IntervalBox`] — an axis-aligned n-dimensional box (a vector of
//!   intervals), the unit of domain stratification (§3.3).
//!
//! # Example
//!
//! ```
//! use qcoral_interval::Interval;
//!
//! let x = Interval::new(0.0, 1.0);
//! let y = Interval::new(2.0, 3.0);
//! let z = x + y;
//! assert!(z.contains(2.5));
//! assert!(z.lo() <= 2.0 && z.hi() >= 4.0);
//! ```
//!
//! # Rounding model
//!
//! Rust gives no portable access to directed-rounding mode, so operations
//! are computed in round-to-nearest and then widened by one ulp on each
//! side ([`round::down`] / [`round::up`]). For transcendental functions the
//! result is widened by two ulps, which over-approximates the ≤1 ulp error
//! bound of practical libm implementations. The resulting intervals are
//! slightly wider than optimal but always sound.

#![warn(missing_docs)]

pub mod boxn;
pub mod interval;
pub mod round;

pub use boxn::IntervalBox;
pub use interval::Interval;
