//! The [`Interval`] type: closed intervals over `f64` with outward rounding.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::round::{
    add_hi, add_lo, div_hi, div_lo, down, down2, mul_hi, mul_lo, powi_hi, powi_lo, sqrt_hi,
    sqrt_lo, up, up2,
};

/// A closed interval `[lo, hi]` of real numbers.
///
/// Endpoints may be infinite (an infinite endpoint means the interval is
/// unbounded on that side; the *elements* are always finite reals). The
/// empty interval is a distinguished value. Endpoints are never NaN.
///
/// All arithmetic is *outward rounded*: the returned interval is a superset
/// of the exact image `{x op y | x ∈ self, y ∈ rhs}`.
///
/// # Example
///
/// ```
/// use qcoral_interval::Interval;
///
/// let a = Interval::new(-1.0, 2.0);
/// assert!((a * a).contains(4.0));
/// assert!((a * a).lo() <= 0.0); // -1·2 = -2 is in the product
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The empty interval.
    pub const EMPTY: Interval = Interval {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
    };

    /// The whole real line `(-∞, +∞)`.
    pub const ENTIRE: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// The unit interval `[0, 1]`.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either endpoint is NaN. Use
    /// [`Interval::checked_new`] for a non-panicking variant.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Interval {
        Interval::checked_new(lo, hi)
            .unwrap_or_else(|| panic!("invalid interval endpoints [{lo}, {hi}]"))
    }

    /// Creates the interval `[lo, hi]`, returning `None` if `lo > hi` or
    /// either endpoint is NaN.
    #[inline]
    pub fn checked_new(lo: f64, hi: f64) -> Option<Interval> {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            None
        } else {
            Some(Interval { lo, hi })
        }
    }

    /// Creates the degenerate (point) interval `[v, v]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    #[inline]
    pub fn point(v: f64) -> Interval {
        assert!(!v.is_nan(), "point interval from NaN");
        Interval { lo: v, hi: v }
    }

    /// Creates `[lo, hi]` clamping a reversed pair into the empty interval
    /// instead of panicking. NaN endpoints also yield the empty interval.
    #[inline]
    pub fn new_or_empty(lo: f64, hi: f64) -> Interval {
        Interval::checked_new(lo, hi).unwrap_or(Interval::EMPTY)
    }

    /// Lower endpoint. For the empty interval this is `+∞`.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint. For the empty interval this is `-∞`.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Returns `true` if the interval contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Returns `true` if the interval is a single point.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Returns `true` if both endpoints are finite and the interval is
    /// non-empty.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        !self.is_empty() && self.lo.is_finite() && self.hi.is_finite()
    }

    /// Width `hi - lo` of the interval; `0` for empty intervals, `+∞` for
    /// unbounded ones.
    #[inline]
    pub fn width(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.hi - self.lo
        }
    }

    /// Midpoint of the interval. Saturates sensibly for half-unbounded
    /// intervals (returns a large finite value) and returns NaN for the
    /// empty interval.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        if self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY {
            return 0.0;
        }
        if self.lo == f64::NEG_INFINITY {
            return f64::MIN / 2.0;
        }
        if self.hi == f64::INFINITY {
            return f64::MAX / 2.0;
        }
        let m = self.lo / 2.0 + self.hi / 2.0;
        // Guard against the midpoint escaping the interval through rounding.
        m.clamp(self.lo, self.hi)
    }

    /// Magnitude: the largest absolute value of any element; `0` for empty.
    #[inline]
    pub fn magnitude(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.lo.abs().max(self.hi.abs())
        }
    }

    /// Mignitude: the smallest absolute value of any element; `0` for empty.
    #[inline]
    pub fn mignitude(&self) -> f64 {
        if self.is_empty() || (self.lo <= 0.0 && self.hi >= 0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Returns `true` if `v` lies in the interval.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Returns `true` if `other` is a subset of `self`.
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        other.is_empty() || (other.lo >= self.lo && other.hi <= self.hi)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval::new_or_empty(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    /// Convex hull (smallest interval containing both operands).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Splits the interval at its midpoint into two halves.
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    #[inline]
    pub fn bisect(&self) -> (Interval, Interval) {
        assert!(!self.is_empty(), "cannot bisect the empty interval");
        let m = self.midpoint();
        (
            Interval { lo: self.lo, hi: m },
            Interval { lo: m, hi: self.hi },
        )
    }

    /// Widens the interval by one ulp on each (finite) side.
    #[inline]
    pub fn widen(&self) -> Interval {
        if self.is_empty() {
            return *self;
        }
        Interval {
            lo: down(self.lo),
            hi: up(self.hi),
        }
    }

    // ------------------------------------------------------------------
    // Certainty comparisons: `certainly_*` holds iff the relation holds for
    // *every* pair of elements; `possibly_*` iff it holds for *some* pair.
    // All are vacuously false on empty intervals for `possibly` and
    // vacuously true for `certainly`.
    // ------------------------------------------------------------------

    /// `∀x∈self, y∈other: x < y`.
    #[inline]
    pub fn certainly_lt(&self, other: &Interval) -> bool {
        self.is_empty() || other.is_empty() || self.hi < other.lo
    }

    /// `∀x∈self, y∈other: x ≤ y`.
    #[inline]
    pub fn certainly_le(&self, other: &Interval) -> bool {
        self.is_empty() || other.is_empty() || self.hi <= other.lo
    }

    /// `∀x∈self, y∈other: x > y`.
    #[inline]
    pub fn certainly_gt(&self, other: &Interval) -> bool {
        other.certainly_lt(self)
    }

    /// `∀x∈self, y∈other: x ≥ y`.
    #[inline]
    pub fn certainly_ge(&self, other: &Interval) -> bool {
        other.certainly_le(self)
    }

    /// `∃x∈self, y∈other: x < y`.
    #[inline]
    pub fn possibly_lt(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo < other.hi
    }

    /// `∃x∈self, y∈other: x ≤ y`.
    #[inline]
    pub fn possibly_le(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.lo <= other.hi
    }

    // ------------------------------------------------------------------
    // Elementary functions. Every function returns an outward-rounded
    // superset of the exact image.
    // ------------------------------------------------------------------

    /// Absolute value.
    pub fn abs(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            -*self
        } else {
            Interval {
                lo: 0.0,
                hi: self.magnitude(),
            }
        }
    }

    /// Pointwise minimum `{min(x, y)}`.
    pub fn min_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Pointwise maximum `{max(x, y)}`.
    pub fn max_i(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Square `x²`; tighter than `self * self` because it exploits the
    /// dependency between the two operands.
    pub fn sqr(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if self.lo >= 0.0 {
            Interval::new_or_empty(mul_lo(self.lo, self.lo), mul_hi(self.hi, self.hi))
        } else if self.hi <= 0.0 {
            Interval::new_or_empty(mul_lo(self.hi, self.hi), mul_hi(self.lo, self.lo))
        } else {
            let m = mul_hi(self.lo, self.lo).max(mul_hi(self.hi, self.hi));
            Interval::new_or_empty(0.0, m)
        }
    }

    /// Square root, restricted to the non-negative part of the interval.
    /// Returns the empty interval if `hi < 0`.
    pub fn sqrt(&self) -> Interval {
        let x = self.intersect(&Interval::new(0.0, f64::INFINITY));
        if x.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(sqrt_lo(x.lo), sqrt_hi(x.hi))
    }

    /// Integer power `xⁿ`.
    pub fn powi(&self, n: i32) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        match n {
            0 => Interval::point(1.0),
            1 => *self,
            2 => self.sqr(),
            _ if n > 0 && n % 2 == 0 => {
                // Even power: minimum at the point closest to zero.
                let un = n as u32;
                if self.lo >= 0.0 {
                    Interval::new_or_empty(powi_lo(self.lo, un), powi_hi(self.hi, un))
                } else if self.hi <= 0.0 {
                    Interval::new_or_empty(powi_lo(-self.hi, un), powi_hi(-self.lo, un))
                } else {
                    let m = powi_hi(-self.lo, un).max(powi_hi(self.hi, un));
                    Interval::new_or_empty(0.0, m)
                }
            }
            _ if n > 0 => {
                // Odd power: monotone increasing; (−x)ⁿ = −xⁿ.
                let un = n as u32;
                let lo = if self.lo >= 0.0 {
                    powi_lo(self.lo, un)
                } else {
                    -powi_hi(-self.lo, un)
                };
                let hi = if self.hi >= 0.0 {
                    powi_hi(self.hi, un)
                } else {
                    -powi_lo(-self.hi, un)
                };
                Interval::new_or_empty(lo, hi)
            }
            _ => {
                // Negative power: 1 / x^(-n).
                Interval::point(1.0) / self.powi(-n)
            }
        }
    }

    /// General power `x^y`, enclosing IEEE `powf` on points.
    ///
    /// If `y` is a point integer the computation delegates to
    /// [`Interval::powi`]. Otherwise the non-negative part of the base
    /// evaluates as `exp(y · ln x)` — whose unbounded `ln` lower end
    /// already carries the `0^y` limits (`0` for `y > 0`, divergence for
    /// `y < 0`, `1` for `y = 0`) whenever the base straddles zero — and,
    /// because `powf` is finite on negative bases raised to *integer*
    /// exponents, a symmetric magnitude hull is added for the negative
    /// part of the base whenever `y` contains an integer. Negative-base
    /// points with non-integer exponents are NaN in `powf` and carry no
    /// values to enclose.
    pub fn pow(&self, y: &Interval) -> Interval {
        if self.is_empty() || y.is_empty() {
            return Interval::EMPTY;
        }
        if y.is_point() && y.lo.fract() == 0.0 && y.lo.abs() <= i32::MAX as f64 {
            return self.powi(y.lo as i32);
        }
        let base = self.intersect(&Interval::new(0.0, f64::INFINITY));
        let mut out = if base.is_empty() {
            Interval::EMPTY
        } else if base.hi == 0.0 {
            // Base is exactly {0}: powf(0, t) is 0 for t > 0, 1 at
            // t = 0 and +∞ for t < 0 (kept as an unbounded-above hull).
            let mut z = Interval::EMPTY;
            if y.hi > 0.0 {
                z = z.hull(&Interval::ZERO);
            }
            if y.contains(0.0) {
                z = z.hull(&Interval::point(1.0));
            }
            if y.lo < 0.0 {
                z = z.hull(&Interval::new(f64::MAX, f64::INFINITY));
            }
            z
        } else {
            (base.ln() * *y).exp()
        };
        // Negative bases: finite for the integer exponents in `y`, with
        // magnitude |x|^t and either sign (exponent parity).
        let neg = self.intersect(&Interval::new(f64::NEG_INFINITY, 0.0));
        if !neg.is_empty() && neg.lo < 0.0 && y.lo.ceil() <= y.hi {
            let mag = -neg;
            let m = (mag.ln() * *y).exp();
            if !m.is_empty() {
                out = out.hull(&Interval::new_or_empty(-m.hi, m.hi));
            }
        }
        out
    }

    /// Natural exponential.
    pub fn exp(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(down2(self.lo.exp()).max(0.0), up2(self.hi.exp()))
    }

    /// Natural logarithm, restricted to the positive part of the interval.
    /// Returns the empty interval if `hi ≤ 0`.
    pub fn ln(&self) -> Interval {
        if self.is_empty() || self.hi <= 0.0 {
            return Interval::EMPTY;
        }
        let lo = if self.lo <= 0.0 {
            f64::NEG_INFINITY
        } else {
            down2(self.lo.ln())
        };
        Interval::new_or_empty(lo, up2(self.hi.ln()))
    }

    /// Sine. Sound for arguments of any magnitude: when argument reduction
    /// cannot be trusted (`|x| > 2⁵⁰`) the full range `[-1, 1]` is returned.
    pub fn sin(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        periodic_range(self.lo, self.hi, f64::sin, std::f64::consts::FRAC_PI_2)
    }

    /// Cosine. See [`Interval::sin`] for the soundness notes.
    pub fn cos(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        periodic_range(self.lo, self.hi, f64::cos, 0.0)
    }

    /// Tangent. Returns [`Interval::ENTIRE`] if the interval contains a
    /// pole (π/2 + kπ).
    pub fn tan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        const BIG: f64 = 2f64 * (1u64 << 50) as f64;
        if !self.lo.is_finite() || !self.hi.is_finite() || self.magnitude() > BIG {
            return Interval::ENTIRE;
        }
        let pi = std::f64::consts::PI;
        // Poles at π/2 + kπ. Check (conservatively) whether one lies inside.
        let k_lo = ((self.lo - std::f64::consts::FRAC_PI_2) / pi).ceil();
        let pole = std::f64::consts::FRAC_PI_2 + k_lo * pi;
        let slack = 4.0 * f64::EPSILON * self.magnitude().max(1.0);
        if pole <= self.hi + slack || self.width() >= pi {
            return Interval::ENTIRE;
        }
        Interval::new_or_empty(down2(self.lo.tan()), up2(self.hi.tan()))
    }

    /// Arcsine, restricted to `[-1, 1]`.
    pub fn asin(&self) -> Interval {
        let x = self.intersect(&Interval::new(-1.0, 1.0));
        if x.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(down2(x.lo.asin()), up2(x.hi.asin()))
    }

    /// Arccosine, restricted to `[-1, 1]`.
    pub fn acos(&self) -> Interval {
        let x = self.intersect(&Interval::new(-1.0, 1.0));
        if x.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(down2(x.hi.acos()), up2(x.lo.acos()))
    }

    /// Arctangent (monotone increasing).
    pub fn atan(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(down2(self.lo.atan()), up2(self.hi.atan()))
    }

    /// Two-argument arctangent `atan2(self, x)` (`self` is the *y*
    /// coordinate, mirroring `f64::atan2`).
    ///
    /// Conservative across the branch cut: if the box touches the negative
    /// x-axis or the origin, the full range `[-π, π]` is returned.
    pub fn atan2(&self, x: &Interval) -> Interval {
        let y = self;
        if y.is_empty() || x.is_empty() {
            return Interval::EMPTY;
        }
        let pi = std::f64::consts::PI;
        let full = Interval::new(-up2(pi), up2(pi));
        // Branch cut along the negative x-axis (and origin undefined).
        if x.lo <= 0.0 && y.contains(0.0) {
            return full;
        }
        if y.lo > 0.0 || y.hi < 0.0 || x.lo > 0.0 {
            // The box avoids the branch cut: atan2 is continuous on it, so
            // the extremes are attained at box corners.
            let corners = [
                f64::atan2(y.lo, x.lo),
                f64::atan2(y.lo, x.hi),
                f64::atan2(y.hi, x.lo),
                f64::atan2(y.hi, x.hi),
            ];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for c in corners {
                lo = lo.min(c);
                hi = hi.max(c);
            }
            return Interval::new_or_empty(down2(lo), up2(hi)).intersect(&full);
        }
        full
    }
}

/// Range of a `2π`-periodic function with critical points at
/// `crit + kπ` (max at `crit + 2kπ`, min at `crit + π + 2kπ`), evaluated on
/// `[lo, hi]`. Used for sine (`crit = π/2`) and cosine (`crit = 0`).
fn periodic_range(lo: f64, hi: f64, f: fn(f64) -> f64, crit: f64) -> Interval {
    const BIG: f64 = 2f64 * (1u64 << 50) as f64;
    let two_pi = 2.0 * std::f64::consts::PI;
    if !lo.is_finite() || !hi.is_finite() || lo.abs().max(hi.abs()) > BIG || hi - lo >= two_pi {
        return Interval::new(-1.0, 1.0);
    }
    let fa = f(lo);
    let fb = f(hi);
    let mut out_lo = fa.min(fb);
    let mut out_hi = fa.max(fb);
    // Conservative containment test for critical points, widened by a few
    // ulps of slack so we never miss one due to reduction error.
    let slack = 8.0 * f64::EPSILON * lo.abs().max(hi.abs()).max(1.0);
    let contains_crit = |c: f64| -> bool {
        // Is there an integer k with lo ≤ c + k·2π ≤ hi (within slack)?
        let k = ((lo - c) / two_pi).ceil();
        let p = c + k * two_pi;
        p <= hi + slack || {
            let k2 = ((lo - c) / two_pi).floor();
            let p2 = c + k2 * two_pi;
            p2 >= lo - slack && p2 <= hi + slack
        }
    };
    if contains_crit(crit) {
        out_hi = 1.0;
    }
    if contains_crit(crit + std::f64::consts::PI) {
        out_lo = -1.0;
    }
    Interval::new_or_empty(down2(out_lo).max(-1.0), up2(out_hi).min(1.0))
}

impl Default for Interval {
    /// The default interval is [`Interval::ZERO`].
    fn default() -> Interval {
        Interval::ZERO
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

impl From<f64> for Interval {
    /// Converts a finite `f64` into a point interval.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN.
    fn from(v: f64) -> Interval {
        Interval::point(v)
    }
}

impl Neg for Interval {
    type Output = Interval;

    fn neg(self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Add for Interval {
    type Output = Interval;

    fn add(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new_or_empty(add_lo(self.lo, rhs.lo), add_hi(self.hi, rhs.hi))
    }
}

impl Sub for Interval {
    type Output = Interval;

    fn sub(self, rhs: Interval) -> Interval {
        self + (-rhs)
    }
}

impl Mul for Interval {
    type Output = Interval;

    fn mul(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        let corners = [
            (self.lo, rhs.lo),
            (self.lo, rhs.hi),
            (self.hi, rhs.lo),
            (self.hi, rhs.hi),
        ];
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (a, b) in corners {
            lo = lo.min(mul_lo(a, b));
            hi = hi.max(mul_hi(a, b));
        }
        Interval::new_or_empty(lo, hi)
    }
}

impl Div for Interval {
    type Output = Interval;

    fn div(self, rhs: Interval) -> Interval {
        if self.is_empty() || rhs.is_empty() {
            return Interval::EMPTY;
        }
        if rhs.lo == 0.0 && rhs.hi == 0.0 {
            // Division by exactly zero is undefined everywhere.
            return Interval::EMPTY;
        }
        if rhs.lo > 0.0 || rhs.hi < 0.0 {
            // Divisor has a definite sign: take the corner quotients.
            let corners = [
                (self.lo, rhs.lo),
                (self.lo, rhs.hi),
                (self.hi, rhs.lo),
                (self.hi, rhs.hi),
            ];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (a, b) in corners {
                lo = lo.min(div_lo(a, b));
                hi = hi.max(div_hi(a, b));
            }
            return Interval::new_or_empty(lo, hi);
        }
        if rhs.lo == 0.0 {
            // Divisor in (0, hi].
            return if self.lo >= 0.0 {
                Interval::new_or_empty(div_lo(self.lo, rhs.hi), f64::INFINITY)
            } else if self.hi <= 0.0 {
                Interval::new_or_empty(f64::NEG_INFINITY, div_hi(self.hi, rhs.hi))
            } else {
                Interval::ENTIRE
            };
        }
        if rhs.hi == 0.0 {
            // Divisor in [lo, 0).
            return if self.lo >= 0.0 {
                Interval::new_or_empty(f64::NEG_INFINITY, div_hi(self.lo, rhs.lo))
            } else if self.hi <= 0.0 {
                Interval::new_or_empty(div_lo(self.hi, rhs.lo), f64::INFINITY)
            } else {
                Interval::ENTIRE
            };
        }
        // Divisor straddles zero: the quotient set is a union of two rays;
        // its hull is the whole line.
        Interval::ENTIRE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_contains(i: Interval, v: f64) {
        assert!(i.contains(v), "{i} should contain {v}");
    }

    #[test]
    fn constructors() {
        let i = Interval::new(1.0, 2.0);
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 2.0);
        assert!(Interval::checked_new(2.0, 1.0).is_none());
        assert!(Interval::checked_new(f64::NAN, 1.0).is_none());
        assert!(Interval::EMPTY.is_empty());
        assert!(!Interval::ENTIRE.is_empty());
        assert!(Interval::point(3.0).is_point());
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn new_panics_on_reversed() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn widths_and_midpoints() {
        assert_eq!(Interval::new(1.0, 3.0).width(), 2.0);
        assert_eq!(Interval::EMPTY.width(), 0.0);
        assert_eq!(Interval::new(1.0, 3.0).midpoint(), 2.0);
        assert_eq!(Interval::ENTIRE.midpoint(), 0.0);
        assert!(Interval::EMPTY.midpoint().is_nan());
        let i = Interval::new(f64::NEG_INFINITY, 5.0);
        assert!(i.midpoint().is_finite());
        assert!(i.contains(i.midpoint()));
    }

    #[test]
    fn add_contains_exact_sum() {
        let a = Interval::new(0.1, 0.2);
        let b = Interval::new(0.3, 0.4);
        let c = a + b;
        assert_contains(c, 0.1 + 0.3);
        assert_contains(c, 0.2 + 0.4);
        assert_contains(c, 0.5);
    }

    #[test]
    fn sub_is_add_of_negation() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(0.5, 1.5);
        let d = a - b;
        assert_contains(d, 1.0 - 1.5);
        assert_contains(d, 2.0 - 0.5);
    }

    #[test]
    fn mul_sign_cases() {
        let pos = Interval::new(2.0, 3.0);
        let neg = Interval::new(-3.0, -2.0);
        let mixed = Interval::new(-1.0, 2.0);
        assert_contains(pos * pos, 9.0);
        assert_contains(pos * neg, -9.0);
        assert!((pos * neg).hi() <= up(-4.0));
        assert_contains(mixed * pos, -3.0);
        assert_contains(mixed * pos, 6.0);
        assert_contains(mixed * mixed, -2.0);
        assert_contains(mixed * mixed, 4.0);
    }

    #[test]
    fn mul_with_infinite_endpoints() {
        let ray = Interval::new(2.0, f64::INFINITY);
        let z = Interval::new(0.0, 1.0);
        let p = z * ray;
        assert!(p.contains(0.0) && p.lo() >= -1e-300);
        assert_eq!(p.hi(), f64::INFINITY);
        let zz = Interval::ZERO * ray;
        assert!(zz.contains(0.0));
        assert!(zz.is_point() || zz.width() < 1e-300);
    }

    #[test]
    fn div_definite_sign() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(4.0, 8.0);
        let q = a / b;
        assert_contains(q, 0.125);
        assert_contains(q, 0.5);
        assert!(q.lo() <= 0.125 && q.hi() >= 0.5);
    }

    #[test]
    fn div_by_zero_cases() {
        let a = Interval::new(1.0, 2.0);
        assert!((a / Interval::ZERO).is_empty());
        let q = a / Interval::new(0.0, 1.0);
        assert_eq!(q.hi(), f64::INFINITY);
        assert!(q.lo() <= 1.0);
        let q2 = a / Interval::new(-1.0, 1.0);
        assert_eq!(q2, Interval::ENTIRE);
    }

    #[test]
    fn sqr_tighter_than_mul() {
        let x = Interval::new(-2.0, 1.0);
        let s = x.sqr();
        assert_eq!(s.lo(), 0.0);
        assert_contains(s, 4.0);
        assert!(s.hi() < (x * x).hi() + 1.0);
        // x·x would give [-2, 4]; sqr gives [0, 4].
        assert!(s.lo() > (x * x).lo());
    }

    #[test]
    fn sqrt_cases() {
        let x = Interval::new(4.0, 9.0);
        let s = x.sqrt();
        assert_contains(s, 2.0);
        assert_contains(s, 3.0);
        assert!(Interval::new(-2.0, -1.0).sqrt().is_empty());
        let half = Interval::new(-1.0, 4.0).sqrt();
        assert_eq!(half.lo(), 0.0);
        assert_contains(half, 2.0);
    }

    #[test]
    fn powi_cases() {
        let x = Interval::new(-2.0, 3.0);
        assert_eq!(x.powi(0), Interval::point(1.0));
        assert_eq!(x.powi(1), x);
        let e = x.powi(2);
        assert_eq!(e.lo(), 0.0);
        assert_contains(e, 9.0);
        let o = x.powi(3);
        assert_contains(o, -8.0);
        assert_contains(o, 27.0);
        let n = Interval::new(1.0, 2.0).powi(-1);
        assert_contains(n, 0.5);
        assert_contains(n, 1.0);
    }

    #[test]
    fn pow_general() {
        let x = Interval::new(1.0, 4.0);
        let y = Interval::new(0.5, 0.5);
        let p = x.pow(&y);
        assert_contains(p, 1.0);
        assert_contains(p, 2.0);
        // Negative base with non-integer exponent has no defined values.
        let neg = Interval::new(-2.0, -1.0);
        assert!(neg.pow(&Interval::point(0.5)).is_empty());
        // Point integer exponent delegates to powi even for negative base.
        let cube = neg.pow(&Interval::point(3.0));
        assert_contains(cube, -8.0);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let x = Interval::new(0.5, 2.0);
        let e = x.exp();
        assert_contains(e, 1.0f64.exp());
        let l = e.ln();
        assert!(l.lo() <= 0.5 && l.hi() >= 2.0);
        assert!(Interval::new(-2.0, -1.0).ln().is_empty());
        assert_eq!(Interval::new(0.0, 1.0).ln().lo(), f64::NEG_INFINITY);
    }

    #[test]
    fn sin_basic_ranges() {
        use std::f64::consts::PI;
        let full = Interval::new(0.0, 7.0).sin();
        assert!(full.lo() <= -1.0 && full.hi() >= 1.0);
        let rising = Interval::new(0.0, 1.0).sin();
        assert_contains(rising, 0.0);
        assert_contains(rising, 1.0f64.sin());
        assert!(rising.hi() < 0.9);
        let peak = Interval::new(1.0, 2.0).sin();
        assert_eq!(peak.hi(), 1.0);
        let trough = Interval::new(PI, 2.0 * PI).sin();
        assert_eq!(trough.lo(), -1.0);
    }

    #[test]
    fn cos_basic_ranges() {
        use std::f64::consts::PI;
        let c = Interval::new(-0.5, 0.5).cos();
        assert_eq!(c.hi(), 1.0);
        assert!(c.lo() <= 0.5f64.cos());
        let t = Interval::new(PI - 0.1, PI + 0.1).cos();
        assert_eq!(t.lo(), -1.0);
    }

    #[test]
    fn sin_huge_argument_is_conservative() {
        let s = Interval::new(1e300, 1e300 + 1.0).sin();
        assert_eq!(s, Interval::new(-1.0, 1.0));
    }

    #[test]
    fn tan_with_and_without_pole() {
        use std::f64::consts::FRAC_PI_2;
        let safe = Interval::new(-0.5, 0.5).tan();
        assert_contains(safe, 0.0);
        assert!(safe.hi() < 1.0);
        let pole = Interval::new(FRAC_PI_2 - 0.1, FRAC_PI_2 + 0.1).tan();
        assert_eq!(pole, Interval::ENTIRE);
    }

    #[test]
    fn inverse_trig() {
        let a = Interval::new(-0.5, 0.5).asin();
        assert_contains(a, 0.0);
        let big = Interval::new(-3.0, 3.0).asin();
        assert!(big.lo() <= -std::f64::consts::FRAC_PI_2 + 1e-9);
        let c = Interval::new(0.0, 1.0).acos();
        assert_contains(c, 0.0);
        assert_contains(c, std::f64::consts::FRAC_PI_2);
        let t = Interval::new(-1.0, 1.0).atan();
        assert_contains(t, std::f64::consts::FRAC_PI_4);
    }

    #[test]
    fn atan2_quadrants() {
        use std::f64::consts::PI;
        // Strictly in the right half-plane.
        let y = Interval::new(1.0, 2.0);
        let x = Interval::new(1.0, 2.0);
        let a = y.atan2(&x);
        assert_contains(a, PI / 4.0);
        assert!(a.lo() > 0.0 && a.hi() < PI / 2.0);
        // Touching the branch cut: full range.
        let y2 = Interval::new(-1.0, 1.0);
        let x2 = Interval::new(-2.0, -1.0);
        let a2 = y2.atan2(&x2);
        assert!(a2.lo() <= -PI && a2.hi() >= PI);
        // Upper half-plane crossing the y-axis.
        let y3 = Interval::new(1.0, 2.0);
        let x3 = Interval::new(-1.0, 1.0);
        let a3 = y3.atan2(&x3);
        assert_contains(a3, PI / 2.0);
    }

    #[test]
    fn set_operations() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Interval::new(1.0, 2.0));
        assert_eq!(a.hull(&b), Interval::new(0.0, 3.0));
        assert!(a.intersect(&Interval::new(5.0, 6.0)).is_empty());
        assert_eq!(a.hull(&Interval::EMPTY), a);
        assert_eq!(Interval::EMPTY.hull(&b), b);
        assert!(a.contains_interval(&Interval::new(0.5, 1.5)));
        assert!(a.contains_interval(&Interval::EMPTY));
        assert!(!a.contains_interval(&b));
    }

    #[test]
    fn bisect_halves_cover() {
        let a = Interval::new(0.0, 10.0);
        let (l, r) = a.bisect();
        assert_eq!(l.hi(), r.lo());
        assert_eq!(l.lo(), 0.0);
        assert_eq!(r.hi(), 10.0);
    }

    #[test]
    fn certainty_comparisons() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        let c = Interval::new(0.5, 2.5);
        assert!(a.certainly_lt(&b));
        assert!(a.certainly_le(&b));
        assert!(!a.certainly_lt(&c));
        assert!(a.possibly_lt(&c));
        assert!(b.certainly_gt(&a));
        assert!(c.possibly_le(&a));
        let touching = Interval::new(1.0, 2.0);
        assert!(a.certainly_le(&touching));
        assert!(!a.certainly_lt(&touching));
    }

    #[test]
    fn abs_min_max() {
        let m = Interval::new(-3.0, 2.0);
        assert_eq!(m.abs(), Interval::new(0.0, 3.0));
        assert_eq!(Interval::new(-3.0, -1.0).abs(), Interval::new(1.0, 3.0));
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.min_i(&b), Interval::new(0.0, 3.0));
        assert_eq!(a.max_i(&b), Interval::new(2.0, 5.0));
    }

    #[test]
    fn magnitude_mignitude() {
        let m = Interval::new(-3.0, 2.0);
        assert_eq!(m.magnitude(), 3.0);
        assert_eq!(m.mignitude(), 0.0);
        assert_eq!(Interval::new(1.0, 4.0).mignitude(), 1.0);
        assert_eq!(Interval::new(-4.0, -1.0).mignitude(), 1.0);
    }

    #[test]
    fn empty_propagates_through_arithmetic() {
        let e = Interval::EMPTY;
        let a = Interval::new(0.0, 1.0);
        assert!((e + a).is_empty());
        assert!((a - e).is_empty());
        assert!((e * a).is_empty());
        assert!((a / e).is_empty());
        assert!((-e).is_empty());
        assert!(e.sin().is_empty());
        assert!(e.sqrt().is_empty());
        assert!(e.exp().is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Interval::new(1.0, 2.0).to_string(), "[1, 2]");
        assert_eq!(Interval::EMPTY.to_string(), "∅");
    }
}
