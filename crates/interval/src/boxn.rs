//! Axis-aligned n-dimensional boxes: vectors of [`Interval`]s.
//!
//! Boxes are the unit of domain stratification in qCORAL (§3.3): the ICP
//! solver pavés the input domain into boxes, and stratified sampling draws
//! samples independently within each box.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::Interval;

/// An axis-aligned box: the Cartesian product of one interval per
/// dimension.
///
/// # Example
///
/// ```
/// use qcoral_interval::{Interval, IntervalBox};
///
/// let b = IntervalBox::new(vec![Interval::new(0.0, 2.0), Interval::new(-1.0, 1.0)]);
/// assert_eq!(b.volume(), 4.0);
/// assert!(b.contains_point(&[1.0, 0.0]));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalBox {
    dims: Vec<Interval>,
}

impl IntervalBox {
    /// Creates a box from its per-dimension intervals.
    pub fn new(dims: Vec<Interval>) -> IntervalBox {
        IntervalBox { dims }
    }

    /// Creates a zero-dimensional box (the unit of Cartesian product; its
    /// volume is 1 and it contains the empty point).
    pub fn unit() -> IntervalBox {
        IntervalBox { dims: Vec::new() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension intervals.
    #[inline]
    pub fn dims(&self) -> &[Interval] {
        &self.dims
    }

    /// Mutable access to a dimension.
    #[inline]
    pub fn dim_mut(&mut self, i: usize) -> &mut Interval {
        &mut self.dims[i]
    }

    /// Returns `true` if any dimension is empty (the box contains no
    /// points). A zero-dimensional box is *not* empty.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().any(Interval::is_empty)
    }

    /// Geometric volume: the product of dimension widths. Unbounded
    /// dimensions give `+∞`; an empty box gives `0`.
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::width).product()
    }

    /// Volume of this box relative to `domain`, computed as the product of
    /// per-dimension width ratios. More robust than `volume() /
    /// domain.volume()` for high-dimensional or large domains where the
    /// absolute volumes can overflow.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn relative_volume(&self, domain: &IntervalBox) -> f64 {
        assert_eq!(
            self.ndim(),
            domain.ndim(),
            "relative_volume: dimension mismatch"
        );
        if self.is_empty() {
            return 0.0;
        }
        self.dims
            .iter()
            .zip(&domain.dims)
            .map(|(b, d)| {
                let dw = d.width();
                if dw == 0.0 {
                    1.0
                } else {
                    (b.width() / dw).min(1.0)
                }
            })
            .product()
    }

    /// Returns `true` if the point lies in the box.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.ndim()`.
    pub fn contains_point(&self, point: &[f64]) -> bool {
        assert_eq!(
            point.len(),
            self.ndim(),
            "contains_point: dimension mismatch"
        );
        self.dims.iter().zip(point).all(|(d, &p)| d.contains(p))
    }

    /// Returns `true` if `other` is a subset of `self`.
    pub fn contains_box(&self, other: &IntervalBox) -> bool {
        other.is_empty()
            || (self.ndim() == other.ndim()
                && self
                    .dims
                    .iter()
                    .zip(&other.dims)
                    .all(|(a, b)| a.contains_interval(b)))
    }

    /// Dimension-wise intersection.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn intersect(&self, other: &IntervalBox) -> IntervalBox {
        assert_eq!(self.ndim(), other.ndim(), "intersect: dimension mismatch");
        IntervalBox {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.intersect(b))
                .collect(),
        }
    }

    /// Dimension-wise convex hull.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn hull(&self, other: &IntervalBox) -> IntervalBox {
        assert_eq!(self.ndim(), other.ndim(), "hull: dimension mismatch");
        IntervalBox {
            dims: self
                .dims
                .iter()
                .zip(&other.dims)
                .map(|(a, b)| a.hull(b))
                .collect(),
        }
    }

    /// Index of the widest dimension. Returns `None` for zero-dimensional
    /// or empty boxes.
    pub fn widest_dim(&self) -> Option<usize> {
        if self.dims.is_empty() || self.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_w = f64::NEG_INFINITY;
        for (i, d) in self.dims.iter().enumerate() {
            let w = d.width();
            if w > best_w {
                best_w = w;
                best = i;
            }
        }
        Some(best)
    }

    /// Largest dimension width (the box diameter in the ∞-norm). `0` for
    /// empty or zero-dimensional boxes.
    pub fn max_width(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(Interval::width).fold(0.0, f64::max)
    }

    /// Splits the box in two along its widest dimension.
    ///
    /// # Panics
    ///
    /// Panics if the box is empty or zero-dimensional.
    pub fn bisect(&self) -> (IntervalBox, IntervalBox) {
        let i = self
            .widest_dim()
            .expect("cannot bisect an empty or zero-dimensional box");
        self.bisect_dim(i)
    }

    /// Splits the box in two along dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or that dimension is empty.
    pub fn bisect_dim(&self, i: usize) -> (IntervalBox, IntervalBox) {
        let (l, r) = self.dims[i].bisect();
        let mut left = self.clone();
        let mut right = self.clone();
        left.dims[i] = l;
        right.dims[i] = r;
        (left, right)
    }

    /// The center point of the box (midpoint in every dimension).
    pub fn center(&self) -> Vec<f64> {
        self.dims.iter().map(Interval::midpoint).collect()
    }

    /// Restricts the box to the dimensions listed in `keep` (projection).
    pub fn project(&self, keep: &[usize]) -> IntervalBox {
        IntervalBox {
            dims: keep.iter().map(|&i| self.dims[i]).collect(),
        }
    }
}

impl Index<usize> for IntervalBox {
    type Output = Interval;

    fn index(&self, i: usize) -> &Interval {
        &self.dims[i]
    }
}

impl FromIterator<Interval> for IntervalBox {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> IntervalBox {
        IntervalBox {
            dims: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for IntervalBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, " × ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> IntervalBox {
        IntervalBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 1.0)])
    }

    #[test]
    fn volume_and_relative_volume() {
        let b = IntervalBox::new(vec![Interval::new(0.0, 2.0), Interval::new(0.0, 3.0)]);
        assert_eq!(b.volume(), 6.0);
        let half = IntervalBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 3.0)]);
        assert_eq!(half.relative_volume(&b), 0.5);
        assert_eq!(b.relative_volume(&b), 1.0);
    }

    #[test]
    fn zero_dimensional_box() {
        let u = IntervalBox::unit();
        assert_eq!(u.ndim(), 0);
        assert!(!u.is_empty());
        assert_eq!(u.volume(), 1.0);
        assert!(u.contains_point(&[]));
    }

    #[test]
    fn empty_detection() {
        let mut b = unit_square();
        assert!(!b.is_empty());
        *b.dim_mut(1) = Interval::EMPTY;
        assert!(b.is_empty());
        assert_eq!(b.volume(), 0.0);
    }

    #[test]
    fn containment() {
        let b = unit_square();
        assert!(b.contains_point(&[0.5, 0.5]));
        assert!(b.contains_point(&[0.0, 1.0]));
        assert!(!b.contains_point(&[1.5, 0.5]));
        let inner = IntervalBox::new(vec![Interval::new(0.2, 0.8), Interval::new(0.0, 1.0)]);
        assert!(b.contains_box(&inner));
        assert!(!inner.contains_box(&b));
    }

    #[test]
    fn intersect_and_hull() {
        let a = unit_square();
        let b = IntervalBox::new(vec![Interval::new(0.5, 2.0), Interval::new(-1.0, 0.5)]);
        let i = a.intersect(&b);
        assert_eq!(i[0], Interval::new(0.5, 1.0));
        assert_eq!(i[1], Interval::new(0.0, 0.5));
        let h = a.hull(&b);
        assert_eq!(h[0], Interval::new(0.0, 2.0));
        assert_eq!(h[1], Interval::new(-1.0, 1.0));
    }

    #[test]
    fn bisect_along_widest() {
        let b = IntervalBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 4.0)]);
        assert_eq!(b.widest_dim(), Some(1));
        let (l, r) = b.bisect();
        assert_eq!(l[1], Interval::new(0.0, 2.0));
        assert_eq!(r[1], Interval::new(2.0, 4.0));
        assert_eq!(l[0], b[0]);
        assert!((l.volume() + r.volume() - b.volume()).abs() < 1e-12);
    }

    #[test]
    fn projection() {
        let b = IntervalBox::new(vec![
            Interval::new(0.0, 1.0),
            Interval::new(2.0, 3.0),
            Interval::new(4.0, 5.0),
        ]);
        let p = b.project(&[2, 0]);
        assert_eq!(p.ndim(), 2);
        assert_eq!(p[0], Interval::new(4.0, 5.0));
        assert_eq!(p[1], Interval::new(0.0, 1.0));
    }

    #[test]
    fn max_width_and_center() {
        let b = IntervalBox::new(vec![Interval::new(0.0, 1.0), Interval::new(0.0, 4.0)]);
        assert_eq!(b.max_width(), 4.0);
        assert_eq!(b.center(), vec![0.5, 2.0]);
    }

    #[test]
    fn display() {
        let b = unit_square();
        assert_eq!(b.to_string(), "([0, 1] × [0, 1])");
    }
}
