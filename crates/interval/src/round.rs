//! Directed-rounding helpers.
//!
//! Stable Rust cannot switch the FPU rounding mode, so directed rounding
//! is emulated: operations are computed in round-to-nearest and the exact
//! rounding error is recovered with error-free transformations (TwoSum for
//! addition, FMA residuals for multiplication, division and square root).
//! The result is stepped one ulp outward *only when the operation was
//! inexact* — crucial for the qCORAL reproduction, where ICP must identify
//! exactly-representable boxes exactly (the paper's Cube subject has σ = 0
//! precisely because RealPaver finds the exact box).
//!
//! Transcendental functions have no error-free transformation; those are
//! widened unconditionally by two ulps ([`down2`]/[`up2`]), which
//! over-approximates the ≤1 ulp error bound of practical libm
//! implementations.

/// Rounds `x` one ulp towards `-∞`. Infinities and NaN are passed through.
#[inline]
pub fn down(x: f64) -> f64 {
    if x.is_finite() {
        x.next_down()
    } else {
        x
    }
}

/// Rounds `x` one ulp towards `+∞`. Infinities and NaN are passed through.
#[inline]
pub fn up(x: f64) -> f64 {
    if x.is_finite() {
        x.next_up()
    } else {
        x
    }
}

/// Rounds `x` two ulps towards `-∞`; used after libm calls whose error
/// bound is at most one ulp.
#[inline]
pub fn down2(x: f64) -> f64 {
    down(down(x))
}

/// Rounds `x` two ulps towards `+∞`; used after libm calls whose error
/// bound is at most one ulp.
#[inline]
pub fn up2(x: f64) -> f64 {
    up(up(x))
}

/// Exact rounding error of `s = RN(a + b)` for finite values (Knuth's
/// TwoSum, valid for any magnitude ordering).
#[inline]
fn two_sum_err(a: f64, b: f64, s: f64) -> f64 {
    let bb = s - a;
    (a - (s - bb)) + (b - bb)
}

/// `a + b` rounded towards `-∞`.
#[inline]
pub fn add_lo(a: f64, b: f64) -> f64 {
    let s = a + b;
    if !s.is_finite() {
        // +∞ from overflow of finite operands: the true sum is a finite
        // value above MAX, so MAX is a valid lower bound. -∞ passes
        // through (unbounded below).
        if s == f64::INFINITY && a.is_finite() && b.is_finite() {
            return f64::MAX;
        }
        return s;
    }
    if two_sum_err(a, b, s) < 0.0 {
        s.next_down()
    } else {
        s
    }
}

/// `a + b` rounded towards `+∞`.
#[inline]
pub fn add_hi(a: f64, b: f64) -> f64 {
    let s = a + b;
    if !s.is_finite() {
        if s == f64::NEG_INFINITY && a.is_finite() && b.is_finite() {
            return f64::MIN;
        }
        return s;
    }
    if two_sum_err(a, b, s) > 0.0 {
        s.next_up()
    } else {
        s
    }
}

/// `a - b` rounded towards `-∞`.
#[inline]
pub fn sub_lo(a: f64, b: f64) -> f64 {
    add_lo(a, -b)
}

/// `a - b` rounded towards `+∞`.
#[inline]
pub fn sub_hi(a: f64, b: f64) -> f64 {
    add_hi(a, -b)
}

/// Smallest positive subnormal.
const TINY: f64 = f64::MIN_POSITIVE * f64::EPSILON;

/// `a * b` rounded towards `-∞`, with the `0 · ±∞ = 0` hull convention.
#[inline]
pub fn mul_lo(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        return 0.0;
    }
    let p = a * b;
    if !p.is_finite() {
        if p == f64::INFINITY && a.is_finite() && b.is_finite() {
            return f64::MAX;
        }
        return p;
    }
    if p == 0.0 {
        // Underflow: the true product is a tiny non-zero value.
        return if (a > 0.0) == (b > 0.0) { 0.0 } else { -TINY };
    }
    if p.abs() < f64::MIN_POSITIVE {
        // Subnormal results: the FMA residual may itself be inexact; be
        // conservative.
        return p.next_down();
    }
    if a.mul_add(b, -p) < 0.0 {
        p.next_down()
    } else {
        p
    }
}

/// `a * b` rounded towards `+∞`, with the `0 · ±∞ = 0` hull convention.
#[inline]
pub fn mul_hi(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        return 0.0;
    }
    let p = a * b;
    if !p.is_finite() {
        if p == f64::NEG_INFINITY && a.is_finite() && b.is_finite() {
            return f64::MIN;
        }
        return p;
    }
    if p == 0.0 {
        return if (a > 0.0) == (b > 0.0) { TINY } else { 0.0 };
    }
    if p.abs() < f64::MIN_POSITIVE {
        return p.next_up();
    }
    if a.mul_add(b, -p) > 0.0 {
        p.next_up()
    } else {
        p
    }
}

/// `a / b` rounded towards `-∞` (finite non-zero divisor; infinite
/// operands follow hull conventions).
#[inline]
pub fn div_lo(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    if b.is_infinite() {
        if a.is_infinite() {
            return if (a > 0.0) == (b > 0.0) {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        // finite / ∞ underflows towards zero from the correct side.
        return if (a > 0.0) == (b > 0.0) { 0.0 } else { -TINY };
    }
    let q = a / b;
    if !q.is_finite() {
        if q == f64::INFINITY && a.is_finite() {
            return f64::MAX;
        }
        return q;
    }
    if q == 0.0 {
        return if (a > 0.0) == (b > 0.0) { 0.0 } else { -TINY };
    }
    if q.abs() < f64::MIN_POSITIVE {
        return q.next_down();
    }
    // Residual r = a − q·b (exact via FMA). True quotient = q + r/b.
    let r = q.mul_add(-b, a);
    if r != 0.0 && (r > 0.0) != (b > 0.0) {
        q.next_down()
    } else {
        q
    }
}

/// `a / b` rounded towards `+∞`.
#[inline]
pub fn div_hi(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    if b.is_infinite() {
        if a.is_infinite() {
            return if (a > 0.0) == (b > 0.0) {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        return if (a > 0.0) == (b > 0.0) { TINY } else { 0.0 };
    }
    let q = a / b;
    if !q.is_finite() {
        if q == f64::NEG_INFINITY && a.is_finite() {
            return f64::MIN;
        }
        return q;
    }
    if q == 0.0 {
        return if (a > 0.0) == (b > 0.0) { TINY } else { 0.0 };
    }
    if q.abs() < f64::MIN_POSITIVE {
        return q.next_up();
    }
    let r = q.mul_add(-b, a);
    if r != 0.0 && (r > 0.0) == (b > 0.0) {
        q.next_up()
    } else {
        q
    }
}

/// `sqrt(a)` rounded towards `-∞` (for `a ≥ 0`).
#[inline]
pub fn sqrt_lo(a: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    let r = a.sqrt();
    if !r.is_finite() {
        return r;
    }
    // r² − a, exact via FMA: positive means r > √a.
    if r.mul_add(r, -a) > 0.0 {
        r.next_down()
    } else {
        r
    }
}

/// `sqrt(a)` rounded towards `+∞` (for `a ≥ 0`).
#[inline]
pub fn sqrt_hi(a: f64) -> f64 {
    if a == 0.0 {
        return 0.0;
    }
    let r = a.sqrt();
    if !r.is_finite() {
        return r;
    }
    if r.mul_add(r, -a) < 0.0 {
        r.next_up()
    } else {
        r
    }
}

/// `x^n` for `x ≥ 0`, `n ≥ 1`, rounded towards `-∞` (chained directed
/// multiplication).
pub fn powi_lo(x: f64, n: u32) -> f64 {
    debug_assert!(x >= 0.0);
    let mut acc = x;
    for _ in 1..n {
        acc = mul_lo(acc, x);
    }
    if n == 0 {
        1.0
    } else {
        acc
    }
}

/// `x^n` for `x ≥ 0`, `n ≥ 1`, rounded towards `+∞`.
pub fn powi_hi(x: f64, n: u32) -> f64 {
    debug_assert!(x >= 0.0);
    let mut acc = x;
    for _ in 1..n {
        acc = mul_hi(acc, x);
    }
    if n == 0 {
        1.0
    } else {
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sums_are_not_widened() {
        assert_eq!(add_lo(1.0, 2.0), 3.0);
        assert_eq!(add_hi(1.0, 2.0), 3.0);
        assert_eq!(add_lo(-1.0, 1.0), 0.0);
        assert_eq!(sub_lo(5.0, 3.0), 2.0);
        assert_eq!(sub_hi(5.0, 3.0), 2.0);
    }

    #[test]
    fn inexact_sums_bracket_truth() {
        // 0.1 + 0.2 is inexact in binary.
        let lo = add_lo(0.1, 0.2);
        let hi = add_hi(0.1, 0.2);
        assert!(lo < hi);
        let nearest = 0.1 + 0.2;
        assert!(lo <= nearest && nearest <= hi);
        assert!(hi - lo <= 2.0 * f64::EPSILON);
    }

    #[test]
    fn exact_products_are_not_widened() {
        assert_eq!(mul_lo(2.0, 3.0), 6.0);
        assert_eq!(mul_hi(2.0, 3.0), 6.0);
        assert_eq!(mul_lo(0.5, 8.0), 4.0);
    }

    #[test]
    fn inexact_products_bracket_truth() {
        let a = 0.1;
        let b = 0.1;
        let lo = mul_lo(a, b);
        let hi = mul_hi(a, b);
        assert!(lo <= hi); // may be exact by luck
        assert!(lo <= a * b && a * b <= hi);
        // 1/3 * 3 != 1 exactly.
        let third = 1.0 / 3.0;
        assert!(mul_lo(third, 3.0) < mul_hi(third, 3.0));
        assert!(mul_lo(third, 3.0) <= 1.0 - f64::EPSILON / 2.0 || mul_hi(third, 3.0) >= 1.0);
    }

    #[test]
    fn mul_zero_infinity_convention() {
        assert_eq!(mul_lo(0.0, f64::INFINITY), 0.0);
        assert_eq!(mul_hi(0.0, f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn mul_overflow_clamps() {
        assert_eq!(mul_lo(1e308, 1e10), f64::MAX);
        assert_eq!(mul_hi(1e308, 1e10), f64::INFINITY);
        assert_eq!(mul_hi(-1e308, 1e10), f64::MIN);
        assert_eq!(mul_lo(-1e308, 1e10), f64::NEG_INFINITY);
    }

    #[test]
    fn mul_underflow_keeps_sign_side() {
        let lo = mul_lo(1e-200, -1e-200);
        let hi = mul_hi(1e-200, -1e-200);
        assert!(lo < 0.0);
        assert!(hi <= 0.0);
        let lo2 = mul_lo(1e-200, 1e-200);
        let hi2 = mul_hi(1e-200, 1e-200);
        assert!(lo2 >= 0.0);
        assert!(hi2 > 0.0);
    }

    #[test]
    fn exact_quotients_are_not_widened() {
        assert_eq!(div_lo(6.0, 3.0), 2.0);
        assert_eq!(div_hi(6.0, 3.0), 2.0);
        assert_eq!(div_lo(1.0, 4.0), 0.25);
    }

    #[test]
    fn inexact_quotients_bracket_truth() {
        let lo = div_lo(1.0, 3.0);
        let hi = div_hi(1.0, 3.0);
        assert!(lo < hi);
        // lo ≤ 1/3 ≤ hi: check by multiplying back with directed rounding.
        assert!(mul_lo(lo, 3.0) <= 1.0);
        assert!(mul_hi(hi, 3.0) >= 1.0);
    }

    #[test]
    fn sqrt_directed() {
        assert_eq!(sqrt_lo(4.0), 2.0);
        assert_eq!(sqrt_hi(4.0), 2.0);
        let lo = sqrt_lo(2.0);
        let hi = sqrt_hi(2.0);
        assert!(lo <= std::f64::consts::SQRT_2);
        assert!(hi >= std::f64::consts::SQRT_2);
        assert!(mul_lo(lo, lo) <= 2.0);
        assert!(mul_hi(hi, hi) >= 2.0);
    }

    #[test]
    fn powi_directed() {
        assert_eq!(powi_lo(2.0, 10), 1024.0);
        assert_eq!(powi_hi(2.0, 10), 1024.0);
        let lo = powi_lo(1.1, 5);
        let hi = powi_hi(1.1, 5);
        assert!(lo <= hi);
        assert!(lo <= 1.1f64.powi(5) && 1.1f64.powi(5) <= hi);
    }

    #[test]
    fn single_step_helpers() {
        assert!(down(1.0) < 1.0);
        assert!(up(1.0) > 1.0);
        assert_eq!(down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(up(f64::INFINITY), f64::INFINITY);
        assert!(down(f64::NAN).is_nan());
        assert!(down2(1.0) < down(1.0));
        assert!(up2(1.0) > up(1.0));
    }

    #[test]
    fn overflow_clamping_add() {
        assert_eq!(add_lo(f64::MAX, f64::MAX), f64::MAX);
        assert_eq!(add_hi(f64::MAX, f64::MAX), f64::INFINITY);
        assert_eq!(add_hi(f64::MIN, f64::MIN), f64::MIN);
        assert_eq!(add_lo(f64::MIN, f64::MIN), f64::NEG_INFINITY);
    }

    #[test]
    fn infinite_endpoints_pass_through_add() {
        assert_eq!(add_lo(f64::NEG_INFINITY, 1.0), f64::NEG_INFINITY);
        assert_eq!(add_hi(f64::INFINITY, 1.0), f64::INFINITY);
    }
}
