//! Property-based soundness tests: for random intervals and random points
//! inside them, the image of the point under an operation must lie inside
//! the interval image. This is the inclusion property everything in the
//! qCORAL pipeline relies on.

use proptest::prelude::*;
use qcoral_interval::{Interval, IntervalBox};

/// Strategy producing a non-empty bounded interval with moderate endpoints.
fn interval() -> impl Strategy<Value = Interval> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Interval::new(lo, hi)
    })
}

/// Strategy producing an interval together with a point inside it.
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (interval(), 0.0f64..=1.0).prop_map(|(i, t)| {
        let p = i.lo() + t * (i.hi() - i.lo());
        (i, p.clamp(i.lo(), i.hi()))
    })
}

proptest! {
    #[test]
    fn add_inclusion(((a, x), (b, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!((a + b).contains(x + y));
    }

    #[test]
    fn sub_inclusion(((a, x), (b, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!((a - b).contains(x - y));
    }

    #[test]
    fn mul_inclusion(((a, x), (b, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!((a * b).contains(x * y));
    }

    #[test]
    fn div_inclusion(((a, x), (b, y)) in (interval_with_point(), interval_with_point())) {
        let q = x / y;
        if q.is_finite() {
            prop_assert!((a / b).contains(q), "{a} / {b} should contain {x}/{y} = {q}");
        }
    }

    #[test]
    fn neg_inclusion((a, x) in interval_with_point()) {
        prop_assert!((-a).contains(-x));
    }

    #[test]
    fn abs_inclusion((a, x) in interval_with_point()) {
        prop_assert!(a.abs().contains(x.abs()));
    }

    #[test]
    fn sqr_inclusion((a, x) in interval_with_point()) {
        prop_assert!(a.sqr().contains(x * x));
    }

    #[test]
    fn sqrt_inclusion((a, x) in interval_with_point()) {
        if x >= 0.0 {
            prop_assert!(a.sqrt().contains(x.sqrt()));
        }
    }

    #[test]
    fn exp_inclusion((a, x) in interval_with_point()) {
        let e = x.exp();
        if e.is_finite() {
            prop_assert!(a.exp().contains(e));
        }
    }

    #[test]
    fn ln_inclusion((a, x) in interval_with_point()) {
        if x > 0.0 {
            prop_assert!(a.ln().contains(x.ln()));
        }
    }

    #[test]
    fn sin_inclusion((a, x) in interval_with_point()) {
        prop_assert!(a.sin().contains(x.sin()), "{}.sin() = {} should contain sin({x}) = {}", a, a.sin(), x.sin());
    }

    #[test]
    fn cos_inclusion((a, x) in interval_with_point()) {
        prop_assert!(a.cos().contains(x.cos()));
    }

    #[test]
    fn tan_inclusion((a, x) in interval_with_point()) {
        let t = x.tan();
        if t.is_finite() {
            prop_assert!(a.tan().contains(t));
        }
    }

    #[test]
    fn atan_inclusion((a, x) in interval_with_point()) {
        prop_assert!(a.atan().contains(x.atan()));
    }

    #[test]
    fn asin_inclusion((a, x) in interval_with_point()) {
        if (-1.0..=1.0).contains(&x) {
            prop_assert!(a.asin().contains(x.asin()));
        }
    }

    #[test]
    fn acos_inclusion((a, x) in interval_with_point()) {
        if (-1.0..=1.0).contains(&x) {
            prop_assert!(a.acos().contains(x.acos()));
        }
    }

    #[test]
    fn atan2_inclusion(((a, y), (b, x)) in (interval_with_point(), interval_with_point())) {
        if x != 0.0 || y != 0.0 {
            prop_assert!(a.atan2(&b).contains(y.atan2(x)),
                "atan2({a}, {b}) = {} should contain atan2({y}, {x}) = {}", a.atan2(&b), y.atan2(x));
        }
    }

    #[test]
    fn powi_inclusion((a, x) in interval_with_point(), n in -3i32..=4) {
        let p = x.powi(n);
        if p.is_finite() {
            prop_assert!(a.powi(n).contains(p), "{a}.powi({n}) = {} should contain {x}^{n} = {p}", a.powi(n));
        }
    }

    #[test]
    fn pow_inclusion((a, x) in interval_with_point(), (b, y) in interval_with_point()) {
        let p = x.powf(y);
        if p.is_finite() && !p.is_nan() {
            prop_assert!(a.pow(&b).contains(p), "{a}.pow({b}) = {} should contain {x}^{y} = {p}", a.pow(&b));
        }
    }

    #[test]
    fn min_max_inclusion(((a, x), (b, y)) in (interval_with_point(), interval_with_point())) {
        prop_assert!(a.min_i(&b).contains(x.min(y)));
        prop_assert!(a.max_i(&b).contains(x.max(y)));
    }

    #[test]
    fn intersect_sound(((a, x), b) in (interval_with_point(), interval())) {
        if b.contains(x) {
            prop_assert!(a.intersect(&b).contains(x));
        }
    }

    #[test]
    fn hull_contains_both((a, _) in interval_with_point(), (b, _) in interval_with_point()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn bisect_covers((a, x) in interval_with_point()) {
        if a.width() > 0.0 {
            let (l, r) = a.bisect();
            prop_assert!(l.contains(x) || r.contains(x));
        }
    }

    #[test]
    fn box_bisect_covers(
        xs in prop::collection::vec(interval_with_point(), 1..5)
    ) {
        let b: IntervalBox = xs.iter().map(|(i, _)| *i).collect();
        let p: Vec<f64> = xs.iter().map(|(_, v)| *v).collect();
        if b.max_width() > 0.0 {
            let (l, r) = b.bisect();
            prop_assert!(l.contains_point(&p) || r.contains_point(&p));
        }
    }

    #[test]
    fn box_relative_volume_in_unit_range(
        xs in prop::collection::vec(interval(), 1..5)
    ) {
        let d: IntervalBox = xs.iter().copied().collect();
        let halves: IntervalBox = xs.iter().map(|i| i.bisect().0).collect();
        let rv = halves.relative_volume(&d);
        prop_assert!((0.0..=1.0).contains(&rv));
    }
}

proptest! {
    /// `powf` is finite on negative bases raised to integer exponents;
    /// the interval power must enclose those values whenever the
    /// exponent interval contains the integer. (A regression guard: an
    /// earlier implementation clamped the base to `[0, ∞)` on the
    /// non-point-exponent path, silently dropping every negative-base
    /// value and letting the paver misclassify boxes.)
    #[test]
    fn pow_integer_exponent_negative_base_inclusion(
        (a, x) in interval_with_point(),
        k in -6i32..=6,
        pad in 0.0f64..=0.9,
    ) {
        let b = Interval::new(k as f64 - pad, k as f64 + pad);
        let p = x.powf(k as f64);
        if p.is_finite() {
            prop_assert!(
                a.pow(&b).contains(p),
                "{a}.pow({b}) = {} should contain {x}^{k} = {p}",
                a.pow(&b)
            );
        }
    }
}

/// A base touching zero with a non-negative exponent range must not blow
/// the upper bound to +∞: `exp(y · ln x)` carries the zero limits itself.
#[test]
fn pow_zero_touching_base_stays_bounded() {
    let b = Interval::new(0.0, 4.0);
    let p = b.pow(&Interval::new(0.0, 2.0));
    assert!(p.hi().is_finite(), "{p}");
    assert!(p.hi() <= 16.0 + 1e-9, "{p}");
    assert!(
        p.contains(0.0) && p.contains(1.0) && p.contains(16.0),
        "{p}"
    );
}

/// An exactly-zero base maps through the `powf(0, t)` case split.
#[test]
fn pow_point_zero_base() {
    let z = Interval::ZERO.pow(&Interval::new(0.5, 2.0));
    assert_eq!(z, Interval::ZERO);
    let with_zero_exp = Interval::ZERO.pow(&Interval::new(0.0, 2.0));
    assert!(with_zero_exp.contains(0.0) && with_zero_exp.contains(1.0));
    assert!(with_zero_exp.hi().is_finite());
}

/// A purely negative base with an integer in the exponent range keeps
/// its finite values.
#[test]
fn pow_negative_base_integer_exponent_enclosed() {
    let a = Interval::new(-2.0, -2.0);
    let p = a.pow(&Interval::new(0.5, 1.5));
    assert!(p.contains(-2.0), "{p} should contain (-2)^1 = -2");
    // Without an integer in the exponent range there is nothing to
    // enclose: every negative-base powf is NaN.
    let q = a.pow(&Interval::new(0.25, 0.75));
    assert!(q.is_empty(), "{q}");
}
