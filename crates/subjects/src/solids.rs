//! Table 2 micro-benchmarks: geometric solids with closed-form volumes.
//!
//! Each solid is a single path condition over a 3-dimensional bounded
//! domain strictly larger than the solid, together with the analytic
//! volume used as ground truth. qCORAL estimates the volume as
//! `P(constraint) × volume(domain)`.
//!
//! Parameterizations follow the paper where it states them (Cube = 8,
//! Cone = π/3, Conical frustum with R=1, r=½, h=1, Cylinder = π,
//! Oblate spheroid a=b=2 c=1, Sphere = 4π/3, Torus = π²/8, Icosahedron
//! with unit edge = 2.181695); where the paper's exact parameters are not
//! recoverable (Tetrahedron, Rhombicuboctahedron, Spherical segment, the
//! two intersections) clean parameters with exact closed forms are used —
//! EXPERIMENTS.md records both values side by side.

use std::f64::consts::PI;

use qcoral_constraints::parse::parse_system;
use qcoral_constraints::{Atom, ConstraintSet, Domain, Expr, PathCondition, RelOp, VarId};

/// The paper's grouping of the micro-benchmarks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolidGroup {
    /// Linear constraints only.
    ConvexPolyhedra,
    /// Quadratic surfaces / square roots.
    Revolution,
    /// Intersections of two quadric solids.
    Intersection,
}

impl SolidGroup {
    /// Table heading used by the bench harness.
    pub fn label(self) -> &'static str {
        match self {
            SolidGroup::ConvexPolyhedra => "Convex Polyhedra",
            SolidGroup::Revolution => "Solids of Revolution",
            SolidGroup::Intersection => "Intersection",
        }
    }
}

/// One Table 2 subject.
#[derive(Clone, Debug)]
pub struct Solid {
    /// Subject name as printed in the table.
    pub name: &'static str,
    /// Table grouping.
    pub group: SolidGroup,
    /// The 3-dimensional bounded domain.
    pub domain: Domain,
    /// The single-PC constraint set describing the solid.
    pub constraint_set: ConstraintSet,
    /// Closed-form volume (ground truth).
    pub analytic_volume: f64,
}

impl Solid {
    /// Volume of the bounding domain box.
    pub fn domain_volume(&self) -> f64 {
        self.domain.iter().map(|(_, v)| v.hi - v.lo).product()
    }

    /// The exact probability a uniform sample falls inside the solid.
    pub fn exact_probability(&self) -> f64 {
        self.analytic_volume / self.domain_volume()
    }
}

fn parsed(name: &'static str, group: SolidGroup, src: &str, volume: f64) -> Solid {
    let sys = parse_system(src).unwrap_or_else(|e| panic!("solid {name}: {e}"));
    assert_eq!(sys.domain.len(), 3, "solid {name} must be 3-dimensional");
    Solid {
        name,
        group,
        domain: sys.domain,
        constraint_set: sys.constraint_set,
        analytic_volume: volume,
    }
}

/// Builds a half-space intersection solid from `(normal, offset)` pairs:
/// `n·x ≤ offset` for each face.
fn polyhedron(
    name: &'static str,
    domain_half_width: f64,
    faces: &[([f64; 3], f64)],
    volume: f64,
) -> Solid {
    let mut domain = Domain::new();
    for axis in ["x", "y", "z"] {
        domain
            .declare(axis, -domain_half_width, domain_half_width)
            .expect("fresh domain");
    }
    let mut pc = PathCondition::new();
    for (n, d) in faces {
        let mut lhs = Expr::constant(0.0);
        for (i, &c) in n.iter().enumerate() {
            if c != 0.0 {
                lhs = lhs.add(Expr::constant(c).mul(Expr::var(VarId(i as u32))));
            }
        }
        pc.push(Atom::new(lhs, RelOp::Le, Expr::constant(*d)));
    }
    Solid {
        name,
        group: SolidGroup::ConvexPolyhedra,
        domain,
        constraint_set: ConstraintSet::from_pcs(vec![pc]),
        analytic_volume: volume,
    }
}

fn tetrahedron() -> Solid {
    // Regular tetrahedron with vertices (1,1,1), (1,−1,−1), (−1,1,−1),
    // (−1,−1,1): edge 2√2, V = 8/3.
    polyhedron(
        "Tetrahedron",
        1.5,
        &[
            ([1.0, 1.0, -1.0], 1.0),
            ([1.0, -1.0, 1.0], 1.0),
            ([-1.0, 1.0, 1.0], 1.0),
            ([-1.0, -1.0, -1.0], 1.0),
        ],
        8.0 / 3.0,
    )
}

fn cube() -> Solid {
    // The paper's Cube: side 2, V = 8; ICP identifies it exactly (σ = 0).
    parsed(
        "Cube",
        SolidGroup::ConvexPolyhedra,
        "var x in [-2, 2]; var y in [-2, 2]; var z in [-2, 2];
         pc x >= -1 && x <= 1 && y >= -1 && y <= 1 && z >= -1 && z <= 1;",
        8.0,
    )
}

fn icosahedron() -> Solid {
    // Regular icosahedron with unit edge: V = 5(3+√5)/12 ≈ 2.181695 (the
    // paper's value). Faces: 20 half-spaces whose normals are the vertex
    // directions of the dual dodecahedron; inradius r = φ²/(2√3).
    let phi = (1.0 + 5f64.sqrt()) / 2.0;
    let r = phi * phi / (2.0 * 3f64.sqrt());
    let mut faces = Vec::new();
    // (±1, ±1, ±1)
    for sx in [-1.0, 1.0] {
        for sy in [-1.0, 1.0] {
            for sz in [-1.0, 1.0] {
                faces.push(([sx, sy, sz], 3f64.sqrt()));
            }
        }
    }
    // Cyclic permutations of (0, ±1/φ, ±φ).
    let a = 1.0 / phi;
    let b = phi;
    for s1 in [-1.0, 1.0] {
        for s2 in [-1.0, 1.0] {
            faces.push(([0.0, s1 * a, s2 * b], (a * a + b * b).sqrt()));
            faces.push(([s1 * a, s2 * b, 0.0], (a * a + b * b).sqrt()));
            faces.push(([s2 * b, 0.0, s1 * a], (a * a + b * b).sqrt()));
        }
    }
    // Normalize each face to n̂·x ≤ r.
    let faces: Vec<([f64; 3], f64)> = faces
        .into_iter()
        .map(|(n, len)| ([n[0] / len, n[1] / len, n[2] / len], r))
        .collect();
    let volume = 5.0 * (3.0 + 5f64.sqrt()) / 12.0;
    let mut s = polyhedron("Icosahedron", 1.1, &faces, volume);
    s.group = SolidGroup::ConvexPolyhedra;
    s
}

fn rhombicuboctahedron() -> Solid {
    // Vertices: all permutations of (±1, ±1, ±(1+√2)) — edge 2.
    // V = (12 + 10√2)/3 · a³ with a = 2.
    let s2 = 2f64.sqrt();
    let mut faces: Vec<([f64; 3], f64)> = Vec::new();
    // 6 axis faces: |xi| ≤ 1+√2.
    for i in 0..3 {
        for sign in [-1.0, 1.0] {
            let mut n = [0.0; 3];
            n[i] = sign;
            faces.push((n, 1.0 + s2));
        }
    }
    // 12 edge faces: |±xi ± xj| ≤ 2+√2.
    for (i, j) in [(0, 1), (0, 2), (1, 2)] {
        for si in [-1.0, 1.0] {
            for sj in [-1.0, 1.0] {
                let mut n = [0.0; 3];
                n[i] = si;
                n[j] = sj;
                faces.push((n, 2.0 + s2));
            }
        }
    }
    // 8 corner faces: |±x ± y ± z| ≤ 3+√2... each sign pattern.
    for sx in [-1.0, 1.0] {
        for sy in [-1.0, 1.0] {
            for sz in [-1.0, 1.0] {
                faces.push(([sx, sy, sz], 3.0 + s2));
            }
        }
    }
    let volume = (12.0 + 10.0 * s2) / 3.0 * 8.0;
    polyhedron("Rhombicuboctahedron", 2.6, &faces, volume)
}

fn cone() -> Solid {
    // R = 1, h = 1: V = π/3 ≈ 1.047198 (the paper's value).
    parsed(
        "Cone",
        SolidGroup::Revolution,
        "var x in [-1.2, 1.2]; var y in [-1.2, 1.2]; var z in [-0.2, 1.2];
         pc x*x + y*y <= (1 - z) * (1 - z) && z >= 0 && z <= 1;",
        PI / 3.0,
    )
}

fn conical_frustum() -> Solid {
    // R = 1, r = ½, h = 1: V = πh(R² + Rr + r²)/3 = 7π/12 ≈ 1.8326 (the
    // paper's value).
    parsed(
        "Conical frustum",
        SolidGroup::Revolution,
        "var x in [-1.2, 1.2]; var y in [-1.2, 1.2]; var z in [-0.2, 1.2];
         pc x*x + y*y <= (1 - 0.5 * z) * (1 - 0.5 * z) && z >= 0 && z <= 1;",
        7.0 * PI / 12.0,
    )
}

fn cylinder() -> Solid {
    parsed(
        "Cylinder",
        SolidGroup::Revolution,
        "var x in [-1.2, 1.2]; var y in [-1.2, 1.2]; var z in [-0.2, 1.2];
         pc x*x + y*y <= 1 && z >= 0 && z <= 1;",
        PI,
    )
}

fn oblate_spheroid() -> Solid {
    // a = b = 2, c = 1: V = 4π a²c / 3 ≈ 16.755161 (the paper's value).
    parsed(
        "Oblate spheroid",
        SolidGroup::Revolution,
        "var x in [-2.2, 2.2]; var y in [-2.2, 2.2]; var z in [-1.2, 1.2];
         pc x*x / 4 + y*y / 4 + z*z <= 1;",
        16.0 * PI / 3.0,
    )
}

fn sphere() -> Solid {
    parsed(
        "Sphere",
        SolidGroup::Revolution,
        "var x in [-1.2, 1.2]; var y in [-1.2, 1.2]; var z in [-1.2, 1.2];
         pc x*x + y*y + z*z <= 1;",
        4.0 * PI / 3.0,
    )
}

fn spherical_segment() -> Solid {
    // Sphere R = 4 sliced at z = 1 and z = 3:
    // V = π ∫₁³ (16 − z²) dz = 70π/3.
    parsed(
        "Spherical segment",
        SolidGroup::Revolution,
        "var x in [-4, 4]; var y in [-4, 4]; var z in [0, 4];
         pc x*x + y*y + z*z <= 16 && z >= 1 && z <= 3;",
        70.0 * PI / 3.0,
    )
}

fn torus() -> Solid {
    // R = ½, r = √⅛: V = 2π²Rr² = π²/8 ≈ 1.233701 (the paper's value).
    parsed(
        "Torus",
        SolidGroup::Revolution,
        "var x in [-1, 1]; var y in [-1, 1]; var z in [-0.5, 0.5];
         pc (sqrt(x*x + y*y) - 0.5) * (sqrt(x*x + y*y) - 0.5) + z*z <= 0.125;",
        PI * PI / 8.0,
    )
}

fn two_spheres() -> Solid {
    // Equal spheres R = 2 centred at the origin and (0,0,2): lens volume
    // V = π(2R−d)²(d+4R)/12 with d = 2 → 10π/3.
    parsed(
        "Two spheres intersection",
        SolidGroup::Intersection,
        "var x in [-2, 2]; var y in [-2, 2]; var z in [-2, 4];
         pc x*x + y*y + z*z <= 4 && x*x + y*y + (z - 2) * (z - 2) <= 4;",
        10.0 * PI / 3.0,
    )
}

fn cone_cylinder() -> Solid {
    // Cylinder x²+y² ≤ 1 intersected with the cone x²+y² ≤ (2−z)² for
    // z ∈ [0, 2]: V = π·1 (cylinder part, z ≤ 1) + π/3 (cone tip) = 4π/3.
    parsed(
        "Cone-cylinder intersection",
        SolidGroup::Intersection,
        "var x in [-1.5, 1.5]; var y in [-1.5, 1.5]; var z in [-0.5, 2.5];
         pc x*x + y*y <= 1 && x*x + y*y <= (2 - z) * (2 - z) && z >= 0 && z <= 2;",
        4.0 * PI / 3.0,
    )
}

/// All 13 Table 2 subjects, in the paper's row order.
pub fn all_solids() -> Vec<Solid> {
    vec![
        tetrahedron(),
        cube(),
        icosahedron(),
        rhombicuboctahedron(),
        cone(),
        conical_frustum(),
        cylinder(),
        oblate_spheroid(),
        sphere(),
        spherical_segment(),
        torus(),
        two_spheres(),
        cone_cylinder(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force Monte Carlo cross-check of every closed-form volume.
    #[test]
    fn analytic_volumes_match_monte_carlo() {
        let mut rng = SmallRng::seed_from_u64(20140609);
        for solid in all_solids() {
            let n = 200_000;
            let mut hits = 0u64;
            let bounds: Vec<(f64, f64)> = solid.domain.iter().map(|(_, v)| (v.lo, v.hi)).collect();
            let mut p = vec![0.0; 3];
            for _ in 0..n {
                for (i, &(lo, hi)) in bounds.iter().enumerate() {
                    p[i] = rng.gen_range(lo..hi);
                }
                if solid.constraint_set.holds(&p) {
                    hits += 1;
                }
            }
            let est = hits as f64 / n as f64 * solid.domain_volume();
            let rel = (est - solid.analytic_volume).abs() / solid.analytic_volume;
            assert!(
                rel < 0.03,
                "{}: MC {est:.4} vs analytic {:.4} (rel err {rel:.4})",
                solid.name,
                solid.analytic_volume
            );
        }
    }

    #[test]
    fn thirteen_subjects_in_three_groups() {
        let solids = all_solids();
        assert_eq!(solids.len(), 13);
        assert_eq!(
            solids
                .iter()
                .filter(|s| s.group == SolidGroup::ConvexPolyhedra)
                .count(),
            4
        );
        assert_eq!(
            solids
                .iter()
                .filter(|s| s.group == SolidGroup::Revolution)
                .count(),
            7
        );
        assert_eq!(
            solids
                .iter()
                .filter(|s| s.group == SolidGroup::Intersection)
                .count(),
            2
        );
    }

    #[test]
    fn solids_fit_strictly_inside_their_domains() {
        // The domain must be larger than the solid (otherwise estimating
        // the volume as a domain fraction is trivial/degenerate) except
        // for deliberately tight axes (cube is the σ=0 showcase).
        for solid in all_solids() {
            let p = solid.exact_probability();
            assert!(
                p > 0.01 && p < 0.99,
                "{}: probability {p} out of useful range",
                solid.name
            );
        }
    }

    #[test]
    fn paper_matched_values() {
        let solids = all_solids();
        let by_name = |n: &str| {
            solids
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        assert_eq!(by_name("Cube").analytic_volume, 8.0);
        assert!((by_name("Icosahedron").analytic_volume - 2.181695).abs() < 1e-6);
        assert!((by_name("Cone").analytic_volume - std::f64::consts::FRAC_PI_3).abs() < 1e-6);
        assert!((by_name("Conical frustum").analytic_volume - 1.8326).abs() < 1e-4);
        assert!((by_name("Oblate spheroid").analytic_volume - 16.755161).abs() < 1e-6);
        assert!((by_name("Torus").analytic_volume - 1.233701).abs() < 1e-6);
    }

    #[test]
    fn icosahedron_contains_center_and_excludes_corner() {
        let ico = icosahedron();
        assert!(ico.constraint_set.holds(&[0.0, 0.0, 0.0]));
        assert!(!ico.constraint_set.holds(&[1.0, 1.0, 1.0]));
        // A point near a vertex direction at the circumradius ≈ 0.951.
        assert!(ico.constraint_set.holds(&[0.0, 0.0, 0.7]));
    }
}
