//! Benchmark subjects for the qCORAL evaluation.
//!
//! Three families, one per paper table:
//!
//! * [`solids`] — the 13 geometric micro-benchmarks of Table 2 (convex
//!   polyhedra, solids of revolution, intersections of solids) with
//!   closed-form reference volumes.
//! * [`volcomp_suite`] — re-creations of the eight VolComp-benchmark
//!   subjects of Table 3 (ATRIAL, CART, CORONARY, EGFR EPI, EGFR EPI
//!   SIMPLE, INVPEND, PACK, VOL) as MiniJ programs with the paper's
//!   assertions. The original benchmark tarball is no longer distributed;
//!   these synthetic equivalents preserve the *computational shape* the
//!   paper describes (risk-score cascades, controller loops, packing
//!   loops) — see DESIGN.md for the substitution rationale.
//! * [`aerospace`] — re-creations of the Table 4 subjects: the Apollo
//!   autopilot (a generated many-path sqrt-heavy pipeline), the TSAFE
//!   Conflict Probe (cos/pow/sin/sqrt/tan) and TSAFE Turn Logic (atan2).
//!
//! Two further families extend the evaluation beyond the paper:
//!
//! * [`nonuniform`] — VolComp subjects paired with realistic non-uniform
//!   usage profiles (clinical populations, near-equilibrium controller
//!   states, exponential inflows), the scenario axis the paper's
//!   conclusion proposes.
//! * [`rare`] — ~1e-8 events with closed-form ground truth, the
//!   validation suite for the adaptive importance-sampling engine
//!   (`qcoral_mc::is`).

#![warn(missing_docs)]

pub mod aerospace;
pub mod nonuniform;
pub mod rare;
pub mod solids;
pub mod volcomp_suite;

pub use aerospace::{aerospace_subjects, aerospace_subjects_with, AerospaceSubject};
pub use nonuniform::{nonuniform_subjects, NonUniformSubject};
pub use rare::{rare_subjects, RareSubject};
pub use solids::{all_solids, Solid, SolidGroup};
pub use volcomp_suite::{table3_subjects, Table3Subject};
