//! Re-creations of the Table 4 aerospace subjects.
//!
//! The paper's artifacts (the Simulink-to-Java Apollo translation and the
//! TSAFE sources) are not publicly available; these programs reproduce
//! the *analysis stress points* the paper identifies in §6.3:
//!
//! * **Apollo** — many path conditions (the paper analyzed 5 779; this
//!   generated pipeline yields several hundred), `sqrt`-heavy guards, and
//!   three independent control axes whose constraints partition cleanly
//!   (which is what makes `PARTCACHE` pay off on Apollo in Table 4).
//! * **Conflict** (TSAFE Conflict Probe) — two-aircraft closest-approach
//!   geometry exercising exactly the paper's function inventory: `cos`,
//!   `pow`, `sin`, `sqrt`, `tan`; few paths, heavy variable coupling.
//! * **Turn Logic** — `atan2`-based heading change with bounded
//!   normalization loops.
//!
//! Following the paper's protocol, the quantified property is "execution
//! takes one of the first 70% of paths in bounded depth-first order"
//! (the paper picks 70% "to avoid obtaining a probability close to 0 or
//! 1").

use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_symexec::{parse_program, symbolic_execute, SymConfig, SymResult};

/// One Table 4 subject.
#[derive(Clone, Debug)]
pub struct AerospaceSubject {
    /// Subject name as printed in the table.
    pub name: &'static str,
    /// MiniJ source.
    pub source: String,
    /// Fraction of PCs (in DFS order) forming the quantified property.
    pub fraction: f64,
}

impl AerospaceSubject {
    /// Runs symbolic execution and returns the full result.
    ///
    /// # Panics
    ///
    /// Panics if the generated source fails to parse (a bug in the
    /// subject definitions).
    pub fn execute(&self, cfg: &SymConfig) -> SymResult {
        let prog =
            parse_program(&self.source).unwrap_or_else(|e| panic!("subject {}: {e}", self.name));
        symbolic_execute(&prog, cfg)
    }

    /// The paper's Table 4 protocol: all complete-path PCs are generated
    /// and the first `fraction` of them (bounded depth-first order) form
    /// the quantified constraint set.
    pub fn constraint_set(&self, cfg: &SymConfig) -> (Domain, ConstraintSet) {
        let r = self.execute(cfg);
        let keep =
            ((r.complete.len() as f64 * self.fraction).ceil() as usize).min(r.complete.len());
        let cs = r
            .complete
            .iter()
            .take(keep)
            .map(|(pc, _)| pc.clone())
            .collect();
        (r.domain, cs)
    }
}

/// Generates the Apollo-like autopilot pipeline: three independent
/// control axes (pitch/roll/yaw), each a cascade of `stages` sqrt-guard
/// stages over its own pair of inputs.
pub fn apollo_source(stages: usize) -> String {
    let axes = [
        ("pitch", "pa", "pb", 0.35),
        ("roll", "ra", "rb", 0.45),
        ("yaw", "ya", "yb", 0.55),
    ];
    let mut src = String::from("program apollo(");
    let mut first = true;
    for (_, a, b, _) in &axes {
        for v in [a, b] {
            if !first {
                src.push_str(", ");
            }
            first = false;
            src.push_str(&format!("{v} in [-1, 1]"));
        }
    }
    src.push_str(") {\n");
    for (axis, a, b, gain) in &axes {
        src.push_str(&format!("  double u_{axis} = 0;\n"));
        for s in 0..stages {
            let c = 0.3 + 0.15 * s as f64;
            let k = gain + 0.05 * s as f64;
            src.push_str(&format!(
                "  double e_{axis}_{s} = sqrt({a} * {a} + {b} * {b}) - {c};\n\
                 \x20 if (e_{axis}_{s} > 0) {{ u_{axis} = u_{axis} + {k} * e_{axis}_{s}; }}\n\
                 \x20 else {{ u_{axis} = u_{axis} - {k2} * e_{axis}_{s}; }}\n",
                k2 = k * 0.5,
            ));
        }
    }
    // Supervisor call when any axis command saturates.
    src.push_str(
        "  if (u_pitch > 0.25) { target(); return; }\n\
         \x20 if (u_roll > 0.3) { target(); return; }\n\
         \x20 if (u_yaw > 0.35) { target(); return; }\n\
         \x20 return;\n}\n",
    );
    src
}

/// The TSAFE Conflict Probe: closest approach of two aircraft within a
/// time horizon, with a turning-geometry special case.
pub fn conflict_source() -> String {
    r#"program conflict(x1 in [0, 10], y1 in [0, 10], h1 in [0, 6.2831853],
                  v1 in [0.5, 2], x2 in [0, 10], y2 in [0, 10],
                  h2 in [0, 6.2831853], v2 in [0.5, 2]) {
  double dx = x2 - x1;
  double dy = y2 - y1;
  double rvx = v2 * cos(h2) - v1 * cos(h1);
  double rvy = v2 * sin(h2) - v1 * sin(h1);
  double dist2 = pow(dx, 2) + pow(dy, 2);
  if (dist2 < 4) { target(); return; }
  double rv2 = rvx * rvx + rvy * rvy;
  if (rv2 < 0.01) { return; }
  double closing = dx * rvx + dy * rvy;
  if (closing >= 0) { return; }
  double tca = (0 - closing) / rv2;
  if (tca > 3) {
    double dxh = dx + 3 * rvx;
    double dyh = dy + 3 * rvy;
    if (sqrt(dxh * dxh + dyh * dyh) < 2) { target(); }
    return;
  }
  double headingDiff = h2 - h1;
  if (headingDiff < 1.5 && headingDiff > -1.5) {
    if (tan(headingDiff) * tan(headingDiff) < 0.1) {
      double md2 = dist2 - closing * closing / rv2;
      if (md2 < 4) { target(); }
      return;
    }
  }
  double md2turn = dist2 - 0.8 * closing * closing / rv2;
  if (md2turn < 4) { target(); }
}
"#
    .to_owned()
}

/// TSAFE Turn Logic: required heading change towards a fix, normalized to
/// (−π, π] with bounded loops, then classified.
pub fn turn_logic_source() -> String {
    r#"program turn_logic(xo in [0, 10], yo in [0, 10], xf in [0, 10],
                    yf in [0, 10], heading in [-9.4247779, 9.4247779]) {
  double dx = xf - xo;
  double dy = yf - yo;
  double desired = atan2(dy, dx);
  double change = desired - heading;
  double guard = 0;
  while (change > 3.14159265358979 && guard < 3) {
    change = change - 6.28318530717959;
    guard = guard + 1;
  }
  while (change < -3.14159265358979 && guard < 6) {
    change = change + 6.28318530717959;
    guard = guard + 1;
  }
  if (change > 0.52) {
    if (change > 1.57) { target(); return; }
    target(); return;
  }
  if (change < -0.52) {
    if (change < -1.57) { target(); return; }
    target(); return;
  }
  return;
}
"#
    .to_owned()
}

/// The three Table 4 subjects in the paper's row order. `apollo_stages`
/// controls the Apollo path count (3 axes × `stages` binary stages →
/// up to `3·2^stages`-ish complete paths; the default bench uses 7).
pub fn aerospace_subjects_with(apollo_stages: usize) -> Vec<AerospaceSubject> {
    vec![
        AerospaceSubject {
            name: "Apollo",
            source: apollo_source(apollo_stages),
            fraction: 0.7,
        },
        AerospaceSubject {
            name: "Conflict",
            source: conflict_source(),
            fraction: 0.7,
        },
        AerospaceSubject {
            name: "Turn Logic",
            source: turn_logic_source(),
            fraction: 0.7,
        },
    ]
}

/// The default Table 4 subject set (Apollo with 7 stages per axis).
pub fn aerospace_subjects() -> Vec<AerospaceSubject> {
    aerospace_subjects_with(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apollo_generates_many_paths() {
        let subj = &aerospace_subjects_with(5)[0];
        let r = subj.execute(&SymConfig::default());
        assert!(
            r.paths > 50,
            "Apollo should be a many-path subject, got {}",
            r.paths
        );
        assert!(r.bound_hit.is_empty(), "no loops: no bound hits");
        let (_, cs) = subj.constraint_set(&SymConfig::default());
        assert!((cs.len() as f64) <= r.paths as f64 * 0.71);
        assert!((cs.len() as f64) >= r.paths as f64 * 0.69);
    }

    #[test]
    fn apollo_axes_partition_independently() {
        use qcoral::dependency_partition;
        let subj = &aerospace_subjects_with(3)[0];
        let (domain, cs) = subj.constraint_set(&SymConfig::default());
        let classes = dependency_partition(&cs, domain.len());
        // pitch, roll and yaw inputs never mix: three classes of two.
        assert_eq!(classes.len(), 3, "{classes:?}");
        assert!(classes.iter().all(|c| c.count() == 2));
    }

    #[test]
    fn conflict_has_target_and_nontarget_paths() {
        let subj = &aerospace_subjects()[1];
        let r = subj.execute(&SymConfig::default());
        assert!(!r.target.is_empty(), "conflicts must be reachable");
        assert!(!r.no_target.is_empty(), "safe paths must exist");
        assert!(r.paths >= 8, "got {} paths", r.paths);
        // Immediate-conflict input: co-located aircraft.
        assert!(r.target.holds(&[5.0, 5.0, 0.0, 1.0, 5.1, 5.1, 0.0, 1.0]));
    }

    #[test]
    fn turn_logic_covers_quadrants() {
        let subj = &aerospace_subjects()[2];
        let r = subj.execute(&SymConfig::default());
        assert!(!r.target.is_empty());
        assert!(r.paths >= 6, "got {} paths", r.paths);
        // Target eastwards from the origin with a north heading: change
        // ≈ -π/2 → |change| > 0.52 → target.
        assert!(r
            .target
            .holds(&[0.0, 0.0, 10.0, 0.0, std::f64::consts::FRAC_PI_2]));
    }

    #[test]
    fn fraction_selection_is_prefix_of_dfs_order() {
        let subj = &aerospace_subjects_with(3)[0];
        let r = subj.execute(&SymConfig::default());
        let (_, cs) = subj.constraint_set(&SymConfig::default());
        for (i, pc) in cs.pcs().iter().enumerate() {
            assert_eq!(pc, &r.complete[i].0, "PC {i} must match DFS order");
        }
    }

    #[test]
    fn function_inventory_matches_paper() {
        // §6.3 lists cos, pow, sin, sqrt, tan for Conflict and atan2 for
        // Turn Logic.
        let conflict = conflict_source();
        for f in ["cos(", "pow(", "sin(", "sqrt(", "tan("] {
            assert!(conflict.contains(f), "Conflict must use {f}");
        }
        assert!(turn_logic_source().contains("atan2("));
        assert!(apollo_source(3).contains("sqrt("));
    }
}
