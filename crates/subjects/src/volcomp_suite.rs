//! Re-creations of the VolComp benchmark subjects (paper Table 3).
//!
//! The original benchmark \[2\] is no longer distributed; each subject here
//! is a MiniJ program with the *computational shape* the paper describes,
//! paired with the paper's assertion labels:
//!
//! * **ATRIAL / CORONARY** — Framingham-style medical risk calculators:
//!   cascades of input-bracket branches accumulating scores. Score
//!   accumulations of constants fold to per-path constants (reproducing
//!   the paper's "0 arithmetic ops" rows), while error terms carry
//!   continuous arithmetic.
//! * **CART** — an iterated steering controller whose state is a growing
//!   polynomial in the inputs (the paper's "highly skewed polynomial"
//!   that defeats branch-and-bound).
//! * **EGFR EPI (+ SIMPLE)** — piecewise-linear kidney-function
//!   estimators compared against each other.
//! * **INVPEND** — a linearized inverted-pendulum step loop: a single
//!   path with a long linear constraint.
//! * **PACK** — a greedy weight-packing sequence: path explosion with
//!   concrete per-path counters (count assertions fold; totalWeight
//!   assertions link every input, defeating partitioning — the paper's
//!   observed slow case).
//! * **VOL** — a tank-filling loop: few paths, each with a deep chain of
//!   accumulated-inflow constraints.

use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_symexec::{parse_program, symbolic_execute, SymConfig};

/// One Table 3 subject: a program body plus the paper's assertions.
#[derive(Clone, Debug)]
pub struct Table3Subject {
    /// Subject name as printed in the table.
    pub name: &'static str,
    /// `program …(params…) {` header plus the body computing the outputs
    /// (without the final assertion or closing brace).
    prefix: String,
    /// `(label, condition)` pairs; the condition goes into a final
    /// `check(...)` statement.
    pub assertions: Vec<(&'static str, &'static str)>,
}

impl Table3Subject {
    /// Complete MiniJ source for assertion `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn source_for(&self, idx: usize) -> String {
        let (_, cond) = self.assertions[idx];
        format!("{}\n  check({cond});\n}}\n", self.prefix)
    }

    /// Symbolically executes the subject for assertion `idx`, returning
    /// the input domain and the target-event constraint set.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the subject fails to parse
    /// (a bug in the subject definitions).
    pub fn system_for(&self, idx: usize, cfg: &SymConfig) -> (Domain, ConstraintSet) {
        let src = self.source_for(idx);
        let prog =
            parse_program(&src).unwrap_or_else(|e| panic!("subject {}: {e}\n{src}", self.name));
        let r = symbolic_execute(&prog, cfg);
        (r.domain, r.target)
    }
}

fn atrial() -> Table3Subject {
    // Atrial-fibrillation risk: age/SBP/BMI/PR-interval bracket cascades.
    // `points` accumulates integer scores (concrete per path); `err`
    // carries a continuous measurement-error estimate.
    let prefix = r#"program atrial(age in [45, 95], sbp in [90, 190], bmi in [15, 50], pr in [120, 220]) {
  double points = 0;
  double err = 0;
  if (age < 50)      { points = points + 0; err = err + 0.02 * (age - 45); }
  else if (age < 55) { points = points + 1; err = err + 0.03 * (age - 50); }
  else if (age < 65) { points = points + 2; err = err + 0.04 * (age - 55); }
  else if (age < 75) { points = points + 4; err = err + 0.05 * (age - 65); }
  else               { points = points + 6; err = err + 0.06 * (age - 75); }
  if (sbp < 120)      { points = points + 0; err = err + 0.01 * (sbp - 90); }
  else if (sbp < 140) { points = points + 1; err = err + 0.02 * (sbp - 120); }
  else if (sbp < 160) { points = points + 2; err = err + 0.03 * (sbp - 140); }
  else                { points = points + 3; err = err + 0.04 * (sbp - 160); }
  if (bmi < 25)      { points = points + 0; err = err + 0.05 * (bmi - 15); }
  else if (bmi < 30) { points = points + 1; err = err + 0.06 * (bmi - 25); }
  else               { points = points + 2; err = err + 0.07 * (bmi - 30); }
  if (pr < 160)      { points = points + 0; err = err + 0.01 * (pr - 120); }
  else if (pr < 200) { points = points + 1; err = err + 0.02 * (pr - 160); }
  else               { points = points + 2; err = err + 0.03 * (pr - 200); }
  double pointsErr = points - err;"#;
    Table3Subject {
        name: "ATRIAL",
        prefix: prefix.to_owned(),
        assertions: vec![
            ("points >= 10", "points >= 10"),
            ("points - pointsErr >= 5", "points - pointsErr >= 5"),
            ("pointsErr - points <= 5", "pointsErr - points <= 5"),
        ],
    }
}

fn cart() -> Table3Subject {
    // Steering controller under wind disturbance: three control steps;
    // the position/velocity state is a polynomial of growing degree in
    // (pos, vel, wind), skewed by the correction branches.
    let prefix = r#"program cart(pos in [-1, 1], vel in [-1, 1], wind in [-0.5, 0.5]) {
  double count = 0;
  double p = pos;
  double v = vel;
  double i = 0;
  while (i < 3) {
    p = p + 0.5 * v + 0.1 * wind;
    v = v + wind - 0.4 * p;
    if (p > 0.05 || p < -0.05) {
      count = count + 1;
      v = v * (0.5 + 0.1 * wind);
    }
    i = i + 1;
  }"#;
    Table3Subject {
        name: "CART",
        prefix: prefix.to_owned(),
        assertions: vec![("count >= 3", "count >= 3"), ("count >= 1", "count >= 1")],
    }
}

fn coronary() -> Table3Subject {
    // Framingham coronary risk: continuous weighted score with bracket
    // adjustments; the assertions probe the distribution tails.
    let prefix = r#"program coronary(age in [30, 74], chol in [150, 300], hdl in [20, 100]) {
  double tmp = 0.05 * (age - 52) + 0.025 * (chol - 225) - 0.06 * (hdl - 60);
  if (age < 40)      { tmp = tmp - 0.5; }
  else if (age < 60) { tmp = tmp + 0.1; }
  else               { tmp = tmp + 0.4; }
  if (hdl < 35) { tmp = tmp + 0.6; }
  if (chol > 280) { tmp = tmp + 0.5; }"#;
    Table3Subject {
        name: "CORONARY",
        prefix: prefix.to_owned(),
        assertions: vec![("tmp >= 5", "tmp >= 5"), ("tmp <= -5", "tmp <= -5")],
    }
}

fn egfr_epi() -> Table3Subject {
    // Two piecewise-linear eGFR estimators compared against each other.
    let prefix = r#"program egfr(scr in [0.4, 4], age in [18, 90], sex in [0, 1]) {
  double f = 0;
  double f1 = 0;
  if (scr < 0.9) { f = 141 - 80 * (scr - 0.9); } else { f = 141 - 30 * (scr - 0.9); }
  if (age < 40)      { f = f - 0.6 * (age - 40); }
  else if (age < 65) { f = f - 0.8 * (age - 40); }
  else               { f = f - 20 - 1.0 * (age - 65); }
  if (sex < 0.5) { f = f * 1.018; }
  if (scr < 0.7) { f1 = 144 - 85 * (scr - 0.7); } else { f1 = 144 - 32 * (scr - 0.7); }
  if (age < 40)      { f1 = f1 - 0.55 * (age - 40); }
  else if (age < 65) { f1 = f1 - 0.75 * (age - 40); }
  else               { f1 = f1 - 18.75 - 0.95 * (age - 65); }
  if (sex < 0.5) { f1 = f1 * 1.012; }"#;
    Table3Subject {
        name: "EGFR EPI",
        prefix: prefix.to_owned(),
        assertions: vec![
            ("f1 - f >= 0.1", "f1 - f >= 0.1"),
            ("f - f1 >= 0.1", "f - f1 >= 0.1"),
        ],
    }
}

fn egfr_simple() -> Table3Subject {
    let prefix = r#"program egfr_simple(scr in [0.4, 4], age in [18, 90]) {
  double f = 0;
  double f1 = 0;
  if (scr < 1.2) { f = 5.2 - 0.8 * scr; } else { f = 4.84 - 0.5 * scr; }
  if (scr < 1.0) { f1 = 5.1 - 0.7 * scr; } else { f1 = 4.9 - 0.5 * scr; }
  f = f - 0.002 * (age - 50);
  f1 = f1 - 0.003 * (age - 50);"#;
    Table3Subject {
        name: "EGFR EPI (SIMPLE)",
        prefix: prefix.to_owned(),
        assertions: vec![
            ("f1 <= 4.4 && f >= 4.6", "f1 <= 4.4 && f >= 4.6"),
            ("f1 >= 4.6 && f <= 4.4", "f1 >= 4.6 && f <= 4.4"),
        ],
    }
}

fn invpend() -> Table3Subject {
    // Linearized inverted pendulum, 8 Euler steps: the loop counter is
    // concrete, so symbolic execution yields a single path whose final
    // state is one long linear expression in (ang, vel) — the paper's
    // one-path, many-ops row.
    let prefix = r#"program invpend(ang in [-0.3, 0.3], vel in [-0.5, 0.5]) {
  double pAng = ang;
  double pVel = vel;
  double i = 0;
  while (i < 8) {
    pVel = pVel + 0.1 * (9.8 * pAng - 0.5 * pVel);
    pAng = pAng + 0.1 * pVel;
    i = i + 1;
  }"#;
    Table3Subject {
        name: "INVPEND",
        prefix: prefix.to_owned(),
        assertions: vec![("pAng <= 1", "pAng <= 1")],
    }
}

fn pack() -> Table3Subject {
    // Greedy packing of eight items into a weight-limited carton. The
    // per-path `count` is concrete (count assertions fold to constants —
    // the paper's 0-ops rows); `total` ties every weight together
    // (defeating partitioning — the paper's slow rows).
    let mut prefix = String::from(
        "program pack(w1 in [0, 1.5], w2 in [0, 1.5], w3 in [0, 1.5], w4 in [0, 1.5], \
         w5 in [0, 1.5], w6 in [0, 1.5], w7 in [0, 1.5], w8 in [0, 1.5]) {\n\
         \x20 double total = 0;\n\
         \x20 double count = 0;\n",
    );
    for i in 1..=8 {
        prefix.push_str(&format!(
            "  if (total + w{i} <= 6) {{ total = total + w{i}; count = count + 1; }}\n"
        ));
    }
    prefix.push_str("  double totalWeight = total;");
    Table3Subject {
        name: "PACK",
        prefix,
        assertions: vec![
            ("count >= 5", "count >= 5"),
            ("count >= 6", "count >= 6"),
            ("count >= 7", "count >= 7"),
            ("count >= 8", "count >= 8"),
            ("totalWeight >= 6", "totalWeight >= 6"),
            ("totalWeight >= 5", "totalWeight >= 5"),
            ("totalWeight >= 4", "totalWeight >= 4"),
        ],
    }
}

fn vol() -> Table3Subject {
    // Tank filling: the loop exits when the level reaches the threshold;
    // the iteration count is concrete per path, but every iteration
    // contributes an accumulated-inflow constraint, so late-exit paths
    // carry deep constraint chains (the paper's stress case).
    let prefix = r#"program vol(f1 in [0, 1], f2 in [0, 1]) {
  double level = 0;
  double count = 0;
  while (level < 10 && count < 24) {
    level = level + 0.3 + f1 + 0.5 * f2;
    count = count + 1;
  }"#;
    Table3Subject {
        name: "VOL",
        prefix: prefix.to_owned(),
        assertions: vec![("count >= 20", "count >= 20")],
    }
}

/// The eight Table 3 subjects in the paper's row order.
pub fn table3_subjects() -> Vec<Table3Subject> {
    vec![
        atrial(),
        cart(),
        coronary(),
        egfr_epi(),
        egfr_simple(),
        invpend(),
        pack(),
        vol(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_subjects_parse_and_execute() {
        for subj in table3_subjects() {
            for idx in 0..subj.assertions.len() {
                let (domain, cs) = subj.system_for(idx, &SymConfig::default());
                assert!(!domain.is_empty(), "{}", subj.name);
                // VOL/INVPEND-style assertions can be trivially false on
                // some subjects; everything else must yield target PCs.
                let (label, _) = subj.assertions[idx];
                if !cs.is_empty() {
                    assert!(cs.var_bound() <= domain.len());
                }
                eprintln!("{} [{}]: {} target PCs", subj.name, label, cs.len());
            }
        }
    }

    #[test]
    fn invpend_is_single_path() {
        let subj = invpend();
        let (_, cs) = subj.system_for(0, &SymConfig::default());
        assert_eq!(cs.len(), 1, "INVPEND must have exactly one target path");
        // The single PC is one linear atom over (ang, vel).
        assert_eq!(cs.atom_count(), 1);
        assert!(cs.op_count() > 20, "long linear expression expected");
    }

    #[test]
    fn pack_count_assertions_have_no_arith_ops() {
        // Mirrors the paper's Table 3: PACK `count ≥ k` rows show 0
        // arithmetic operations because the counter is concrete per path.
        let subj = pack();
        let (_, cs) = subj.system_for(0, &SymConfig::default()); // count >= 5
        assert!(!cs.is_empty());
        for pc in cs.pcs() {
            for atom in pc.atoms() {
                // Atoms only mention raw weights and constants.
                assert!(atom.lhs().op_count() <= 16);
            }
        }
    }

    #[test]
    fn atrial_points_assertion_folds_to_bracket_constraints() {
        let subj = atrial();
        let (domain, cs) = subj.system_for(0, &SymConfig::default()); // points >= 10
        assert!(!cs.is_empty());
        // points ≥ 10 needs high brackets everywhere: e.g. age ≥ 75,
        // sbp ≥ 160, bmi ≥ 30, pr ≥ 200 gives 6+3+2+2 = 13 ≥ 10.
        assert!(cs.holds(&[80.0, 170.0, 35.0, 210.0]));
        assert!(!cs.holds(&[46.0, 100.0, 20.0, 130.0]));
        assert_eq!(domain.len(), 4);
    }

    #[test]
    fn vol_paths_scale_with_exit_iteration() {
        let subj = vol();
        let (_, cs) = subj.system_for(0, &SymConfig::default()); // count >= 20
                                                                 // Exits before 20 iterations do not satisfy count >= 20; deep
                                                                 // paths do. Level gain per iteration ∈ [0.3, 1.8] ⇒ exit between
                                                                 // ceil(10/1.8)=6 and 24 iterations; count≥20 holds for slow fills.
        assert!(!cs.is_empty());
        // Slow fill: f1 = f2 = 0.05 → gain 0.375 → 27 iterations > 24 cap
        // → count = 24 ≥ 20.
        assert!(cs.holds(&[0.05, 0.05]));
        // Fast fill: f1 = f2 = 1 → gain 1.8 → exit at 6 < 20.
        assert!(!cs.holds(&[1.0, 1.0]));
    }

    #[test]
    fn cart_counts_are_monotone() {
        let subj = cart();
        let (_, cs3) = subj.system_for(0, &SymConfig::default());
        let (_, cs1) = subj.system_for(1, &SymConfig::default());
        // Every input satisfying count≥3 satisfies count≥1.
        for i in 0..10 {
            for j in 0..10 {
                let p = [-1.0 + 0.2 * i as f64, -1.0 + 0.2 * j as f64, 0.1];
                if cs3.holds(&p) {
                    assert!(cs1.holds(&p), "count≥3 ⊆ count≥1 violated at {p:?}");
                }
            }
        }
    }

    #[test]
    fn coronary_tails_are_rare_but_reachable() {
        let subj = coronary();
        let (_, hi) = subj.system_for(0, &SymConfig::default()); // tmp >= 5
                                                                 // Max tmp: age 74, chol 300, hdl 20 → 1.1+1.875+2.4+0.4+0.6... > 5.
        assert!(!hi.is_empty(), "tmp >= 5 must be reachable");
        assert!(hi.holds(&[74.0, 300.0, 20.0]));
        assert!(!hi.holds(&[40.0, 200.0, 80.0]));
    }
}
