//! Rare-event subjects with closed-form ground truth.
//!
//! Each subject asks a safety-style question — "what is the probability
//! of this ~1e-8 event?" — whose exact answer is known in closed form,
//! so the adaptive importance-sampling engine
//! ([`Allocation::ImportanceAdaptive`](qcoral_mc::Allocation)) can be
//! validated against truth and raced against plain stratified sampling
//! (`cargo bench -p qcoral-bench --bench rare`).
//!
//! The rarity is *profile-driven*, not geometric: the satisfying region
//! is macroscopic (a half-plane past a ridge, the outside of a disk),
//! but the usage profile's tails place ~1e-8 of the input mass there.
//! That is exactly the regime the ICP paver cannot finish on its own —
//! it certifies and rejects what it can, leaving boundary boxes that
//! straddle the constraint surface, and the conditional hit rate inside
//! them is ~1e-8: stratified sampling is blind, while the paver-seeded
//! proposal of [`qcoral_mc::is`] covers the boundary geometry directly.
//!
//! One subject, [`sin-peaks`](rare_subjects), is deliberately the
//! opposite regime — geometric needles (~4.5e-4-radius disks around the
//! peaks of `sin x + sin y`) that neither stratified sampling nor a
//! cold boundary-seeded proposal can find. Its documented role is to
//! exercise the *deterministic fallback* path (zero hits in the IS
//! pilot round ⇒ revert to stratified, flagged in
//! [`Stats::is_fallbacks`](../../qcoral/struct.Stats.html)).
//!
//! Ground-truth notes: domains are wide enough that conditioning the
//! profiles to them perturbs the stated truths by relative ~1e-10 or
//! less (normal tails beyond ±10σ, exponential tails beyond 40/λ),
//! orders of magnitude below any standard error these subjects are
//! quantified to. `sin-peaks`' truth is a second-order Taylor
//! approximation around the peaks, accurate to relative ~2e-7.

use std::f64::consts::PI;

use qcoral_constraints::parse::parse_system;
use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_mc::{std_normal_cdf, Dist, UsageProfile};

/// One rare-event subject: a constraint system, a usage profile and the
/// closed-form probability of the constrained event.
pub struct RareSubject {
    /// Display name.
    pub name: &'static str,
    /// Constraint-system source (`parse_system` syntax).
    pub source: &'static str,
    /// Closed-form event probability (see the module docs for the
    /// negligible domain-truncation caveat).
    truth: fn() -> f64,
    /// Builds the usage profile for the parsed domain.
    make_profile: fn(&Domain) -> UsageProfile,
    /// Whether a boundary-seeded proposal can see the event at all;
    /// `false` marks the designed-to-fall-back subject.
    pub is_reachable: bool,
}

impl RareSubject {
    /// Parses the subject and attaches its profile.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to parse (a bug in the
    /// subject definitions).
    pub fn system(&self) -> (ConstraintSet, Domain, UsageProfile) {
        let sys = parse_system(self.source)
            .unwrap_or_else(|e| panic!("subject {} must parse: {e:?}", self.name));
        let profile = (self.make_profile)(&sys.domain);
        (sys.constraint_set, sys.domain, profile)
    }

    /// The exact event probability.
    pub fn truth(&self) -> f64 {
        (self.truth)()
    }
}

/// Sets variable `name`'s marginal, by name.
fn with(profile: UsageProfile, domain: &Domain, name: &str, dist: Dist) -> UsageProfile {
    let id = domain
        .index_of(name)
        .unwrap_or_else(|| panic!("subject declares `{name}`"));
    profile.with_dist(id.index(), dist)
}

fn std_normals(d: &Domain) -> UsageProfile {
    let mut p = UsageProfile::uniform(d.len());
    for i in 0..d.len() {
        p = p.with_dist(i, Dist::normal(0.0, 1.0));
    }
    p
}

/// `P[x + y > 7.92]`, `x, y ~ N(0, 1)`: the sum is `N(0, 2)`, so the
/// truth is `Φ(-7.92 / √2)`.
fn sum_tail_2d_truth() -> f64 {
    std_normal_cdf(-7.92 / std::f64::consts::SQRT_2)
}

/// `P[x + y + z > 9.7]`, iid `N(0, 1)`: the sum is `N(0, 3)`.
fn sum_tail_3d_truth() -> f64 {
    std_normal_cdf(-9.7 / 3.0_f64.sqrt())
}

/// `P[x² + y² > 36.8]`, iid `N(0, 1)`: `x² + y²` is chi-squared with
/// two degrees of freedom, i.e. `Exp(1/2)`, so the tail is `e^{-18.4}`.
fn radius_tail_truth() -> f64 {
    (-18.4_f64).exp()
}

/// `P[x + y > 21.42]`, iid `Exp(1)` anchored at 0: the sum is
/// `Gamma(2, 1)`, so the tail is `(1 + t)·e^{-t}`.
fn exp_sum_tail_truth() -> f64 {
    22.42 * (-21.42_f64).exp()
}

/// `P[sin x + sin y > 2 − 1e−7]` under uniforms on `[-10, 10]²`: near a
/// peak pair, `sin x + sin y ≈ 2 − (dx² + dy²)/2`, so the event is a
/// disk of radius `√(2e−7)` around each of the 3×3 peak pairs —
/// `9·π·2e−7` of area over the 400-unit domain.
fn sin_peaks_truth() -> f64 {
    9.0 * PI * 2e-7 / 400.0
}

/// The rare-event suite. All truths are near 1e-8; `sin-peaks` is the
/// designed-fallback subject (see the module docs).
pub fn rare_subjects() -> Vec<RareSubject> {
    vec![
        RareSubject {
            name: "sum-tail-2d",
            source: "var x in [-10, 10]; var y in [-10, 10];
                     pc x + y > 7.92;",
            truth: sum_tail_2d_truth,
            make_profile: std_normals,
            is_reachable: true,
        },
        RareSubject {
            name: "sum-tail-3d",
            source: "var x in [-10, 10]; var y in [-10, 10]; var z in [-10, 10];
                     pc x + y + z > 9.7;",
            truth: sum_tail_3d_truth,
            make_profile: std_normals,
            is_reachable: true,
        },
        RareSubject {
            name: "radius-tail",
            source: "var x in [-10, 10]; var y in [-10, 10];
                     pc x * x + y * y > 36.8;",
            truth: radius_tail_truth,
            make_profile: std_normals,
            is_reachable: true,
        },
        RareSubject {
            name: "exp-sum-tail",
            source: "var x in [0, 40]; var y in [0, 40];
                     pc x + y > 21.42;",
            truth: exp_sum_tail_truth,
            make_profile: |d| {
                let p = UsageProfile::uniform(d.len());
                let p = with(p, d, "x", Dist::exponential(1.0));
                with(p, d, "y", Dist::exponential(1.0))
            },
            is_reachable: true,
        },
        RareSubject {
            name: "sin-peaks",
            source: "var x in [-10, 10]; var y in [-10, 10];
                     pc sin(x) + sin(y) > 1.9999999;",
            truth: sin_peaks_truth,
            make_profile: |d| UsageProfile::uniform(d.len()),
            is_reachable: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_subjects_parse_and_truths_are_rare() {
        for subj in rare_subjects() {
            let (cs, domain, profile) = subj.system();
            assert!(!cs.is_empty(), "{}: no path conditions", subj.name);
            assert_eq!(profile.len(), domain.len(), "{}: arity", subj.name);
            assert!(profile.validated().is_ok(), "{}", subj.name);
            let t = subj.truth();
            assert!(
                t > 1e-10 && t < 1e-6,
                "{}: truth {t:e} out of the rare band",
                subj.name
            );
        }
    }

    #[test]
    fn closed_forms_match_the_literature_values() {
        // Spot-check against independently computed magnitudes.
        let by_name = |n: &str| {
            rare_subjects()
                .into_iter()
                .find(|s| s.name == n)
                .unwrap()
                .truth()
        };
        assert!((by_name("sum-tail-2d") / 1.072e-8 - 1.0).abs() < 0.01);
        assert!((by_name("radius-tail") / 1.017e-8 - 1.0).abs() < 0.01);
        assert!((by_name("exp-sum-tail") / 1.108e-8 - 1.0).abs() < 0.01);
    }
}
