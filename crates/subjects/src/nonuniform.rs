//! Non-uniform usage-profile variants of the VolComp subjects.
//!
//! The paper evaluates under uniform profiles only; its conclusion (and
//! the ROADMAP's scenario-diversity axis) calls for realistic input
//! distributions. Each subject here pairs a Table 3 program with a
//! plausible operational profile — clinical populations concentrated
//! around typical vitals, control-system states concentrated near
//! equilibrium, arrival-rate-style exponentials — expressed with the
//! continuous [`Dist`] variants so masses are exact and sampling is
//! inverse-CDF conditional.
//!
//! These are the benchmark subjects of `cargo bench -p qcoral-bench
//! --bench profiles` (profile-aligned stratification versus
//! uniform-strata reweighting) and the non-uniform determinism/warm-store
//! test matrix.

use qcoral_constraints::{ConstraintSet, Domain};
use qcoral_mc::{Dist, UsageProfile};
use qcoral_symexec::SymConfig;

use crate::volcomp_suite::{table3_subjects, Table3Subject};

/// One profiled subject: a Table 3 program/assertion plus a non-uniform
/// usage profile over its inputs.
pub struct NonUniformSubject {
    /// Display name (`BASE·profile-tag`).
    pub name: &'static str,
    /// The Table 3 subject the program comes from.
    pub base: &'static str,
    /// Assertion index into the base subject.
    pub assertion: usize,
    /// Builds the profile for the subject's domain (named lookups, so
    /// the profile stays correct if parameter order ever changes).
    make_profile: fn(&Domain) -> UsageProfile,
}

impl NonUniformSubject {
    /// Symbolically executes the base subject and attaches the profile.
    ///
    /// # Panics
    ///
    /// Panics if the base subject is missing or fails to execute (a bug
    /// in the subject definitions).
    pub fn system(&self, cfg: &SymConfig) -> (Domain, ConstraintSet, UsageProfile) {
        let subjects = table3_subjects();
        let subj: &Table3Subject = subjects
            .iter()
            .find(|s| s.name == self.base)
            .unwrap_or_else(|| panic!("base subject {} exists", self.base));
        let (domain, cs) = subj.system_for(self.assertion, cfg);
        let profile = (self.make_profile)(&domain);
        (domain, cs, profile)
    }
}

/// Sets variable `name`'s marginal, by name.
fn with(profile: UsageProfile, domain: &Domain, name: &str, dist: Dist) -> UsageProfile {
    let id = domain
        .index_of(name)
        .unwrap_or_else(|| panic!("subject declares `{name}`"));
    profile.with_dist(id.index(), dist)
}

fn coronary_clinic(d: &Domain) -> UsageProfile {
    // A screening-clinic population: middle-aged, cholesterol and HDL
    // concentrated around typical values instead of spread over the
    // whole physiological range.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "age", Dist::truncated_normal(52.0, 9.0, 30.0, 74.0));
    let p = with(p, d, "chol", Dist::normal(225.0, 28.0));
    with(p, d, "hdl", Dist::normal(55.0, 13.0))
}

fn cart_calm(d: &Domain) -> UsageProfile {
    // The cart usually starts near equilibrium; gusts are small and
    // symmetric.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "pos", Dist::normal(0.0, 0.3));
    let p = with(p, d, "vel", Dist::normal(0.0, 0.3));
    with(p, d, "wind", Dist::truncated_normal(0.0, 0.12, -0.5, 0.5))
}

fn invpend_stable(d: &Domain) -> UsageProfile {
    // Disturbances around the upright equilibrium: small angles, small
    // velocities.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "ang", Dist::normal(0.0, 0.09));
    with(p, d, "vel", Dist::normal(0.0, 0.15))
}

fn vol_trickle(d: &Domain) -> UsageProfile {
    // Inflows are usually small (exponentially distributed rates), which
    // makes the slow-fill deep paths the *common* case instead of a
    // corner.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "f1", Dist::exponential(4.0));
    with(p, d, "f2", Dist::exponential(4.0))
}

fn atrial_elderly(d: &Domain) -> UsageProfile {
    // A cardiology-ward population: older, hypertensive-leaning.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "age", Dist::truncated_normal(68.0, 10.0, 45.0, 95.0));
    let p = with(p, d, "sbp", Dist::normal(138.0, 16.0));
    let p = with(p, d, "bmi", Dist::normal(27.0, 4.0));
    with(p, d, "pr", Dist::normal(168.0, 24.0))
}

fn egfr_renal(d: &Domain) -> UsageProfile {
    // Renal-clinic creatinine skews low-normal with a long high tail
    // (exponential from the domain floor); ages skew old.
    let p = UsageProfile::uniform(d.len());
    let p = with(p, d, "scr", Dist::exponential(1.4));
    with(p, d, "age", Dist::truncated_normal(62.0, 14.0, 18.0, 90.0))
}

/// The non-uniform VolComp suite: Table 3 subjects under realistic
/// operational profiles.
pub fn nonuniform_subjects() -> Vec<NonUniformSubject> {
    vec![
        NonUniformSubject {
            name: "CORONARY·clinic",
            base: "CORONARY",
            assertion: 0,
            make_profile: coronary_clinic,
        },
        NonUniformSubject {
            name: "CART·calm",
            base: "CART",
            assertion: 1,
            make_profile: cart_calm,
        },
        NonUniformSubject {
            name: "INVPEND·stable",
            base: "INVPEND",
            assertion: 0,
            make_profile: invpend_stable,
        },
        NonUniformSubject {
            name: "VOL·trickle",
            base: "VOL",
            assertion: 0,
            make_profile: vol_trickle,
        },
        NonUniformSubject {
            name: "ATRIAL·elderly",
            base: "ATRIAL",
            assertion: 0,
            make_profile: atrial_elderly,
        },
        NonUniformSubject {
            name: "EGFR·renal",
            base: "EGFR EPI",
            assertion: 0,
            make_profile: egfr_renal,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiled_subjects_execute_and_profiles_fit() {
        for subj in nonuniform_subjects() {
            let (domain, cs, profile) = subj.system(&SymConfig::default());
            assert_eq!(profile.len(), domain.len(), "{}: profile arity", subj.name);
            assert!(!cs.is_empty(), "{}: no target paths", subj.name);
            assert!(!profile.is_uniform(), "{}: profile is uniform", subj.name);
            // Every profile re-validates through the checked constructors.
            assert!(profile.validated().is_ok(), "{}", subj.name);
        }
    }

    #[test]
    fn profiles_shift_probabilities_away_from_uniform() {
        use qcoral::{Analyzer, Options};
        // VOL·trickle: small inflows make the deep (count ≥ 20) paths
        // far more likely than under the uniform profile.
        let subj = nonuniform_subjects()
            .into_iter()
            .find(|s| s.name == "VOL·trickle")
            .unwrap();
        let (domain, cs, profile) = subj.system(&SymConfig::default());
        let analyzer = Analyzer::new(Options::strat().with_samples(4_000));
        let uniform = analyzer
            .analyze(&cs, &domain, &UsageProfile::uniform(domain.len()))
            .estimate
            .mean;
        let skewed = analyzer.analyze(&cs, &domain, &profile).estimate.mean;
        assert!(
            skewed > uniform * 2.0,
            "trickle profile must amplify deep paths: {skewed} vs {uniform}"
        );
    }
}
