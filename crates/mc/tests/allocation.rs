//! Property-based invariants of the sample-allocation policies: for any
//! budget, stratum count, weights and observed standard deviations,
//!
//! 1. no `Allocation` variant spends more than the budget plus at most
//!    one sample per stratum (the unavoidable ≥1 floor when the budget
//!    cannot cover every stratum),
//! 2. the initial pass gives every non-exact stratum at least one
//!    sample, and
//! 3. Neyman follow-up (`VarianceAdaptive`'s second phase, and every
//!    refinement round of `analyze_iterative`) assigns **zero** samples
//!    to variance-0 strata and never exceeds its budget at all.

use proptest::prelude::*;
use qcoral_mc::{initial_allocation, neyman_allocation, proportional_split, Allocation};

fn any_allocation() -> impl Strategy<Value = Allocation> {
    prop_oneof![
        Just(Allocation::EqualPerStratum),
        Just(Allocation::Proportional),
        Just(Allocation::VarianceAdaptive),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Invariant 1 + 2 for the initial pass of every variant (for
    /// `VarianceAdaptive` the initial pass is the pilot; its follow-up
    /// budget is covered by `adaptive_two_phase_respects_budget`).
    #[test]
    fn initial_allocation_bounds_spend_and_floors_at_one(
        allocation in any_allocation(),
        total in 1u64..5_000,
        w in prop::collection::vec(0.0f64..1.0, 1..24),
    ) {
        let counts = initial_allocation(allocation, total, &w);
        prop_assert_eq!(counts.len(), w.len());
        let spent: u64 = counts.iter().sum();
        let k = w.len() as u64;
        prop_assert!(
            spent <= total + k,
            "{:?} spent {} on budget {} over {} strata",
            allocation, spent, total, k
        );
        // Overshoot only when the floor forces it, and then by at most
        // one sample per stratum.
        if spent > total {
            prop_assert!(counts.iter().all(|&c| c == 1) || allocation == Allocation::VarianceAdaptive,
                "overshoot must come from the one-sample floor: {:?}", counts);
            prop_assert!(spent <= total.max(k));
        }
        prop_assert!(counts.iter().all(|&c| c >= 1), "floor violated: {:?}", counts);
    }

    /// The VarianceAdaptive pilot plus a worst-case Neyman follow-up
    /// stays within the budget (modulo the pilot's own floor).
    #[test]
    fn adaptive_two_phase_respects_budget(
        total in 1u64..5_000,
        w in prop::collection::vec(0.0f64..1.0, 1..24),
        s in prop::collection::vec(0.0f64..0.5, 1..24),
    ) {
        let pilot = initial_allocation(Allocation::VarianceAdaptive, total, &w);
        let spent: u64 = pilot.iter().sum();
        let k = w.len() as u64;
        prop_assert!(spent <= (total / 2).max(1) + k);
        let stddevs: Vec<f64> = (0..w.len()).map(|i| s[i % s.len()]).collect();
        let follow = neyman_allocation(total.saturating_sub(spent), &w, &stddevs);
        let follow_spent: u64 = follow.iter().sum();
        prop_assert!(
            spent + follow_spent <= total.max(k),
            "two-phase spent {} + {} on budget {} over {} strata",
            spent, follow_spent, total, k
        );
    }

    /// Invariant 3: variance-0 strata get no follow-up samples, and the
    /// follow-up never exceeds its budget.
    #[test]
    fn neyman_excludes_exact_strata_and_respects_budget(
        total in 0u64..5_000,
        pairs in prop::collection::vec((0.0f64..1.0, prop_oneof![Just(0.0f64), 1e-6f64..0.5]), 1..24),
    ) {
        let (w, s): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let counts = neyman_allocation(total, &w, &s);
        prop_assert_eq!(counts.len(), w.len());
        prop_assert!(counts.iter().sum::<u64>() <= total);
        for (i, &c) in counts.iter().enumerate() {
            if w[i] * s[i] == 0.0 {
                prop_assert_eq!(c, 0, "variance-0 stratum {} received samples", i);
            }
        }
        // When anything is refinable the whole budget is placed.
        if w.iter().zip(&s).any(|(&w, &s)| w * s > 0.0) {
            prop_assert_eq!(counts.iter().sum::<u64>(), total);
        }
    }

    /// The largest-remainder core is exact: it spends the budget to the
    /// sample whenever any score is positive, and nothing otherwise.
    #[test]
    fn proportional_split_spends_exactly(
        total in 0u64..10_000,
        scores in prop::collection::vec(0.0f64..10.0, 1..32),
    ) {
        let counts = proportional_split(total, &scores);
        let expected = if scores.iter().any(|&s| s > 0.0) { total } else { 0 };
        prop_assert_eq!(counts.iter().sum::<u64>(), expected);
        for (i, &c) in counts.iter().enumerate() {
            if scores[i] <= 0.0 {
                prop_assert_eq!(c, 0);
            }
        }
    }
}
