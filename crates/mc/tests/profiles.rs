//! Property-based axioms of usage-profile marginals: for *every* `Dist`
//! variant over an arbitrary domain,
//!
//! 1. mass is additive over any partition of the domain and the pieces
//!    sum to the whole domain's mass of exactly 1,
//! 2. conditional sampling always lands inside the requested interval
//!    (clipped to the support), and
//! 3. `sample_in` returns `Some` exactly when the interval carries
//!    positive conditional mass (`None` is deterministic, never a hang).

use proptest::prelude::*;
use qcoral_interval::Interval;
use qcoral_mc::{discretize, Dist};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An arbitrary domain interval with non-degenerate width.
fn any_domain() -> impl Strategy<Value = Interval> {
    (-50.0f64..50.0, 0.1f64..100.0).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

/// Any `Dist` variant, parameterized relative to the domain so supports
/// and scales stay interesting (peaked, offset, clipped).
fn any_dist() -> impl Strategy<Value = (Dist, Interval)> {
    (any_domain(), 0u8..5, 0.0f64..1.0, 0.01f64..2.0).prop_map(|(dom, kind, frac, scale)| {
        let (lo, w) = (dom.lo(), dom.width());
        let dist = match kind {
            0 => Dist::Uniform,
            1 => {
                let cut = lo + w * (0.2 + 0.6 * frac);
                Dist::piecewise(vec![lo, cut, lo + w], vec![1.0 + 3.0 * frac, 1.0])
            }
            2 => Dist::normal(lo + w * frac, w * scale * 0.25),
            3 => Dist::exponential(scale * 4.0 / w),
            _ => {
                let t_lo = lo + w * 0.25 * frac;
                let t_hi = lo + w * (1.0 - 0.25 * (1.0 - frac));
                Dist::truncated_normal(lo + w * frac, w * scale * 0.25, t_lo, t_hi)
            }
        };
        (dist, dom)
    })
}

/// Sorted interior cut points partitioning the domain.
fn cuts(dom: &Interval, raw: &[f64]) -> Vec<f64> {
    let mut cuts: Vec<f64> = raw
        .iter()
        .map(|f| dom.lo() + dom.width() * f.clamp(0.001, 0.999))
        .collect();
    cuts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cuts.dedup();
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Axiom 1: partition additivity and total mass 1.
    #[test]
    fn mass_is_additive_over_partitions(
        (dist, dom) in any_dist(),
        raw in prop::collection::vec(0.0f64..1.0, 1..8),
    ) {
        let cuts = cuts(&dom, &raw);
        let mut edges = vec![dom.lo()];
        edges.extend(&cuts);
        edges.push(dom.hi());
        let total: f64 = edges
            .windows(2)
            .map(|w| dist.mass(&Interval::new(w[0], w[1]), &dom))
            .sum();
        prop_assert!(
            (total - 1.0).abs() < 1e-9,
            "{dist:?} over {dom:?}: partition mass {total}"
        );
        prop_assert!(
            (dist.mass(&dom, &dom) - 1.0).abs() < 1e-12,
            "domain mass must be exactly 1"
        );
        // Additivity on a coarser merge: first two cells equal their union.
        if edges.len() >= 3 {
            let a = dist.mass(&Interval::new(edges[0], edges[1]), &dom);
            let b = dist.mass(&Interval::new(edges[1], edges[2]), &dom);
            let ab = dist.mass(&Interval::new(edges[0], edges[2]), &dom);
            prop_assert!((a + b - ab).abs() < 1e-10, "{dist:?}: {a} + {b} != {ab}");
        }
    }

    /// Axioms 2 + 3: samples stay inside the interval; `Some`/`None`
    /// agrees with the interval's conditional mass.
    #[test]
    fn sampling_stays_in_interval_and_matches_mass(
        (dist, dom) in any_dist(),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let iv = Interval::new(
            dom.lo() + dom.width() * lo,
            dom.lo() + dom.width() * hi,
        );
        let mass = dist.mass(&iv, &dom);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            match dist.sample_in(&iv, &dom, &mut rng) {
                Some(v) => {
                    prop_assert!(
                        iv.contains(v) && dom.contains(v),
                        "{dist:?}: sample {v} outside [{}, {}]",
                        iv.lo(),
                        iv.hi()
                    );
                    prop_assert!(mass > 0.0, "{dist:?}: sampled from a zero-mass interval");
                }
                None => {
                    // None ⇔ (near-)zero conditional mass. Piecewise
                    // boundaries can carry O(ulp) mass slivers; anything
                    // above that must sample.
                    prop_assert!(
                        mass < 1e-12,
                        "{dist:?}: refused interval with mass {mass}"
                    );
                    break; // deterministic: will stay None
                }
            }
        }
    }

    /// The discretized histogram preserves the axioms: it is a valid
    /// piecewise distribution whose masses track the continuous law
    /// within the requested bound.
    #[test]
    fn discretization_preserves_mass_axioms(
        (dist, dom) in any_dist(),
        raw in prop::collection::vec(0.0f64..1.0, 1..6),
    ) {
        let hist = discretize(&dist, &dom, 1e-3);
        prop_assert!((hist.mass(&dom, &dom) - 1.0).abs() < 1e-9);
        for w in cuts(&dom, &raw).windows(2) {
            let iv = Interval::new(w[0], w[1]);
            let exact = dist.mass(&iv, &dom);
            let approx = hist.mass(&iv, &dom);
            // Interval endpoints cut at most two bins, each within ε.
            prop_assert!(
                (exact - approx).abs() <= 2.0 * 1e-3 + 1e-9,
                "{dist:?}: mass {exact} vs discretized {approx} on [{}, {}]",
                w[0],
                w[1]
            );
        }
    }
}
