//! Hit-or-miss Monte Carlo and stratified sampling.
//!
//! Two API layers share the estimator math:
//!
//! * the classic rng-threaded entry points [`hit_or_miss`] /
//!   [`stratified`], which consume a caller-provided RNG sequentially, and
//! * the *plan* layer ([`SamplePlan`], [`hit_or_miss_plan`],
//!   [`stratified_plan`]), the hot path: samples are drawn in fixed-size
//!   chunks, each chunk seeded from a counter ([`mix_seed`]) instead of a
//!   shared RNG stream. Chunk hit-counts are integers and strata are
//!   reduced in index order, so the returned [`Estimate`] is bit-identical
//!   whether the chunks run on one thread or many.
//!
//! # Columnar bulk evaluation
//!
//! The plan layer's predicates are [`BulkPred`]s. A plain
//! `Fn(&[f64]) -> bool` closure (wrapped in [`ScalarPred`], which the
//! classic generic entry points do automatically) is evaluated row by
//! row, exactly as before. A predicate that reports
//! [`BulkPred::columnar`] switches the chunk executor to
//! structure-of-arrays form: samples are drawn into per-variable
//! *column* buffers, one [`COLUMN_BLOCK`]-sized block at a time — in
//! the **identical RNG draw order** as the row path, so the samples,
//! the integer hit counts, and the resulting [`Estimate`]s are
//! bit-identical — and each block is handed to
//! [`BulkPred::count_hits`] in one call, letting register-allocated
//! slice tapes (`qcoral_constraints::bulk`) amortize interpreter
//! dispatch across whole lane blocks.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use qcoral_interval::IntervalBox;

use crate::{Estimate, UsageProfile};

/// A cooperative cancellation token: an absolute cutoff instant that
/// long-running sampling loops poll between chunks.
///
/// Expiry never aborts mid-chunk and never perturbs randomness — a run
/// that expires simply stops drawing further chunks, and the
/// accumulated counts remain a statistically sound (smaller-`n`)
/// estimate. A plan with no deadline behaves bit-identically to one
/// that never expires.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an absolute instant (e.g. computed when a request
    /// was received, so queueing time counts against it).
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Whether the cutoff has passed.
    pub fn expired(self) -> bool {
        Instant::now() >= self.at
    }

    /// The absolute cutoff instant.
    pub fn instant(self) -> Instant {
        self.at
    }
}

/// Whether a plan's optional deadline has expired (`false` when the
/// plan carries none).
fn plan_expired(plan: &SamplePlan) -> bool {
    plan.deadline.is_some_and(Deadline::expired)
}

/// SplitMix64-style mixing of a base seed with a stream id, used to derive
/// independent per-chunk and per-stratum RNG seeds from counters.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a sampling run draws its randomness and where it executes.
///
/// The plan fixes the seed derivation: chunk `c` of any run always uses
/// `mix_seed(seed, c)`, so execution order cannot influence the result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SamplePlan {
    /// Base RNG seed for this run.
    pub seed: u64,
    /// Samples per chunk (the parallel work granule).
    pub chunk: u64,
    /// Fan chunks/strata out across threads. Purely an execution choice:
    /// estimates are identical either way.
    pub parallel: bool,
    /// Optional cooperative cutoff, polled between chunks: once expired
    /// no further chunks are drawn and the accumulated counts stand as
    /// a best-effort partial result. `None` reproduces the unbounded
    /// behavior bit for bit.
    pub deadline: Option<Deadline>,
}

impl SamplePlan {
    /// Default chunk size: big enough to amortize thread dispatch, small
    /// enough to load-balance a 100k-sample run over many cores.
    pub const DEFAULT_CHUNK: u64 = 4_096;

    /// A serial plan.
    pub fn serial(seed: u64) -> SamplePlan {
        SamplePlan {
            seed,
            chunk: Self::DEFAULT_CHUNK,
            parallel: false,
            deadline: None,
        }
    }

    /// A parallel plan (same results as [`SamplePlan::serial`]).
    pub fn parallel(seed: u64) -> SamplePlan {
        SamplePlan {
            parallel: true,
            ..SamplePlan::serial(seed)
        }
    }

    /// The same plan with a different base seed.
    pub fn with_seed(self, seed: u64) -> SamplePlan {
        SamplePlan { seed, ..self }
    }

    /// Derives the plan for an independent sub-stream (e.g. one stratum).
    pub fn substream(self, stream: u64) -> SamplePlan {
        SamplePlan {
            seed: mix_seed(self.seed, stream),
            ..self
        }
    }

    /// The same plan with a cooperative deadline (or none).
    pub fn with_deadline(self, deadline: Option<Deadline>) -> SamplePlan {
        SamplePlan { deadline, ..self }
    }
}

/// A predicate the plan-layer samplers can evaluate either row by row or
/// over whole sample columns.
///
/// The contract that keeps bulk and scalar runs bit-identical: for any
/// columns `cols` holding `n` samples, [`BulkPred::count_hits`] must
/// return exactly the number of rows `i` on which [`BulkPred::holds`]
/// returns `true` for the gathered point `[cols[0][i], cols[1][i], …]`.
/// Implementors backed by a columnar evaluator (e.g. a
/// `qcoral_constraints::bulk::BulkTape`) opt in via
/// [`BulkPred::columnar`]; everything else inherits the row path
/// unchanged.
pub trait BulkPred: Sync {
    /// Row-oriented evaluation of one sample point.
    fn holds(&self, point: &[f64]) -> bool;

    /// Whether the chunk executor should draw columns and call
    /// [`BulkPred::count_hits`] instead of looping rows. Defaults to
    /// `false` (scalar closures keep today's row loop byte for byte).
    fn columnar(&self) -> bool {
        false
    }

    /// Counts hits over the first `n` samples stored in per-variable
    /// columns (`cols[v][i]` = variable `v` of sample `i`). The default
    /// gathers each row and defers to [`BulkPred::holds`].
    fn count_hits(&self, cols: &[Vec<f64>], n: usize) -> u64 {
        let mut point = vec![0.0; cols.len()];
        let mut hits = 0u64;
        for i in 0..n {
            for (d, col) in cols.iter().enumerate() {
                point[d] = col[i];
            }
            if self.holds(&point) {
                hits += 1;
            }
        }
        hits
    }
}

/// Adapter giving any `Fn(&[f64]) -> bool` closure the [`BulkPred`]
/// row-path behaviour. The classic generic entry points ([`refine_plan`],
/// [`hit_or_miss_plan`], [`stratified_plan`]) wrap their closure in this
/// automatically, so existing callers are untouched.
#[derive(Clone, Copy, Debug)]
pub struct ScalarPred<F>(pub F);

impl<F: Fn(&[f64]) -> bool + Sync> BulkPred for ScalarPred<F> {
    fn holds(&self, point: &[f64]) -> bool {
        (self.0)(point)
    }
}

/// Samples drawn per columnar block: matches the bulk tapes' lane width
/// (`qcoral_constraints::bulk::LANES`) so each block evaluates as one
/// full slab, while keeping column-buffer memory at
/// `COLUMN_BLOCK × ndim` f64s per task regardless of the chunk size.
/// Purely an execution granule — [`BulkPred::count_hits`] is exact for
/// any block size, and the RNG draw order never depends on it.
pub const COLUMN_BLOCK: usize = 128;

/// Per-chunk draw buffers: the row scratch both paths share, plus the
/// column buffers the bulk path scatters samples into.
struct DrawScratch {
    point: Vec<f64>,
    cols: Vec<Vec<f64>>,
}

impl DrawScratch {
    fn new(ndim: usize, columnar: bool) -> DrawScratch {
        DrawScratch {
            point: vec![0.0; ndim],
            cols: if columnar {
                (0..ndim)
                    .map(|_| Vec::with_capacity(COLUMN_BLOCK))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }
}

/// Counts hits of `pred` among `n` samples of chunk `c` (scratch buffers
/// are reused across samples and chunks). Returns `None` if the box has
/// zero conditional mass under the profile.
///
/// The bulk branch draws [`COLUMN_BLOCK`]-sized blocks of samples into
/// columns — in the exact per-sample, per-dimension RNG order of the row
/// branch — and counts each block in one columnar call; since the
/// predicate never touches the RNG, both branches see bit-identical
/// samples and produce identical counts.
fn chunk_hits<P: BulkPred + ?Sized>(
    pred: &P,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    seed: u64,
    c: u64,
    scratch: &mut DrawScratch,
) -> Option<u64> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, c));
    if pred.columnar() {
        // Draw and evaluate in fixed-size blocks: column buffers stay
        // O(COLUMN_BLOCK × ndim) no matter how large the chunk is, and
        // a freshly drawn block is still cache-hot when evaluated.
        // Draws remain strictly sequential (the predicate never touches
        // the RNG), so the sample stream — and every count — is
        // bit-identical to the row path.
        let n = n as usize;
        let mut hits = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            let w = COLUMN_BLOCK.min(remaining);
            for col in scratch.cols.iter_mut() {
                col.clear();
            }
            for _ in 0..w {
                if !profile.sample_in(boxed, boxed, &mut rng, &mut scratch.point) {
                    return None;
                }
                for (d, col) in scratch.cols.iter_mut().enumerate() {
                    col.push(scratch.point[d]);
                }
            }
            hits += pred.count_hits(&scratch.cols, w);
            remaining -= w;
        }
        return Some(hits);
    }
    let mut hits = 0u64;
    for _ in 0..n {
        if !profile.sample_in(boxed, boxed, &mut rng, &mut scratch.point) {
            return None;
        }
        if pred.holds(&scratch.point) {
            hits += 1;
        }
    }
    Some(hits)
}

/// Incrementally refinable hit-or-miss state for one stratum.
///
/// The adaptive engines sample a stratum in *rounds*: each call to
/// [`refine_plan`] draws more counter-seeded chunks, starting at
/// [`StratumAccum::next_chunk`], and folds the integer hit counts in.
/// The accumulated estimate therefore depends only on the stratum's
/// sub-stream and the *sequence of per-round budgets* — never on thread
/// schedule or on which round drew which chunk — which is what keeps
/// variance-driven reallocation bit-reproducible.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StratumAccum {
    /// Samples that satisfied the predicate.
    pub hits: u64,
    /// Samples drawn so far.
    pub n: u64,
    /// Next chunk index of this stratum's sub-stream (each round starts
    /// a fresh chunk, so a short round never splits a chunk's RNG stream
    /// with the next one).
    pub next_chunk: u64,
    /// The box turned out to carry zero conditional mass under the
    /// profile: the stratum contributes the exact `0 ± 0`.
    pub dead: bool,
}

impl StratumAccum {
    /// The state before any sampling.
    pub const EMPTY: StratumAccum = StratumAccum {
        hits: 0,
        n: 0,
        next_chunk: 0,
        dead: false,
    };

    /// The current hit-or-miss estimate (Eq. 2). Zero-mass strata and
    /// unsampled accumulators report the exact `0 ± 0`.
    pub fn estimate(&self) -> Estimate {
        if self.dead || self.n == 0 {
            Estimate::ZERO
        } else {
            Estimate::from_hits(self.hits, self.n)
        }
    }

    /// Sample standard deviation `√(p̂(1−p̂))` of the underlying Bernoulli
    /// population — the `s_i` of Neyman allocation (0 until sampled).
    pub fn std_dev(&self) -> f64 {
        if self.dead || self.n == 0 {
            0.0
        } else {
            let p = self.hits as f64 / self.n as f64;
            (p * (1.0 - p)).sqrt()
        }
    }
}

/// Draws `add` further samples for one stratum, continuing its chunk
/// counter, and returns the merged accumulator.
///
/// Drawing `a` then `b` samples visits the same chunk sub-streams as any
/// other split of `a + b` into rounds would visit fresh chunks for — and
/// chunk hit counts are integers reduced by summation — so the result is
/// identical across thread schedules and depends only on the budget
/// sequence. `add == 0` (and refining a dead stratum) is a no-op.
pub fn refine_plan<F>(
    pred: &F,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    add: u64,
    plan: SamplePlan,
    acc: StratumAccum,
) -> StratumAccum
where
    F: Fn(&[f64]) -> bool + Sync,
{
    refine_plan_bulk(&ScalarPred(pred), boxed, profile, add, plan, acc)
}

/// [`refine_plan`] over a [`BulkPred`]: the same counter-seeded chunk
/// streams and integer reductions, but columnar predicates evaluate each
/// chunk in one structure-of-arrays call. Samples are drawn in the
/// identical RNG order either way, so the accumulator is bit-identical
/// to the scalar row path.
pub fn refine_plan_bulk<P>(
    pred: &P,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    add: u64,
    plan: SamplePlan,
    acc: StratumAccum,
) -> StratumAccum
where
    P: BulkPred + ?Sized,
{
    if add == 0 || acc.dead {
        return acc;
    }
    let chunk = plan.chunk.max(1);
    let nchunks = add.div_ceil(chunk);
    let ndim = boxed.ndim();
    let columnar = pred.columnar();
    // Per-chunk result: `None` = zero conditional mass (dead stratum),
    // `Some((hits, drawn))`. A chunk skipped because the plan's deadline
    // expired reports `Some((0, 0))` — it contributes nothing and `n`
    // stays honest, so the partial accumulator remains a sound estimate.
    let hits_of = |j: u64, scratch: &mut DrawScratch| -> Option<(u64, u64)> {
        if plan_expired(&plan) {
            return Some((0, 0));
        }
        let len = chunk.min(add - j * chunk);
        chunk_hits(
            pred,
            boxed,
            profile,
            len,
            plan.seed,
            acc.next_chunk + j,
            scratch,
        )
        .map(|h| (h, len))
    };
    let total: Option<(u64, u64)> = if plan.parallel && nchunks > 1 {
        // Per-worker scratch (`map_init`), not per-chunk: each rayon
        // worker draws all of its chunks through one reused buffer set,
        // like the serial branch below.
        (0..nchunks)
            .into_par_iter()
            .map_init(
                || DrawScratch::new(ndim, columnar),
                |scratch, j| hits_of(j, scratch),
            )
            .collect::<Vec<Option<(u64, u64)>>>()
            .into_iter()
            .try_fold((0u64, 0u64), |(h, d), part| {
                part.map(|(ph, pd)| (h + ph, d + pd))
            })
    } else {
        let mut scratch = DrawScratch::new(ndim, columnar);
        let mut sum = Some((0u64, 0u64));
        for j in 0..nchunks {
            if plan_expired(&plan) {
                break;
            }
            match (sum, hits_of(j, &mut scratch)) {
                (Some((a, d)), Some((h, len))) => sum = Some((a + h, d + len)),
                _ => {
                    sum = None;
                    break;
                }
            }
        }
        sum
    };
    match total {
        // Zero conditional mass: the box contributes nothing, ever.
        None => StratumAccum { dead: true, ..acc },
        Some((hits, drawn)) => StratumAccum {
            hits: acc.hits + hits,
            // `drawn == add` unless the deadline expired mid-run; either
            // way `hits/n` only counts chunks actually evaluated.
            n: acc.n + drawn,
            next_chunk: acc.next_chunk + nchunks,
            dead: false,
        },
    }
}

/// Hit-or-miss Monte Carlo (Eq. 2) over counter-seeded chunks.
///
/// Identical statistics to [`hit_or_miss`] but deterministic under any
/// thread schedule: chunk `c` always draws from `mix_seed(plan.seed, c)`
/// and the integer hit counts commute. If the box has zero probability
/// mass under the profile the exact `0 ± 0` is returned.
///
/// Equivalent to one [`refine_plan`] round from [`StratumAccum::EMPTY`].
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss_plan<F>(
    pred: &F,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    plan: SamplePlan,
) -> Estimate
where
    F: Fn(&[f64]) -> bool + Sync,
{
    hit_or_miss_plan_bulk(&ScalarPred(pred), boxed, profile, n, plan)
}

/// [`hit_or_miss_plan`] over a [`BulkPred`] — columnar predicates ride
/// the bulk chunk evaluator, with bit-identical estimates.
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss_plan_bulk<P>(
    pred: &P,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    plan: SamplePlan,
) -> Estimate
where
    P: BulkPred + ?Sized,
{
    assert!(n > 0, "hit-or-miss needs at least one sample");
    refine_plan_bulk(pred, boxed, profile, n, plan, StratumAccum::EMPTY).estimate()
}

/// Stratified sampling (Eq. 3) over counter-seeded chunks.
///
/// Stratum `i` samples under the independent sub-stream
/// `plan.substream(i)`; contributions are reduced in stratum order, so the
/// result is bit-identical across thread schedules and to the serial
/// plan. Semantics otherwise match [`stratified`].
///
/// Sample counts come from [`initial_allocation`] (plus a
/// [`neyman_allocation`] follow-up pass under
/// [`Allocation::VarianceAdaptive`]), so the budget is respected up to
/// the one-sample-per-stratum floor.
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified_plan<F>(
    pred: &F,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    plan: SamplePlan,
) -> Estimate
where
    F: Fn(&[f64]) -> bool + Sync,
{
    stratified_plan_bulk(
        &ScalarPred(pred),
        strata,
        domain,
        profile,
        total_samples,
        allocation,
        plan,
    )
}

/// [`stratified_plan`] over a [`BulkPred`] — every stratum's chunk
/// stream rides the bulk evaluator for columnar predicates, with
/// bit-identical estimates to the scalar row path.
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified_plan_bulk<P>(
    pred: &P,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    plan: SamplePlan,
) -> Estimate
where
    P: BulkPred + ?Sized,
{
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, domain))
        .collect();
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(i, s)| !s.certain && weights[*i] > 0.0)
        .map(|(i, _)| i)
        .collect();

    // Certain strata contribute their exact mass, in stratum order.
    let mut acc = Estimate::ZERO;
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            acc = acc.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    if sampled.is_empty() {
        return acc;
    }

    let sampled_weights: Vec<f64> = sampled.iter().map(|&i| weights[i]).collect();
    let counts = initial_allocation(allocation, total_samples, &sampled_weights);
    let refine_stratum = |j: usize, add: u64, accum: StratumAccum| -> StratumAccum {
        let i = sampled[j];
        refine_plan_bulk(
            pred,
            &strata[i].boxed,
            profile,
            add,
            plan.substream(i as u64),
            accum,
        )
    };
    let fan_out = |counts: &[u64], accums: &[StratumAccum]| -> Vec<StratumAccum> {
        if plan.parallel && sampled.len() > 1 {
            (0..sampled.len())
                .into_par_iter()
                .map(|j| refine_stratum(j, counts[j], accums[j]))
                .collect()
        } else {
            (0..sampled.len())
                .map(|j| refine_stratum(j, counts[j], accums[j]))
                .collect()
        }
    };
    let mut accums = fan_out(&counts, &vec![StratumAccum::EMPTY; sampled.len()]);
    if matches!(
        allocation,
        Allocation::VarianceAdaptive | Allocation::ImportanceAdaptive
    ) && !plan_expired(&plan)
    {
        // Follow-up pass: the pilot spent roughly half the budget; the
        // rest goes where `weight × stddev` says the variance lives.
        // Exact strata (stddev 0) are excluded.
        let spent: u64 = counts.iter().sum();
        let stddevs: Vec<f64> = accums.iter().map(StratumAccum::std_dev).collect();
        let follow = neyman_allocation(
            total_samples.saturating_sub(spent),
            &sampled_weights,
            &stddevs,
        );
        accums = fan_out(&follow, &accums);
    }
    // Fixed reduction order keeps the floating-point sum identical across
    // schedules.
    accums
        .iter()
        .zip(&sampled_weights)
        .map(|(a, &w)| a.estimate().scale(w))
        .fold(acc, Estimate::sum)
}

/// The Hit-or-Miss Monte Carlo estimator of §3.2 (Eq. 2): draws `n`
/// samples from `profile` conditioned on `boxed` and counts how many
/// satisfy `pred`.
///
/// If the box has zero probability mass under the profile, the exact
/// estimate `0 ± 0` is returned.
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    rng: &mut impl Rng,
) -> Estimate {
    assert!(n > 0, "hit-or-miss needs at least one sample");
    match hits_with_rng(pred, boxed, profile, n, rng) {
        // Zero conditional mass: the box contributes nothing.
        None => Estimate::ZERO,
        Some(hits) => Estimate::from_hits(hits, n),
    }
}

/// Counts hits among `n` rng-threaded samples; `None` when the box has
/// zero conditional mass under the profile.
fn hits_with_rng(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    rng: &mut impl Rng,
) -> Option<u64> {
    let mut point = vec![0.0; boxed.ndim()];
    let mut hits = 0u64;
    for _ in 0..n {
        if !profile.sample_in(boxed, boxed, rng, &mut point) {
            return None;
        }
        if pred(&point) {
            hits += 1;
        }
    }
    Some(hits)
}

/// One stratum of a stratified-sampling plan: a box plus whether it is an
/// ICP *inner* box (all points known to satisfy the constraint — sampled
/// as the constant 1 with variance 0, §3.3).
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The stratum's region.
    pub boxed: IntervalBox,
    /// `true` for ICP inner boxes (certainly all-solutions).
    pub certain: bool,
}

impl Stratum {
    /// A stratum that still needs sampling.
    pub fn boundary(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: false,
        }
    }

    /// A stratum proven to contain only solutions.
    pub fn inner(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: true,
        }
    }
}

/// How the total sample budget is split across strata.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Allocation {
    /// The paper's choice (§3.3): "we take the same number of samples on
    /// each strata".
    EqualPerStratum,
    /// Proportional to stratum probability mass (a classical alternative;
    /// exercised by the ablation benchmarks).
    Proportional,
    /// Variance-driven (Neyman) allocation: an equal-split pilot round
    /// spends half the budget, then the rest goes to strata proportional
    /// to `weight × stddev` of their pilot estimates — strata that
    /// turned out exact (variance 0) receive no follow-up samples. The
    /// iterative engine (`analyze_iterative`) applies the same rule
    /// across rounds.
    VarianceAdaptive,
    /// [`Allocation::VarianceAdaptive`] plus per-factor rare-event
    /// escalation: when the pilot round's hit rate falls below the
    /// analyzer's threshold, the factor's boundary budget is handed to
    /// the paver-seeded adaptive importance-sampling engine
    /// ([`crate::is::IsEstimator`]) instead of further stratified
    /// rounds. At this layer (plain stratified entry points, which have
    /// no pilot/escalation machinery) it behaves exactly like
    /// `VarianceAdaptive`.
    ImportanceAdaptive,
}

/// Largest-remainder apportionment of `total` samples proportional to
/// non-negative `scores`: floors the exact shares, then hands the
/// remainder out by descending fractional part (ties to the lower
/// index). Zero-score strata receive exactly 0. The counts sum to
/// `total` (to 0 when every score is 0) — never more, which is the
/// budget-clamp the old `round().max(1)` allocation lacked.
pub fn proportional_split(total: u64, scores: &[f64]) -> Vec<u64> {
    let mut counts = vec![0u64; scores.len()];
    let positive = |s: f64| s.is_finite() && s > 0.0;
    let sum: f64 = scores.iter().copied().filter(|&s| positive(s)).sum();
    if sum <= 0.0 || sum.is_nan() || total == 0 {
        return counts;
    }
    let mut fracs: Vec<(f64, usize)> = Vec::new();
    let mut spent = 0u64;
    for (i, &s) in scores.iter().enumerate() {
        if !positive(s) {
            continue;
        }
        let exact = total as f64 * (s / sum);
        let base = (exact.floor() as u64).min(total);
        counts[i] = base;
        spent += base;
        fracs.push((exact - base as f64, i));
    }
    // Floating-point drift guard: trim any overshoot from the richest
    // strata (deterministically), then distribute what remains by
    // largest fractional part, cycling on the off chance drift left more
    // than one sample per positive-score stratum.
    while spent > total {
        let i = richest(&counts, 1);
        counts[i] -= 1;
        spent -= 1;
    }
    fracs.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut rem = total - spent;
    while rem > 0 && !fracs.is_empty() {
        for &(_, i) in &fracs {
            if rem == 0 {
                break;
            }
            counts[i] += 1;
            rem -= 1;
        }
    }
    counts
}

/// Index of the largest count strictly above `floor` (ties to the lower
/// index); callers guarantee one exists.
fn richest(counts: &[u64], floor: u64) -> usize {
    let mut best = usize::MAX;
    let mut max = floor;
    for (i, &c) in counts.iter().enumerate() {
        if c > max {
            max = c;
            best = i;
        }
    }
    debug_assert!(best != usize::MAX, "no stratum above the floor");
    best
}

/// Raises every count to at least one sample, paying for the bumps by
/// decrementing the richest strata so the sum never exceeds
/// `max(total, k)`: only a budget smaller than the stratum count can
/// push spending past `total`, and then by at most one sample per
/// stratum (the unavoidable cost of sampling every stratum at all).
fn enforce_floor(counts: &mut [u64], total: u64) {
    let k = counts.len() as u64;
    let mut sum: u64 = counts.iter().sum();
    for c in counts.iter_mut() {
        if *c == 0 {
            *c = 1;
            sum += 1;
        }
    }
    let cap = total.max(k);
    while sum > cap {
        let i = richest(counts, 1);
        counts[i] -= 1;
        sum -= 1;
    }
}

/// Per-stratum sample counts for the *first* (or only) sampling pass.
///
/// * [`Allocation::EqualPerStratum`] — the paper's `⌊total/k⌋` each,
///   floored at one sample (bit-compatible with every earlier release).
/// * [`Allocation::Proportional`] — largest-remainder split by stratum
///   weight with the ≥1 floor; unlike the former `round().max(1)` rule
///   the counts never exceed the budget once `total ≥ k`.
/// * [`Allocation::VarianceAdaptive`] — the equal-split *pilot* over
///   half the budget; the other half is allocated afterwards by
///   [`neyman_allocation`] from the pilot standard deviations.
///
/// Every variant gives each stratum at least one sample and exceeds
/// `total` only when `total < k` forces the floor — by at most one
/// sample per stratum.
pub fn initial_allocation(allocation: Allocation, total: u64, weights: &[f64]) -> Vec<u64> {
    let k = weights.len() as u64;
    if k == 0 {
        return Vec::new();
    }
    match allocation {
        Allocation::EqualPerStratum => vec![(total / k).max(1); weights.len()],
        Allocation::Proportional => {
            let mut counts = proportional_split(total, weights);
            if counts.iter().all(|&c| c == 0) {
                // Degenerate weights: fall back to the equal split.
                counts = vec![(total / k).max(1); weights.len()];
            }
            enforce_floor(&mut counts, total);
            counts
        }
        Allocation::VarianceAdaptive | Allocation::ImportanceAdaptive => {
            let pilot = (total / 2).max(1);
            vec![(pilot / k).max(1); weights.len()]
        }
    }
}

/// Neyman follow-up allocation: splits `total` proportional to
/// `weightᵢ × stddevᵢ` (largest remainder, no floor). Strata whose
/// observed variance is zero — exact so far — receive **zero** follow-up
/// samples; if every stratum is exact the whole budget is withheld and
/// the returned counts are all zero.
///
/// # Panics
///
/// Panics if `weights` and `stddevs` differ in length.
pub fn neyman_allocation(total: u64, weights: &[f64], stddevs: &[f64]) -> Vec<u64> {
    assert_eq!(
        weights.len(),
        stddevs.len(),
        "one standard deviation per stratum"
    );
    let scores: Vec<f64> = weights
        .iter()
        .zip(stddevs)
        .map(|(&w, &s)| (w * s).max(0.0))
        .collect();
    proportional_split(total, &scores)
}

/// Stratified sampling over an ICP paving (§3.3, Eq. 3).
///
/// Each stratum is analyzed with hit-or-miss Monte Carlo (inner strata are
/// exact: mean 1, variance 0), weighted by its probability mass
/// `wᵢ = P(Rᵢ)/P(D)` and combined with `E[X̂] = Σ wᵢE[X̂ᵢ]`,
/// `Var[X̂] = Σ wᵢ²Var[X̂ᵢ]`. The region not covered by any stratum is
/// known to contain no solutions and contributes exactly `0 ± 0`.
///
/// `total_samples` is divided among the non-certain strata according to
/// `allocation` (each non-certain stratum receives at least one sample).
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    rng: &mut impl Rng,
) -> Estimate {
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, domain))
        .collect();
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.certain)
        .map(|(i, _)| i)
        .collect();

    let mut acc = Estimate::ZERO;
    // Certain strata contribute their exact mass.
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            acc = acc.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    if sampled.is_empty() {
        return acc;
    }

    // Skip zero-weight strata up front so the allocation splits the
    // budget over strata that can actually contribute.
    let sampled: Vec<usize> = sampled.into_iter().filter(|&i| weights[i] > 0.0).collect();
    if sampled.is_empty() {
        return acc;
    }
    let sampled_weights: Vec<f64> = sampled.iter().map(|&i| weights[i]).collect();
    let counts = initial_allocation(allocation, total_samples, &sampled_weights);
    // First (or only) pass, rng threaded through strata in index order.
    let mut tallies: Vec<Option<(u64, u64)>> = Vec::with_capacity(sampled.len());
    for (j, &i) in sampled.iter().enumerate() {
        let tally =
            hits_with_rng(pred, &strata[i].boxed, profile, counts[j], rng).map(|h| (h, counts[j]));
        tallies.push(tally);
    }
    if matches!(
        allocation,
        Allocation::VarianceAdaptive | Allocation::ImportanceAdaptive
    ) {
        // Neyman follow-up from the pilot: exact strata get no more
        // samples; the rng keeps threading in stratum order.
        let spent: u64 = counts.iter().sum();
        let stddevs: Vec<f64> = tallies
            .iter()
            .map(|t| match t {
                Some((h, n)) if *n > 0 => {
                    let p = *h as f64 / *n as f64;
                    (p * (1.0 - p)).sqrt()
                }
                _ => 0.0,
            })
            .collect();
        let follow = neyman_allocation(
            total_samples.saturating_sub(spent),
            &sampled_weights,
            &stddevs,
        );
        for (j, &i) in sampled.iter().enumerate() {
            if follow[j] == 0 {
                continue;
            }
            if let Some((h, n)) = tallies[j] {
                tallies[j] = hits_with_rng(pred, &strata[i].boxed, profile, follow[j], rng)
                    .map(|h2| (h + h2, n + follow[j]));
            }
        }
    }
    for (tally, &w) in tallies.iter().zip(&sampled_weights) {
        let est = match tally {
            Some((h, n)) if *n > 0 => Estimate::from_hits(*h, *n),
            _ => Estimate::ZERO,
        };
        acc = acc.sum(est.scale(w));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_interval::Interval;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn unit_square() -> IntervalBox {
        [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn unexpired_deadline_is_bit_invisible() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let pred = |x: &[f64]| x[0] > 0.0;
        let far = Deadline::after(Duration::from_secs(3600));
        for plan in [SamplePlan::serial(7), SamplePlan::parallel(7)] {
            let bare = hit_or_miss_plan(&pred, &b, &p, 20_000, plan);
            let with = hit_or_miss_plan(&pred, &b, &p, 20_000, plan.with_deadline(Some(far)));
            assert_eq!(bare, with, "a live deadline must not perturb estimates");
        }
    }

    #[test]
    fn expired_deadline_stops_drawing_but_stays_sound() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let pred = |x: &[f64]| x[0] > 0.0;
        let past = Deadline::at(Instant::now() - Duration::from_secs(1));
        for plan in [SamplePlan::serial(7), SamplePlan::parallel(7)] {
            let plan = plan.with_deadline(Some(past));
            // Nothing drawn: the zero-sample accumulator reports 0 ± 0
            // (flagging happens at the analyzer layer, not here).
            let acc = refine_plan(&pred, &b, &p, 50_000, plan, StratumAccum::EMPTY);
            assert_eq!(acc.n, 0, "expired deadline drew {} samples", acc.n);
            assert_eq!(acc.hits, 0);
            assert!(!acc.dead);
            assert_eq!(acc.estimate(), Estimate::ZERO);
        }
        // A pre-expiry accumulator survives untouched: the partial
        // estimate is exactly the work done so far.
        let plan = SamplePlan::serial(7);
        let pre = refine_plan(&pred, &b, &p, 8_192, plan, StratumAccum::EMPTY);
        let post = refine_plan(&pred, &b, &p, 8_192, plan.with_deadline(Some(past)), pre);
        assert_eq!((post.hits, post.n), (pre.hits, pre.n));
    }

    #[test]
    fn hit_or_miss_half_space() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &b, &p, 20_000, &mut rng);
        assert!((est.mean - 0.5).abs() < 0.02, "{}", est.mean);
        assert!(est.variance > 0.0);
    }

    #[test]
    fn hit_or_miss_never_and_always() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let never = hit_or_miss(&mut |_| false, &b, &p, 100, &mut rng);
        assert_eq!(never, Estimate::ZERO);
        let always = hit_or_miss(&mut |_| true, &b, &p, 100, &mut rng);
        assert_eq!(always.mean, 1.0);
        assert_eq!(always.variance, 0.0);
    }

    /// The paper's Figure 2 / Table 1 example: the triangle
    /// `x ≤ −y ∧ y ≤ x` over `[−1,1]²` has probability exactly 1/4, and
    /// four ICP boxes cut the variance by more than an order of magnitude
    /// at the same total sample count.
    #[test]
    fn figure2_stratification_reduces_variance() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);

        let mut rng = SmallRng::seed_from_u64(1234);
        let plain = hit_or_miss(&mut |x| pc(x), &domain, &profile, 10_000, &mut rng);

        // The paper's Table 1 boxes (b1..b4).
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, -0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::inner(
                [Interval::new(-0.5, 0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(0.5, 1.0), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng2 = SmallRng::seed_from_u64(1234);
        let strat = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::EqualPerStratum,
            &mut rng2,
        );
        assert!((plain.mean - 0.25).abs() < 0.02, "plain {}", plain.mean);
        assert!((strat.mean - 0.25).abs() < 0.01, "strat {}", strat.mean);
        assert!(
            strat.variance < plain.variance / 2.0,
            "stratified {} should beat plain {}",
            strat.variance,
            plain.variance
        );
    }

    #[test]
    fn certain_strata_need_no_samples() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![Stratum::inner(
            [Interval::new(-1.0, 0.0), Interval::new(-1.0, 1.0)]
                .into_iter()
                .collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(5);
        let mut calls = 0usize;
        let est = stratified(
            &mut |_| {
                calls += 1;
                true
            },
            &strata,
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(calls, 0, "inner strata must not be sampled");
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn empty_strata_list_is_zero() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = stratified(
            &mut |_| true,
            &[],
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(est, Estimate::ZERO);
    }

    #[test]
    fn proportional_allocation_matches_mean() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(-1.0, 0.0)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(0.0, 1.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng = SmallRng::seed_from_u64(77);
        let est = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            20_000,
            Allocation::Proportional,
            &mut rng,
        );
        assert!((est.mean - 0.25).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn nonuniform_profile_changes_probability() {
        use crate::Dist;
        // X biased towards [-1, 0] with 80% of the mass; P[x > 0] = 0.2.
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        let mut rng = SmallRng::seed_from_u64(9);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &domain, &profile, 20_000, &mut rng);
        assert!((est.mean - 0.2).abs() < 0.02, "{}", est.mean);
    }

    /// Regression for the Proportional budget overshoot: the former
    /// `round().max(1)` rule could spend more than the budget even when
    /// the budget covered every stratum (e.g. two half-weight strata at
    /// an odd total rounded up on both). The largest-remainder split
    /// never exceeds the budget once `total ≥ k`.
    #[test]
    fn proportional_allocation_never_overshoots_budget() {
        for (total, weights) in [
            (11u64, vec![0.5, 0.5]),
            (101, vec![0.3, 0.3, 0.4]),
            (7, vec![0.9, 0.05, 0.05]),
            (13, vec![1.0, 1e-9, 1e-9]),
        ] {
            let counts = initial_allocation(Allocation::Proportional, total, &weights);
            let spent: u64 = counts.iter().sum();
            assert!(
                spent <= total,
                "proportional spent {spent} of budget {total} over {weights:?}"
            );
            assert!(counts.iter().all(|&c| c >= 1), "floor violated: {counts:?}");
        }
    }

    /// When the budget cannot cover one sample per stratum the floor
    /// forces `k` samples — the only overshoot any variant may commit,
    /// bounded by one sample per stratum.
    #[test]
    fn tiny_budget_floor_spends_at_most_one_per_stratum() {
        for allocation in [
            Allocation::EqualPerStratum,
            Allocation::Proportional,
            Allocation::VarianceAdaptive,
        ] {
            let weights = [0.2; 5];
            let counts = initial_allocation(allocation, 3, &weights);
            let spent: u64 = counts.iter().sum();
            assert!(
                spent <= weights.len() as u64,
                "{allocation:?} spent {spent} on a budget of 3 over 5 strata"
            );
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn neyman_allocation_excludes_exact_strata() {
        let weights = [0.4, 0.4, 0.2];
        let stddevs = [0.5, 0.0, 0.25];
        let counts = neyman_allocation(1000, &weights, &stddevs);
        assert_eq!(counts[1], 0, "variance-0 stratum must get no follow-up");
        assert_eq!(counts.iter().sum::<u64>(), 1000, "budget fully spent");
        assert!(counts[0] > counts[2], "allocation follows weight × stddev");
        // All-exact strata: the budget is withheld entirely.
        let none = neyman_allocation(1000, &weights, &[0.0; 3]);
        assert_eq!(none, vec![0, 0, 0]);
    }

    #[test]
    fn proportional_split_is_exact_and_deterministic() {
        let counts = proportional_split(10, &[1.0, 1.0, 1.0]);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        // Ties hand the remainder to the lower index first.
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(proportional_split(5, &[0.0, 0.0]), vec![0, 0]);
    }

    /// A columnar predicate (here: the default gather evaluator with
    /// `columnar()` forced on) must see the bit-identical sample stream
    /// as the row path: the chunk executor draws the same RNG sequence
    /// in both modes, so estimates and accumulators agree exactly —
    /// serial, parallel, across refinement rounds and under stratified
    /// composition.
    #[test]
    fn columnar_chunk_executor_is_bit_identical_to_row_path() {
        struct ColumnarHalfSpace;
        impl BulkPred for ColumnarHalfSpace {
            fn holds(&self, p: &[f64]) -> bool {
                p[0] + p[1] > 0.3
            }
            fn columnar(&self) -> bool {
                true
            }
        }
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let pred = |x: &[f64]| x[0] + x[1] > 0.3;
        for chunk in [1u64, 100, 4096] {
            let mut plan = SamplePlan::serial(7);
            plan.chunk = chunk;
            let row = hit_or_miss_plan(&pred, &b, &p, 9_777, plan);
            let col = hit_or_miss_plan_bulk(&ColumnarHalfSpace, &b, &p, 9_777, plan);
            assert_eq!(row, col, "chunk {chunk}: columnar diverged");
            let mut par = SamplePlan::parallel(7);
            par.chunk = chunk;
            assert_eq!(
                col,
                hit_or_miss_plan_bulk(&ColumnarHalfSpace, &b, &p, 9_777, par)
            );
        }
        // Round-split refinement continues the identical chunk streams.
        let plan = SamplePlan::serial(41);
        let row = [500u64, 1_311, 96]
            .iter()
            .fold(StratumAccum::EMPTY, |acc, &add| {
                refine_plan(&pred, &b, &p, add, plan, acc)
            });
        let col = [500u64, 1_311, 96]
            .iter()
            .fold(StratumAccum::EMPTY, |acc, &add| {
                refine_plan_bulk(&ColumnarHalfSpace, &b, &p, add, plan, acc)
            });
        assert_eq!(row, col);
        // Stratified composition with mixed certain/boundary strata.
        let strata = vec![
            Stratum::inner(
                [Interval::new(-1.0, 0.0), Interval::new(-1.0, 1.0)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(0.0, 1.0), Interval::new(-1.0, 1.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let srow = stratified_plan(
            &pred,
            &strata,
            &b,
            &p,
            4_000,
            Allocation::Proportional,
            plan,
        );
        let scol = stratified_plan_bulk(
            &ColumnarHalfSpace,
            &strata,
            &b,
            &p,
            4_000,
            Allocation::Proportional,
            plan,
        );
        assert_eq!(srow, scol);
    }

    /// Refining in rounds visits fresh chunks, so the estimate depends
    /// only on the budget sequence — and a single round reproduces
    /// `hit_or_miss_plan` exactly.
    #[test]
    fn refine_plan_rounds_are_deterministic() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let pred = |x: &[f64]| x[0] > 0.0;
        let plan = SamplePlan::serial(99);
        let one_shot = refine_plan(&pred, &b, &p, 5_000, plan, StratumAccum::EMPTY);
        assert_eq!(
            one_shot.estimate(),
            hit_or_miss_plan(&pred, &b, &p, 5_000, plan)
        );

        // Same budget sequence twice ⇒ bit-identical accumulators,
        // serial or parallel.
        let serial = [1_000u64, 3_000, 777]
            .iter()
            .fold(StratumAccum::EMPTY, |acc, &add| {
                refine_plan(&pred, &b, &p, add, plan, acc)
            });
        let parallel = [1_000u64, 3_000, 777]
            .iter()
            .fold(StratumAccum::EMPTY, |acc, &add| {
                refine_plan(&pred, &b, &p, add, SamplePlan::parallel(99), acc)
            });
        assert_eq!(serial, parallel);
        assert_eq!(serial.n, 4_777);
        assert!((serial.estimate().mean - 0.5).abs() < 0.05);
        // Each round starts a fresh chunk.
        let chunk = plan.chunk;
        assert_eq!(
            serial.next_chunk,
            1_000u64.div_ceil(chunk) + 3_000u64.div_ceil(chunk) + 777u64.div_ceil(chunk)
        );
    }

    /// The adaptive allocation matches the estimate and concentrates the
    /// budget on the noisy strata of the paper's Figure 2 paving.
    #[test]
    fn variance_adaptive_matches_mean_and_beats_plain() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, -0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::inner(
                [Interval::new(-0.5, 0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(0.5, 1.0), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let plan = SamplePlan::serial(1234);
        let adaptive = stratified_plan(
            &|x: &[f64]| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::VarianceAdaptive,
            plan,
        );
        assert!((adaptive.mean - 0.25).abs() < 0.01, "{}", adaptive.mean);
        let plain = hit_or_miss_plan(&|x: &[f64]| pc(x), &domain, &profile, 10_000, plan);
        assert!(
            adaptive.variance < plain.variance / 2.0,
            "adaptive {} should beat plain {}",
            adaptive.variance,
            plain.variance
        );
        // Parallel execution is bit-identical.
        let par = stratified_plan(
            &|x: &[f64]| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::VarianceAdaptive,
            SamplePlan::parallel(1234),
        );
        assert_eq!(adaptive, par);
        // The rng-threaded twin agrees statistically.
        let mut rng = SmallRng::seed_from_u64(77);
        let legacy = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::VarianceAdaptive,
            &mut rng,
        );
        assert!((legacy.mean - 0.25).abs() < 0.01, "{}", legacy.mean);
    }

    #[test]
    fn stratified_weights_under_nonuniform_profile() {
        use crate::Dist;
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        // Inner stratum covering [0, 1]: exactly the 0.2 mass.
        let strata = vec![Stratum::inner(
            [Interval::new(0.0, 1.0)].into_iter().collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(13);
        let est = stratified(
            &mut |_| unreachable!("inner strata are not sampled"),
            &strata,
            &domain,
            &profile,
            100,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert!((est.mean - 0.2).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }
}
