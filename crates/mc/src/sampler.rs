//! Hit-or-miss Monte Carlo and stratified sampling.

use rand::Rng;

use qcoral_interval::IntervalBox;

use crate::{Estimate, UsageProfile};

/// The Hit-or-Miss Monte Carlo estimator of §3.2 (Eq. 2): draws `n`
/// samples from `profile` conditioned on `boxed` and counts how many
/// satisfy `pred`.
///
/// If the box has zero probability mass under the profile, the exact
/// estimate `0 ± 0` is returned.
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    rng: &mut impl Rng,
) -> Estimate {
    assert!(n > 0, "hit-or-miss needs at least one sample");
    let mut point = vec![0.0; boxed.ndim()];
    let mut hits = 0u64;
    for _ in 0..n {
        if !profile.sample_in(boxed, boxed, rng, &mut point) {
            // Zero conditional mass: the box contributes nothing.
            return Estimate::ZERO;
        }
        if pred(&point) {
            hits += 1;
        }
    }
    Estimate::from_hits(hits, n)
}

/// One stratum of a stratified-sampling plan: a box plus whether it is an
/// ICP *inner* box (all points known to satisfy the constraint — sampled
/// as the constant 1 with variance 0, §3.3).
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The stratum's region.
    pub boxed: IntervalBox,
    /// `true` for ICP inner boxes (certainly all-solutions).
    pub certain: bool,
}

impl Stratum {
    /// A stratum that still needs sampling.
    pub fn boundary(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: false,
        }
    }

    /// A stratum proven to contain only solutions.
    pub fn inner(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: true,
        }
    }
}

/// How the total sample budget is split across strata.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Allocation {
    /// The paper's choice (§3.3): "we take the same number of samples on
    /// each strata".
    EqualPerStratum,
    /// Proportional to stratum probability mass (a classical alternative;
    /// exercised by the ablation benchmarks).
    Proportional,
}

/// Stratified sampling over an ICP paving (§3.3, Eq. 3).
///
/// Each stratum is analyzed with hit-or-miss Monte Carlo (inner strata are
/// exact: mean 1, variance 0), weighted by its probability mass
/// `wᵢ = P(Rᵢ)/P(D)` and combined with `E[X̂] = Σ wᵢE[X̂ᵢ]`,
/// `Var[X̂] = Σ wᵢ²Var[X̂ᵢ]`. The region not covered by any stratum is
/// known to contain no solutions and contributes exactly `0 ± 0`.
///
/// `total_samples` is divided among the non-certain strata according to
/// `allocation` (each non-certain stratum receives at least one sample).
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    rng: &mut impl Rng,
) -> Estimate {
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, domain))
        .collect();
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.certain)
        .map(|(i, _)| i)
        .collect();

    let mut acc = Estimate::ZERO;
    // Certain strata contribute their exact mass.
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            acc = acc.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    if sampled.is_empty() {
        return acc;
    }

    let sampled_weight: f64 = sampled.iter().map(|&i| weights[i]).sum();
    for &i in &sampled {
        let n = match allocation {
            Allocation::EqualPerStratum => {
                (total_samples / sampled.len() as u64).max(1)
            }
            Allocation::Proportional => {
                if sampled_weight <= 0.0 {
                    1
                } else {
                    ((total_samples as f64 * weights[i] / sampled_weight).round() as u64).max(1)
                }
            }
        };
        if weights[i] <= 0.0 {
            continue;
        }
        let est = hit_or_miss(pred, &strata[i].boxed, profile, n, rng);
        acc = acc.sum(est.scale(weights[i]));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_interval::Interval;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn unit_square() -> IntervalBox {
        [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn hit_or_miss_half_space() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &b, &p, 20_000, &mut rng);
        assert!((est.mean - 0.5).abs() < 0.02, "{}", est.mean);
        assert!(est.variance > 0.0);
    }

    #[test]
    fn hit_or_miss_never_and_always() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let never = hit_or_miss(&mut |_| false, &b, &p, 100, &mut rng);
        assert_eq!(never, Estimate::ZERO);
        let always = hit_or_miss(&mut |_| true, &b, &p, 100, &mut rng);
        assert_eq!(always.mean, 1.0);
        assert_eq!(always.variance, 0.0);
    }

    /// The paper's Figure 2 / Table 1 example: the triangle
    /// `x ≤ −y ∧ y ≤ x` over `[−1,1]²` has probability exactly 1/4, and
    /// four ICP boxes cut the variance by more than an order of magnitude
    /// at the same total sample count.
    #[test]
    fn figure2_stratification_reduces_variance() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);

        let mut rng = SmallRng::seed_from_u64(1234);
        let plain = hit_or_miss(&mut |x| pc(x), &domain, &profile, 10_000, &mut rng);

        // The paper's Table 1 boxes (b1..b4).
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, -0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::inner(
                [Interval::new(-0.5, 0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(0.5, 1.0), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng2 = SmallRng::seed_from_u64(1234);
        let strat = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::EqualPerStratum,
            &mut rng2,
        );
        assert!((plain.mean - 0.25).abs() < 0.02, "plain {}", plain.mean);
        assert!((strat.mean - 0.25).abs() < 0.01, "strat {}", strat.mean);
        assert!(
            strat.variance < plain.variance / 2.0,
            "stratified {} should beat plain {}",
            strat.variance,
            plain.variance
        );
    }

    #[test]
    fn certain_strata_need_no_samples() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![Stratum::inner(
            [Interval::new(-1.0, 0.0), Interval::new(-1.0, 1.0)]
                .into_iter()
                .collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(5);
        let mut calls = 0usize;
        let est = stratified(
            &mut |_| {
                calls += 1;
                true
            },
            &strata,
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(calls, 0, "inner strata must not be sampled");
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn empty_strata_list_is_zero() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = stratified(
            &mut |_| true,
            &[],
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(est, Estimate::ZERO);
    }

    #[test]
    fn proportional_allocation_matches_mean() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(-1.0, 0.0)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(0.0, 1.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng = SmallRng::seed_from_u64(77);
        let est = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            20_000,
            Allocation::Proportional,
            &mut rng,
        );
        assert!((est.mean - 0.25).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn nonuniform_profile_changes_probability() {
        use crate::Dist;
        // X biased towards [-1, 0] with 80% of the mass; P[x > 0] = 0.2.
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        let mut rng = SmallRng::seed_from_u64(9);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &domain, &profile, 20_000, &mut rng);
        assert!((est.mean - 0.2).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn stratified_weights_under_nonuniform_profile() {
        use crate::Dist;
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        // Inner stratum covering [0, 1]: exactly the 0.2 mass.
        let strata = vec![Stratum::inner(
            [Interval::new(0.0, 1.0)].into_iter().collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(13);
        let est = stratified(
            &mut |_| unreachable!("inner strata are not sampled"),
            &strata,
            &domain,
            &profile,
            100,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert!((est.mean - 0.2).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }
}
