//! Hit-or-miss Monte Carlo and stratified sampling.
//!
//! Two API layers share the estimator math:
//!
//! * the classic rng-threaded entry points [`hit_or_miss`] /
//!   [`stratified`], which consume a caller-provided RNG sequentially, and
//! * the *plan* layer ([`SamplePlan`], [`hit_or_miss_plan`],
//!   [`stratified_plan`]), the hot path: samples are drawn in fixed-size
//!   chunks, each chunk seeded from a counter ([`mix_seed`]) instead of a
//!   shared RNG stream. Chunk hit-counts are integers and strata are
//!   reduced in index order, so the returned [`Estimate`] is bit-identical
//!   whether the chunks run on one thread or many.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use qcoral_interval::IntervalBox;

use crate::{Estimate, UsageProfile};

/// SplitMix64-style mixing of a base seed with a stream id, used to derive
/// independent per-chunk and per-stratum RNG seeds from counters.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How a sampling run draws its randomness and where it executes.
///
/// The plan fixes the seed derivation: chunk `c` of any run always uses
/// `mix_seed(seed, c)`, so execution order cannot influence the result.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SamplePlan {
    /// Base RNG seed for this run.
    pub seed: u64,
    /// Samples per chunk (the parallel work granule).
    pub chunk: u64,
    /// Fan chunks/strata out across threads. Purely an execution choice:
    /// estimates are identical either way.
    pub parallel: bool,
}

impl SamplePlan {
    /// Default chunk size: big enough to amortize thread dispatch, small
    /// enough to load-balance a 100k-sample run over many cores.
    pub const DEFAULT_CHUNK: u64 = 4_096;

    /// A serial plan.
    pub fn serial(seed: u64) -> SamplePlan {
        SamplePlan {
            seed,
            chunk: Self::DEFAULT_CHUNK,
            parallel: false,
        }
    }

    /// A parallel plan (same results as [`SamplePlan::serial`]).
    pub fn parallel(seed: u64) -> SamplePlan {
        SamplePlan {
            parallel: true,
            ..SamplePlan::serial(seed)
        }
    }

    /// The same plan with a different base seed.
    pub fn with_seed(self, seed: u64) -> SamplePlan {
        SamplePlan { seed, ..self }
    }

    /// Derives the plan for an independent sub-stream (e.g. one stratum).
    pub fn substream(self, stream: u64) -> SamplePlan {
        SamplePlan {
            seed: mix_seed(self.seed, stream),
            ..self
        }
    }
}

/// Counts hits of `pred` among `n` samples of chunk `c` (the scratch
/// buffer `point` is reused across samples). Returns `None` if the box has
/// zero conditional mass under the profile.
fn chunk_hits<F: Fn(&[f64]) -> bool>(
    pred: &F,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    seed: u64,
    c: u64,
    point: &mut [f64],
) -> Option<u64> {
    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, c));
    let mut hits = 0u64;
    for _ in 0..n {
        if !profile.sample_in(boxed, boxed, &mut rng, point) {
            return None;
        }
        if pred(point) {
            hits += 1;
        }
    }
    Some(hits)
}

/// Hit-or-miss Monte Carlo (Eq. 2) over counter-seeded chunks.
///
/// Identical statistics to [`hit_or_miss`] but deterministic under any
/// thread schedule: chunk `c` always draws from `mix_seed(plan.seed, c)`
/// and the integer hit counts commute. If the box has zero probability
/// mass under the profile the exact `0 ± 0` is returned.
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss_plan<F>(
    pred: &F,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    plan: SamplePlan,
) -> Estimate
where
    F: Fn(&[f64]) -> bool + Sync,
{
    assert!(n > 0, "hit-or-miss needs at least one sample");
    let chunk = plan.chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    let ndim = boxed.ndim();
    let hits_of = |c: u64, point: &mut [f64]| {
        let len = chunk.min(n - c * chunk);
        chunk_hits(pred, boxed, profile, len, plan.seed, c, point)
    };
    let total: Option<u64> = if plan.parallel && nchunks > 1 {
        (0..nchunks)
            .into_par_iter()
            .map(|c| {
                let mut point = vec![0.0; ndim];
                hits_of(c, &mut point)
            })
            .collect::<Vec<Option<u64>>>()
            .into_iter()
            .sum()
    } else {
        let mut point = vec![0.0; ndim];
        let mut acc = Some(0u64);
        for c in 0..nchunks {
            match (acc, hits_of(c, &mut point)) {
                (Some(a), Some(h)) => acc = Some(a + h),
                _ => {
                    acc = None;
                    break;
                }
            }
        }
        acc
    };
    match total {
        // Zero conditional mass: the box contributes nothing.
        None => Estimate::ZERO,
        Some(hits) => Estimate::from_hits(hits, n),
    }
}

/// Stratified sampling (Eq. 3) over counter-seeded chunks.
///
/// Stratum `i` samples under the independent sub-stream
/// `plan.substream(i)`; contributions are reduced in stratum order, so the
/// result is bit-identical across thread schedules and to the serial
/// plan. Semantics otherwise match [`stratified`].
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified_plan<F>(
    pred: &F,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    plan: SamplePlan,
) -> Estimate
where
    F: Fn(&[f64]) -> bool + Sync,
{
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, domain))
        .collect();
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(i, s)| !s.certain && weights[*i] > 0.0)
        .map(|(i, _)| i)
        .collect();

    // Certain strata contribute their exact mass, in stratum order.
    let mut acc = Estimate::ZERO;
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            acc = acc.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    if sampled.is_empty() {
        return acc;
    }

    let sampled_weight: f64 = sampled.iter().map(|&i| weights[i]).sum();
    let samples_for = |i: usize| -> u64 {
        match allocation {
            Allocation::EqualPerStratum => (total_samples / sampled.len() as u64).max(1),
            Allocation::Proportional => {
                if sampled_weight <= 0.0 {
                    1
                } else {
                    ((total_samples as f64 * weights[i] / sampled_weight).round() as u64).max(1)
                }
            }
        }
    };
    let estimate_stratum = |&i: &usize| -> Estimate {
        hit_or_miss_plan(
            pred,
            &strata[i].boxed,
            profile,
            samples_for(i),
            plan.substream(i as u64),
        )
        .scale(weights[i])
    };
    let per_stratum: Vec<Estimate> = if plan.parallel && sampled.len() > 1 {
        sampled.par_iter().map(estimate_stratum).collect()
    } else {
        sampled.iter().map(estimate_stratum).collect()
    };
    // Fixed reduction order keeps the floating-point sum identical across
    // schedules.
    per_stratum.into_iter().fold(acc, Estimate::sum)
}

/// The Hit-or-Miss Monte Carlo estimator of §3.2 (Eq. 2): draws `n`
/// samples from `profile` conditioned on `boxed` and counts how many
/// satisfy `pred`.
///
/// If the box has zero probability mass under the profile, the exact
/// estimate `0 ± 0` is returned.
///
/// # Panics
///
/// Panics if `n == 0` or on box/profile dimension mismatch.
pub fn hit_or_miss(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    boxed: &IntervalBox,
    profile: &UsageProfile,
    n: u64,
    rng: &mut impl Rng,
) -> Estimate {
    assert!(n > 0, "hit-or-miss needs at least one sample");
    let mut point = vec![0.0; boxed.ndim()];
    let mut hits = 0u64;
    for _ in 0..n {
        if !profile.sample_in(boxed, boxed, rng, &mut point) {
            // Zero conditional mass: the box contributes nothing.
            return Estimate::ZERO;
        }
        if pred(&point) {
            hits += 1;
        }
    }
    Estimate::from_hits(hits, n)
}

/// One stratum of a stratified-sampling plan: a box plus whether it is an
/// ICP *inner* box (all points known to satisfy the constraint — sampled
/// as the constant 1 with variance 0, §3.3).
#[derive(Clone, Debug)]
pub struct Stratum {
    /// The stratum's region.
    pub boxed: IntervalBox,
    /// `true` for ICP inner boxes (certainly all-solutions).
    pub certain: bool,
}

impl Stratum {
    /// A stratum that still needs sampling.
    pub fn boundary(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: false,
        }
    }

    /// A stratum proven to contain only solutions.
    pub fn inner(boxed: IntervalBox) -> Stratum {
        Stratum {
            boxed,
            certain: true,
        }
    }
}

/// How the total sample budget is split across strata.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Allocation {
    /// The paper's choice (§3.3): "we take the same number of samples on
    /// each strata".
    EqualPerStratum,
    /// Proportional to stratum probability mass (a classical alternative;
    /// exercised by the ablation benchmarks).
    Proportional,
}

/// Stratified sampling over an ICP paving (§3.3, Eq. 3).
///
/// Each stratum is analyzed with hit-or-miss Monte Carlo (inner strata are
/// exact: mean 1, variance 0), weighted by its probability mass
/// `wᵢ = P(Rᵢ)/P(D)` and combined with `E[X̂] = Σ wᵢE[X̂ᵢ]`,
/// `Var[X̂] = Σ wᵢ²Var[X̂ᵢ]`. The region not covered by any stratum is
/// known to contain no solutions and contributes exactly `0 ± 0`.
///
/// `total_samples` is divided among the non-certain strata according to
/// `allocation` (each non-certain stratum receives at least one sample).
///
/// # Panics
///
/// Panics on dimension mismatches between strata, `domain` and `profile`.
pub fn stratified(
    pred: &mut dyn FnMut(&[f64]) -> bool,
    strata: &[Stratum],
    domain: &IntervalBox,
    profile: &UsageProfile,
    total_samples: u64,
    allocation: Allocation,
    rng: &mut impl Rng,
) -> Estimate {
    let weights: Vec<f64> = strata
        .iter()
        .map(|s| profile.box_probability(&s.boxed, domain))
        .collect();
    let sampled: Vec<usize> = strata
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.certain)
        .map(|(i, _)| i)
        .collect();

    let mut acc = Estimate::ZERO;
    // Certain strata contribute their exact mass.
    for (i, s) in strata.iter().enumerate() {
        if s.certain {
            acc = acc.sum(Estimate::ONE.scale(weights[i]));
        }
    }
    if sampled.is_empty() {
        return acc;
    }

    let sampled_weight: f64 = sampled.iter().map(|&i| weights[i]).sum();
    for &i in &sampled {
        let n = match allocation {
            Allocation::EqualPerStratum => (total_samples / sampled.len() as u64).max(1),
            Allocation::Proportional => {
                if sampled_weight <= 0.0 {
                    1
                } else {
                    ((total_samples as f64 * weights[i] / sampled_weight).round() as u64).max(1)
                }
            }
        };
        if weights[i] <= 0.0 {
            continue;
        }
        let est = hit_or_miss(pred, &strata[i].boxed, profile, n, rng);
        acc = acc.sum(est.scale(weights[i]));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcoral_interval::Interval;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn unit_square() -> IntervalBox {
        [Interval::new(-1.0, 1.0), Interval::new(-1.0, 1.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn hit_or_miss_half_space() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &b, &p, 20_000, &mut rng);
        assert!((est.mean - 0.5).abs() < 0.02, "{}", est.mean);
        assert!(est.variance > 0.0);
    }

    #[test]
    fn hit_or_miss_never_and_always() {
        let b = unit_square();
        let p = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(42);
        let never = hit_or_miss(&mut |_| false, &b, &p, 100, &mut rng);
        assert_eq!(never, Estimate::ZERO);
        let always = hit_or_miss(&mut |_| true, &b, &p, 100, &mut rng);
        assert_eq!(always.mean, 1.0);
        assert_eq!(always.variance, 0.0);
    }

    /// The paper's Figure 2 / Table 1 example: the triangle
    /// `x ≤ −y ∧ y ≤ x` over `[−1,1]²` has probability exactly 1/4, and
    /// four ICP boxes cut the variance by more than an order of magnitude
    /// at the same total sample count.
    #[test]
    fn figure2_stratification_reduces_variance() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);

        let mut rng = SmallRng::seed_from_u64(1234);
        let plain = hit_or_miss(&mut |x| pc(x), &domain, &profile, 10_000, &mut rng);

        // The paper's Table 1 boxes (b1..b4).
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, -0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::inner(
                [Interval::new(-0.5, 0.5), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(0.5, 1.0), Interval::new(-1.0, -0.5)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-0.5, 0.5), Interval::new(-0.5, 0.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng2 = SmallRng::seed_from_u64(1234);
        let strat = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            10_000,
            Allocation::EqualPerStratum,
            &mut rng2,
        );
        assert!((plain.mean - 0.25).abs() < 0.02, "plain {}", plain.mean);
        assert!((strat.mean - 0.25).abs() < 0.01, "strat {}", strat.mean);
        assert!(
            strat.variance < plain.variance / 2.0,
            "stratified {} should beat plain {}",
            strat.variance,
            plain.variance
        );
    }

    #[test]
    fn certain_strata_need_no_samples() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![Stratum::inner(
            [Interval::new(-1.0, 0.0), Interval::new(-1.0, 1.0)]
                .into_iter()
                .collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(5);
        let mut calls = 0usize;
        let est = stratified(
            &mut |_| {
                calls += 1;
                true
            },
            &strata,
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(calls, 0, "inner strata must not be sampled");
        assert!((est.mean - 0.5).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }

    #[test]
    fn empty_strata_list_is_zero() {
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let mut rng = SmallRng::seed_from_u64(5);
        let est = stratified(
            &mut |_| true,
            &[],
            &domain,
            &profile,
            1000,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert_eq!(est, Estimate::ZERO);
    }

    #[test]
    fn proportional_allocation_matches_mean() {
        let pc = |x: &[f64]| x[0] <= -x[1] && x[1] <= x[0];
        let domain = unit_square();
        let profile = UsageProfile::uniform(2);
        let strata = vec![
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(-1.0, 0.0)]
                    .into_iter()
                    .collect(),
            ),
            Stratum::boundary(
                [Interval::new(-1.0, 1.0), Interval::new(0.0, 1.0)]
                    .into_iter()
                    .collect(),
            ),
        ];
        let mut rng = SmallRng::seed_from_u64(77);
        let est = stratified(
            &mut |x| pc(x),
            &strata,
            &domain,
            &profile,
            20_000,
            Allocation::Proportional,
            &mut rng,
        );
        assert!((est.mean - 0.25).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn nonuniform_profile_changes_probability() {
        use crate::Dist;
        // X biased towards [-1, 0] with 80% of the mass; P[x > 0] = 0.2.
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        let mut rng = SmallRng::seed_from_u64(9);
        let est = hit_or_miss(&mut |x| x[0] > 0.0, &domain, &profile, 20_000, &mut rng);
        assert!((est.mean - 0.2).abs() < 0.02, "{}", est.mean);
    }

    #[test]
    fn stratified_weights_under_nonuniform_profile() {
        use crate::Dist;
        let domain: IntervalBox = [Interval::new(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(1)
            .with_dist(0, Dist::piecewise(vec![-1.0, 0.0, 1.0], vec![4.0, 1.0]));
        // Inner stratum covering [0, 1]: exactly the 0.2 mass.
        let strata = vec![Stratum::inner(
            [Interval::new(0.0, 1.0)].into_iter().collect(),
        )];
        let mut rng = SmallRng::seed_from_u64(13);
        let est = stratified(
            &mut |_| unreachable!("inner strata are not sampled"),
            &strata,
            &domain,
            &profile,
            100,
            Allocation::EqualPerStratum,
            &mut rng,
        );
        assert!((est.mean - 0.2).abs() < 1e-12);
        assert_eq!(est.variance, 0.0);
    }
}
