//! Usage profiles: the probabilistic characterization of program inputs.
//!
//! The paper assumes inputs are distributed "according to the usage
//! profile" (§3, Eq. 1) and its implementation "uses uniform profiles
//! only" (§5). [`UsageProfile`] supports that plus the extension the
//! conclusion calls for: non-uniform inputs via piecewise-uniform
//! (histogram) distributions, the discretization approach of Filieri et
//! al. \[11\].

use rand::Rng;
use serde::{Deserialize, Serialize};

use qcoral_interval::{Interval, IntervalBox};

/// A per-variable marginal distribution over the variable's domain
/// interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Uniform over the variable's domain.
    Uniform,
    /// Piecewise-uniform (histogram): `edges` are `k+1` increasing break
    /// points spanning the variable's domain; `weights` are the `k`
    /// segment probabilities (they are normalized on construction).
    Piecewise {
        /// Segment boundaries (increasing, length `k+1`).
        edges: Vec<f64>,
        /// Segment probabilities (length `k`, sums to 1).
        weights: Vec<f64>,
    },
}

impl Dist {
    /// Builds a histogram distribution, normalizing the weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 edges, edges are not strictly increasing,
    /// weights have the wrong length, are negative, or sum to zero.
    pub fn piecewise(edges: Vec<f64>, mut weights: Vec<f64>) -> Dist {
        assert!(edges.len() >= 2, "histogram needs at least one segment");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        assert_eq!(
            weights.len(),
            edges.len() - 1,
            "need one weight per segment"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        for w in &mut weights {
            *w /= total;
        }
        Dist::Piecewise { edges, weights }
    }

    /// Probability mass the distribution assigns to `iv`, relative to the
    /// variable's whole domain `dom`.
    pub fn mass(&self, iv: &Interval, dom: &Interval) -> f64 {
        let clipped = iv.intersect(dom);
        if clipped.is_empty() {
            return 0.0;
        }
        match self {
            Dist::Uniform => {
                let dw = dom.width();
                if dw == 0.0 {
                    1.0
                } else {
                    (clipped.width() / dw).min(1.0)
                }
            }
            Dist::Piecewise { edges, weights } => {
                let mut mass = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    let seg = Interval::new(edges[i], edges[i + 1]);
                    let overlap = seg.intersect(&clipped);
                    if !overlap.is_empty() && seg.width() > 0.0 {
                        mass += w * overlap.width() / seg.width();
                    }
                }
                mass.min(1.0)
            }
        }
    }

    /// Samples a value from the distribution *conditioned* on lying in
    /// `iv` (which must intersect the domain). Returns `None` if the
    /// conditional mass is zero.
    pub fn sample_in(&self, iv: &Interval, dom: &Interval, rng: &mut impl Rng) -> Option<f64> {
        let clipped = iv.intersect(dom);
        if clipped.is_empty() {
            return None;
        }
        match self {
            Dist::Uniform => Some(uniform_in(&clipped, rng)),
            Dist::Piecewise { edges, weights } => {
                // Conditional masses of each overlapping segment.
                let mut masses = Vec::with_capacity(weights.len());
                let mut total = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    let seg = Interval::new(edges[i], edges[i + 1]);
                    let overlap = seg.intersect(&clipped);
                    let m = if overlap.is_empty() || seg.width() == 0.0 {
                        0.0
                    } else {
                        w * overlap.width() / seg.width()
                    };
                    masses.push((m, overlap));
                    total += m;
                }
                if total <= 0.0 {
                    return None;
                }
                let mut pick = rng.gen_range(0.0..total);
                for (m, overlap) in &masses {
                    if *m > 0.0 && pick < *m {
                        return Some(uniform_in(overlap, rng));
                    }
                    pick -= m;
                }
                // Floating-point slack: fall back to the last non-empty
                // overlap.
                masses
                    .iter()
                    .rev()
                    .find(|(m, _)| *m > 0.0)
                    .map(|(_, o)| uniform_in(o, rng))
            }
        }
    }
}

fn uniform_in(iv: &Interval, rng: &mut impl Rng) -> f64 {
    if iv.width() == 0.0 {
        iv.lo()
    } else {
        rng.gen_range(iv.lo()..iv.hi())
    }
}

/// A joint input distribution: independent per-variable marginals over the
/// bounded input domain.
///
/// # Example
///
/// ```
/// use qcoral_mc::{Dist, UsageProfile};
///
/// // Two inputs: the first uniform, the second biased towards its lower half.
/// let profile = UsageProfile::uniform(2)
///     .with_dist(1, Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]));
/// assert_eq!(profile.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    dists: Vec<Dist>,
}

impl UsageProfile {
    /// The paper's default: all inputs uniform over their domains.
    pub fn uniform(nvars: usize) -> UsageProfile {
        UsageProfile {
            dists: vec![Dist::Uniform; nvars],
        }
    }

    /// Replaces the marginal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_dist(mut self, var: usize, dist: Dist) -> UsageProfile {
        self.dists[var] = dist;
        self
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Returns `true` if the profile covers no variables.
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// The marginal of variable `var`.
    pub fn dist(&self, var: usize) -> &Dist {
        &self.dists[var]
    }

    /// Restricts the profile to the given variables (in that order),
    /// aligning it with a projected box.
    pub fn project(&self, vars: &[usize]) -> UsageProfile {
        UsageProfile {
            dists: vars.iter().map(|&i| self.dists[i].clone()).collect(),
        }
    }

    /// Probability that an input drawn from the profile lands in `boxed`,
    /// where `domain` is the full input box. Both boxes must have the same
    /// dimensionality as the profile.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn box_probability(&self, boxed: &IntervalBox, domain: &IntervalBox) -> f64 {
        assert_eq!(boxed.ndim(), self.len(), "box/profile dimension mismatch");
        assert_eq!(
            domain.ndim(),
            self.len(),
            "domain/profile dimension mismatch"
        );
        self.dists
            .iter()
            .enumerate()
            .map(|(i, d)| d.mass(&boxed[i], &domain[i]))
            .product()
    }

    /// Draws one sample from the profile conditioned on `boxed`, writing
    /// coordinates into `out`. Returns `false` if the conditional mass of
    /// the box is zero.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_in(
        &self,
        boxed: &IntervalBox,
        domain: &IntervalBox,
        rng: &mut impl Rng,
        out: &mut [f64],
    ) -> bool {
        assert_eq!(boxed.ndim(), self.len(), "box/profile dimension mismatch");
        assert_eq!(out.len(), self.len(), "output/profile dimension mismatch");
        for (i, d) in self.dists.iter().enumerate() {
            match d.sample_in(&boxed[i], &domain[i], rng) {
                Some(v) => out[i] = v,
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn uniform_mass_is_width_ratio() {
        let d = Dist::Uniform;
        assert_eq!(d.mass(&iv(0.0, 0.5), &iv(0.0, 1.0)), 0.5);
        assert_eq!(d.mass(&iv(0.0, 2.0), &iv(0.0, 1.0)), 1.0);
        assert_eq!(d.mass(&iv(2.0, 3.0), &iv(0.0, 1.0)), 0.0);
    }

    #[test]
    fn piecewise_mass() {
        // 75% mass on [0, 0.5], 25% on [0.5, 1].
        let d = Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]);
        let dom = iv(0.0, 1.0);
        assert!((d.mass(&iv(0.0, 0.5), &dom) - 0.75).abs() < 1e-12);
        assert!((d.mass(&iv(0.5, 1.0), &dom) - 0.25).abs() < 1e-12);
        assert!((d.mass(&iv(0.0, 1.0), &dom) - 1.0).abs() < 1e-12);
        // Half of the first segment: 0.375.
        assert!((d.mass(&iv(0.0, 0.25), &dom) - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_bad_edges_panics() {
        let _ = Dist::piecewise(vec![0.0, 0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    fn piecewise_weights_normalized() {
        let d = Dist::piecewise(vec![0.0, 1.0, 2.0], vec![2.0, 6.0]);
        if let Dist::Piecewise { weights, .. } = &d {
            assert!((weights[0] - 0.25).abs() < 1e-12);
            assert!((weights[1] - 0.75).abs() < 1e-12);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn uniform_sampling_stays_in_box() {
        let d = Dist::Uniform;
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = d
                .sample_in(&iv(0.25, 0.5), &iv(0.0, 1.0), &mut rng)
                .unwrap();
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn piecewise_sampling_honors_conditioning() {
        let d = Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]);
        let dom = iv(0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        // Condition on [0.25, 0.75]: mass 0.375 below 0.5 vs 0.125 above
        // → 75% of samples should fall below 0.5.
        let n = 20_000;
        let mut below = 0;
        for _ in 0..n {
            let v = d.sample_in(&iv(0.25, 0.75), &dom, &mut rng).unwrap();
            assert!((0.25..0.75).contains(&v));
            if v < 0.5 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sample_outside_support_returns_none() {
        let d = Dist::piecewise(vec![0.0, 1.0], vec![1.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(d
            .sample_in(&iv(2.0, 3.0), &iv(0.0, 1.0), &mut rng)
            .is_none());
    }

    #[test]
    fn profile_box_probability_is_product() {
        let p = UsageProfile::uniform(2);
        let dom: IntervalBox = [iv(0.0, 1.0), iv(0.0, 2.0)].into_iter().collect();
        let b: IntervalBox = [iv(0.0, 0.5), iv(0.0, 0.5)].into_iter().collect();
        assert!((p.box_probability(&b, &dom) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn profile_projection() {
        let p = UsageProfile::uniform(3).with_dist(2, Dist::piecewise(vec![0.0, 1.0], vec![1.0]));
        let q = p.project(&[2, 0]);
        assert_eq!(q.len(), 2);
        assert!(matches!(q.dist(0), Dist::Piecewise { .. }));
        assert!(matches!(q.dist(1), Dist::Uniform));
    }

    #[test]
    fn profile_sampling_fills_every_dim() {
        let p = UsageProfile::uniform(3);
        let dom: IntervalBox = [iv(0.0, 1.0), iv(-1.0, 1.0), iv(5.0, 6.0)]
            .into_iter()
            .collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = [0.0; 3];
        assert!(p.sample_in(&dom, &dom, &mut rng, &mut out));
        assert!(dom.contains_point(&out));
    }

    #[test]
    fn degenerate_point_dimension() {
        let p = UsageProfile::uniform(1);
        let dom: IntervalBox = [iv(2.0, 2.0)].into_iter().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = [0.0];
        assert!(p.sample_in(&dom, &dom, &mut rng, &mut out));
        assert_eq!(out[0], 2.0);
        assert_eq!(p.box_probability(&dom, &dom), 1.0);
    }
}
