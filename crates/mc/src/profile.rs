//! Usage profiles: the probabilistic characterization of program inputs.
//!
//! The paper assumes inputs are distributed "according to the usage
//! profile" (§3, Eq. 1) and its implementation "uses uniform profiles
//! only" (§5). [`UsageProfile`] supports that plus the extension the
//! conclusion calls for: non-uniform inputs, both as piecewise-uniform
//! (histogram) distributions — the discretization approach of Filieri et
//! al. \[11\] — and as *continuous* marginals ([`Dist::Normal`],
//! [`Dist::Exponential`], [`Dist::TruncatedNormal`]) with exact CDF
//! masses and inverse-CDF conditional sampling (no rejection loops, so
//! sampling stays deterministic per RNG draw).
//!
//! Every marginal is interpreted *conditioned on the variable's bounded
//! domain interval*: `mass(dom, dom) == 1` for every variant, which is
//! what Eq. 1's bounded-domain problem statement requires.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qcoral_interval::{Interval, IntervalBox};

/// A per-variable marginal distribution over the variable's domain
/// interval.
///
/// All variants are normalized over the domain they are queried against:
/// the distribution is *conditioned* on the variable's bounded domain
/// (and, for [`Dist::TruncatedNormal`], additionally on its own
/// truncation interval).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Uniform over the variable's domain.
    Uniform,
    /// Piecewise-uniform (histogram): `edges` are `k+1` increasing break
    /// points spanning the variable's domain; `weights` are the `k`
    /// segment probabilities (they are normalized on construction).
    Piecewise {
        /// Segment boundaries (increasing, length `k+1`).
        edges: Vec<f64>,
        /// Segment probabilities (length `k`, sums to 1).
        weights: Vec<f64>,
    },
    /// Gaussian `N(mu, sigma²)` conditioned on the variable's domain.
    Normal {
        /// Mean of the underlying (untruncated) Gaussian.
        mu: f64,
        /// Standard deviation of the underlying Gaussian (> 0).
        sigma: f64,
    },
    /// Exponential with rate `lambda`, measured from the domain's lower
    /// bound (`density ∝ λ·exp(−λ·(x − dom.lo))`) and conditioned on the
    /// domain.
    Exponential {
        /// Rate parameter (> 0). Larger ⇒ more mass near `dom.lo`.
        lambda: f64,
    },
    /// Gaussian `N(mu, sigma²)` truncated to `[lo, hi]` (then further
    /// conditioned on the variable's domain, if narrower). Outside
    /// `[lo, hi]` the mass is exactly zero.
    TruncatedNormal {
        /// Mean of the underlying Gaussian.
        mu: f64,
        /// Standard deviation of the underlying Gaussian (> 0).
        sigma: f64,
        /// Truncation lower bound.
        lo: f64,
        /// Truncation upper bound (> `lo`).
        hi: f64,
    },
}

impl Dist {
    /// Builds a histogram distribution, normalizing the weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 edges, edges are not strictly increasing,
    /// weights have the wrong length, are negative, or sum to zero.
    pub fn piecewise(edges: Vec<f64>, mut weights: Vec<f64>) -> Dist {
        assert!(edges.len() >= 2, "histogram needs at least one segment");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        assert_eq!(
            weights.len(),
            edges.len() - 1,
            "need one weight per segment"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        for w in &mut weights {
            *w /= total;
        }
        Dist::Piecewise { edges, weights }
    }

    /// Builds a domain-conditioned Gaussian.
    ///
    /// # Panics
    ///
    /// Panics unless `mu` is finite and `sigma` is finite and positive.
    pub fn normal(mu: f64, sigma: f64) -> Dist {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "normal needs finite mu and positive finite sigma"
        );
        Dist::Normal { mu, sigma }
    }

    /// Builds a domain-anchored exponential.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda` is finite and positive.
    pub fn exponential(lambda: f64) -> Dist {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "exponential needs a positive finite rate"
        );
        Dist::Exponential { lambda }
    }

    /// Builds a truncated Gaussian over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are finite, `sigma > 0` and
    /// `lo < hi`.
    pub fn truncated_normal(mu: f64, sigma: f64, lo: f64, hi: f64) -> Dist {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma > 0.0,
            "truncated normal needs finite mu and positive finite sigma"
        );
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "truncated normal needs finite lo < hi"
        );
        Dist::TruncatedNormal { mu, sigma, lo, hi }
    }

    /// Re-validates a (possibly deserialized) distribution and rebuilds
    /// it through its checked constructor, so invariants the wire format
    /// cannot enforce (normalized weights, increasing edges, positive
    /// scale parameters) hold again. Network-facing code must call this
    /// before using an untrusted `Dist`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validated(&self) -> Result<Dist, String> {
        match self {
            Dist::Uniform => Ok(Dist::Uniform),
            Dist::Piecewise { edges, weights } => {
                if edges.len() < 2
                    || !edges.iter().all(|e| e.is_finite())
                    || !edges.windows(2).all(|w| w[0] < w[1])
                {
                    return Err("edges must be >= 2 finite, strictly increasing values".to_string());
                }
                if weights.len() != edges.len() - 1
                    || !weights.iter().all(|w| w.is_finite() && *w >= 0.0)
                    || weights.iter().sum::<f64>() <= 0.0
                {
                    return Err(
                        "need one finite non-negative weight per segment, with a positive sum"
                            .to_string(),
                    );
                }
                Ok(Dist::piecewise(edges.clone(), weights.clone()))
            }
            Dist::Normal { mu, sigma } => {
                if !(mu.is_finite() && sigma.is_finite() && *sigma > 0.0) {
                    return Err("normal needs finite mu and positive finite sigma".to_string());
                }
                Ok(Dist::normal(*mu, *sigma))
            }
            Dist::Exponential { lambda } => {
                if !(lambda.is_finite() && *lambda > 0.0) {
                    return Err("exponential needs a positive finite rate".to_string());
                }
                Ok(Dist::exponential(*lambda))
            }
            Dist::TruncatedNormal { mu, sigma, lo, hi } => {
                if !(mu.is_finite() && sigma.is_finite() && *sigma > 0.0) {
                    return Err(
                        "truncated normal needs finite mu and positive finite sigma".to_string()
                    );
                }
                if !(lo.is_finite() && hi.is_finite() && lo < hi) {
                    return Err("truncated normal needs finite lo < hi".to_string());
                }
                Ok(Dist::truncated_normal(*mu, *sigma, *lo, *hi))
            }
        }
    }

    /// [`Dist::validated`] plus the checks that need the variable's
    /// domain interval: a [`Dist::TruncatedNormal`] whose truncation
    /// does not overlap the domain would make every mass query return 0
    /// (an exact-looking "probability 0" instead of an error), so it is
    /// rejected here.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validated_in(&self, dom: &Interval) -> Result<Dist, String> {
        let dist = self.validated()?;
        if let Dist::TruncatedNormal { lo, hi, .. } = &dist {
            let sup = dist.support(dom);
            if sup.is_empty() || (sup.width() == 0.0 && dom.width() > 0.0) {
                return Err(format!(
                    "truncation [{lo}, {hi}] does not overlap the variable's domain [{}, {}]",
                    dom.lo(),
                    dom.hi()
                ));
            }
        }
        Ok(dist)
    }

    /// The sub-interval of `dom` the distribution can place mass on:
    /// `dom` itself for every variant except [`Dist::TruncatedNormal`],
    /// which clips to its truncation interval.
    pub fn support(&self, dom: &Interval) -> Interval {
        match self {
            Dist::TruncatedNormal { lo, hi, .. } => Interval::new(*lo, *hi).intersect(dom),
            _ => *dom,
        }
    }

    /// Raw (unconditioned) CDF of the underlying continuous law at `x`,
    /// for the continuous variants; `None` for `Uniform`/`Piecewise`
    /// (whose mass is computed segment-wise instead).
    fn raw_cdf(&self, x: f64, dom: &Interval) -> Option<f64> {
        match self {
            Dist::Uniform | Dist::Piecewise { .. } => None,
            Dist::Normal { mu, sigma } | Dist::TruncatedNormal { mu, sigma, .. } => {
                Some(std_normal_cdf((x - mu) / sigma))
            }
            Dist::Exponential { lambda } => {
                let t = (x - dom.lo()).max(0.0);
                Some(-(-lambda * t).exp_m1())
            }
        }
    }

    /// Raw quantile (inverse of [`Dist::raw_cdf`]) for the continuous
    /// variants.
    fn raw_quantile(&self, p: f64, dom: &Interval) -> f64 {
        match self {
            Dist::Uniform | Dist::Piecewise { .. } => {
                unreachable!("quantile is only defined for continuous variants")
            }
            Dist::Normal { mu, sigma } | Dist::TruncatedNormal { mu, sigma, .. } => {
                mu + sigma * std_normal_quantile(p)
            }
            Dist::Exponential { lambda } => {
                // -ln(1-p)/λ, measured from the domain's lower bound.
                dom.lo() + (-(-p).ln_1p()) / lambda
            }
        }
    }

    /// Probability mass the distribution assigns to `iv`, relative to the
    /// variable's whole domain `dom`.
    ///
    /// The mass is additive over partitions of the domain and
    /// `mass(dom, dom) == 1` (degenerate cases — empty overlap, a
    /// zero-probability support — fall back to uniform mass so the axiom
    /// holds for every variant).
    pub fn mass(&self, iv: &Interval, dom: &Interval) -> f64 {
        match self {
            Dist::Uniform => {
                let clipped = iv.intersect(dom);
                if clipped.is_empty() {
                    return 0.0;
                }
                let dw = dom.width();
                if dw == 0.0 {
                    1.0
                } else {
                    (clipped.width() / dw).min(1.0)
                }
            }
            Dist::Piecewise { edges, weights } => {
                let clipped = iv.intersect(dom);
                if clipped.is_empty() {
                    return 0.0;
                }
                let mut mass = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    let seg = Interval::new(edges[i], edges[i + 1]);
                    let overlap = seg.intersect(&clipped);
                    if !overlap.is_empty() && seg.width() > 0.0 {
                        mass += w * overlap.width() / seg.width();
                    }
                }
                mass.min(1.0)
            }
            _ => {
                let sup = self.support(dom);
                let clipped = iv.intersect(&sup);
                if clipped.is_empty() {
                    return 0.0;
                }
                let flo = self.raw_cdf(sup.lo(), dom).expect("continuous");
                let fhi = self.raw_cdf(sup.hi(), dom).expect("continuous");
                let denom = fhi - flo;
                if denom <= 0.0 {
                    // The support carries no probability under the raw
                    // law (deep tail, or a point support): fall back to
                    // uniform mass so domain masses still sum to 1.
                    let sw = sup.width();
                    return if sw == 0.0 {
                        1.0
                    } else {
                        (clipped.width() / sw).min(1.0)
                    };
                }
                let fa = self.raw_cdf(clipped.lo(), dom).expect("continuous");
                let fb = self.raw_cdf(clipped.hi(), dom).expect("continuous");
                ((fb - fa) / denom).clamp(0.0, 1.0)
            }
        }
    }

    /// Samples a value from the distribution *conditioned* on lying in
    /// `iv` (which must intersect the domain). Returns `None` — without
    /// drawing from `rng`, looping, or panicking — whenever the
    /// conditional mass of `iv` is zero: an empty or zero-width clipped
    /// interval (inside a wider domain), a region outside a histogram's
    /// or truncation's support, or a tail so deep the CDF mass
    /// underflows.
    ///
    /// Continuous variants sample by inverse CDF — exactly one uniform
    /// draw per sample, never a rejection loop — so the consumed RNG
    /// stream is a deterministic function of the request.
    pub fn sample_in(&self, iv: &Interval, dom: &Interval, rng: &mut impl Rng) -> Option<f64> {
        match self {
            Dist::Uniform => {
                let clipped = iv.intersect(dom);
                if clipped.is_empty() || (clipped.width() == 0.0 && dom.width() > 0.0) {
                    return None;
                }
                Some(uniform_in(&clipped, rng))
            }
            Dist::Piecewise { edges, weights } => {
                let clipped = iv.intersect(dom);
                if clipped.is_empty() {
                    return None;
                }
                // Conditional masses of each overlapping segment.
                let mut masses = Vec::with_capacity(weights.len());
                let mut total = 0.0;
                for (i, w) in weights.iter().enumerate() {
                    let seg = Interval::new(edges[i], edges[i + 1]);
                    let overlap = seg.intersect(&clipped);
                    let m = if overlap.is_empty() || seg.width() == 0.0 || overlap.width() == 0.0 {
                        0.0
                    } else {
                        w * overlap.width() / seg.width()
                    };
                    masses.push((m, overlap));
                    total += m;
                }
                if total <= 0.0 {
                    return None;
                }
                let mut pick = rng.gen_range(0.0..total);
                for (m, overlap) in &masses {
                    if *m > 0.0 && pick < *m {
                        return Some(uniform_in(overlap, rng));
                    }
                    pick -= m;
                }
                // Floating-point slack: fall back to the last non-empty
                // overlap.
                masses
                    .iter()
                    .rev()
                    .find(|(m, _)| *m > 0.0)
                    .map(|(_, o)| uniform_in(o, rng))
            }
            _ => {
                let sup = self.support(dom);
                let clipped = iv.intersect(&sup);
                if clipped.is_empty() {
                    return None;
                }
                if clipped.width() == 0.0 {
                    // A point interval carries mass only when it *is* the
                    // whole (degenerate) support.
                    return (sup.width() == 0.0).then(|| clipped.lo());
                }
                let flo = self.raw_cdf(sup.lo(), dom).expect("continuous");
                let fhi = self.raw_cdf(sup.hi(), dom).expect("continuous");
                if fhi - flo <= 0.0 {
                    // Zero-probability support: mass() falls back to
                    // uniform, so sampling does too.
                    return Some(uniform_in(&clipped, rng));
                }
                let fa = self.raw_cdf(clipped.lo(), dom).expect("continuous");
                let fb = self.raw_cdf(clipped.hi(), dom).expect("continuous");
                if fb - fa <= 0.0 {
                    // The clipped interval's mass underflows: it can
                    // never be hit by an exact conditional draw.
                    return None;
                }
                let u = rng.gen_range(0.0..1.0);
                let x = self.raw_quantile(fa + u * (fb - fa), dom);
                // Inverse-CDF rounding can escape the interval by an ulp;
                // clamp back in.
                Some(x.clamp(clipped.lo(), clipped.hi()))
            }
        }
    }

    /// Probability *density* at `x`, conditioned on the domain (w.r.t.
    /// Lebesgue measure; integrates to 1 over `dom`). Zero outside the
    /// support. Degenerate supports fall back to the uniform density,
    /// matching [`Dist::mass`].
    pub fn density(&self, x: f64, dom: &Interval) -> f64 {
        if !dom.contains(x) {
            return 0.0;
        }
        match self {
            Dist::Uniform => {
                let dw = dom.width();
                if dw > 0.0 {
                    1.0 / dw
                } else {
                    f64::INFINITY
                }
            }
            Dist::Piecewise { edges, weights } => {
                for (i, w) in weights.iter().enumerate() {
                    let seg = Interval::new(edges[i], edges[i + 1]);
                    if seg.contains(x) && seg.width() > 0.0 {
                        return w / seg.width();
                    }
                }
                0.0
            }
            _ => {
                let sup = self.support(dom);
                if !sup.contains(x) {
                    return 0.0;
                }
                let flo = self.raw_cdf(sup.lo(), dom).expect("continuous");
                let fhi = self.raw_cdf(sup.hi(), dom).expect("continuous");
                let denom = fhi - flo;
                if denom <= 0.0 {
                    let sw = sup.width();
                    return if sw > 0.0 { 1.0 / sw } else { f64::INFINITY };
                }
                let raw = match self {
                    Dist::Normal { mu, sigma } | Dist::TruncatedNormal { mu, sigma, .. } => {
                        let z = (x - mu) / sigma;
                        (-0.5 * z * z).exp() / (sigma * SQRT_TWO_PI)
                    }
                    Dist::Exponential { lambda } => {
                        lambda * (-lambda * (x - dom.lo()).max(0.0)).exp()
                    }
                    _ => unreachable!(),
                };
                raw / denom
            }
        }
    }

    /// Conditional CDF of the distribution within `dom`:
    /// `P[X ≤ x | X ∈ dom]` (clamped to `[0, 1]`). Used by the
    /// discretizer's error bound and handy for tests.
    pub fn cdf(&self, x: f64, dom: &Interval) -> f64 {
        if x <= dom.lo() {
            return 0.0;
        }
        if x >= dom.hi() {
            return 1.0;
        }
        self.mass(&Interval::new(dom.lo(), x), dom)
    }
}

/// √(2π), for the normal density.
const SQRT_TWO_PI: f64 = 2.506_628_274_631_000_5;

/// Standard normal CDF Φ(z), double precision (Graeme West's adaptation
/// of Hart's algorithm; absolute error < 1e-15 across the range,
/// including the deep lower tail).
pub fn std_normal_cdf(z: f64) -> f64 {
    let xabs = z.abs();
    let p = if xabs > 37.0 {
        0.0
    } else {
        let ex = (-xabs * xabs / 2.0).exp();
        if xabs < 7.071_067_811_865_475 {
            let num = ((((((3.526_249_659_989_11e-2 * xabs + 0.700_383_064_443_688) * xabs
                + 6.373_962_203_531_65)
                * xabs
                + 33.912_866_078_383)
                * xabs
                + 112.079_291_497_871)
                * xabs
                + 221.213_596_169_931)
                * xabs
                + 220.206_867_912_376)
                * ex;
            let den = ((((((8.838_834_764_831_84e-2 * xabs + 1.755_667_163_182_64) * xabs
                + 16.064_177_579_207)
                * xabs
                + 86.780_732_202_946_1)
                * xabs
                + 296.564_248_779_674)
                * xabs
                + 637.333_633_378_831)
                * xabs
                + 793.826_512_519_948)
                * xabs
                + 440.413_735_824_752;
            num / den
        } else {
            let b = xabs + 0.65;
            let b = xabs + 4.0 / b;
            let b = xabs + 3.0 / b;
            let b = xabs + 2.0 / b;
            let b = xabs + 1.0 / b;
            ex / (b * 2.506_628_274_631)
        }
    };
    if z > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Standard normal quantile Φ⁻¹(p) for `p ∈ (0, 1)`: Acklam's rational
/// approximation refined with one Halley step against
/// [`std_normal_cdf`], giving ~1e-14 relative accuracy. Out-of-range `p`
/// saturates to ∓∞ (callers clamp into their interval).
pub fn std_normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };
    // One Halley refinement against the high-precision CDF. Deep in the
    // tails `exp(x²/2)` overflows and the step degenerates — Acklam's
    // raw estimate is already sub-ulp there, so keep it.
    let e = std_normal_cdf(x) - p;
    let u = e * SQRT_TWO_PI * (x * x / 2.0).exp();
    let refined = x - u / (1.0 + x * u / 2.0);
    if refined.is_finite() {
        refined
    } else {
        x
    }
}

fn uniform_in(iv: &Interval, rng: &mut impl Rng) -> f64 {
    if iv.width() == 0.0 {
        iv.lo()
    } else {
        rng.gen_range(iv.lo()..iv.hi())
    }
}

/// A joint input distribution: independent per-variable marginals over the
/// bounded input domain.
///
/// # Example
///
/// ```
/// use qcoral_mc::{Dist, UsageProfile};
///
/// // Three inputs: uniform, biased towards the lower half, and Gaussian.
/// let profile = UsageProfile::uniform(3)
///     .with_dist(1, Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]))
///     .with_dist(2, Dist::normal(0.5, 0.1));
/// assert_eq!(profile.len(), 3);
/// assert!(!profile.is_uniform());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UsageProfile {
    dists: Vec<Dist>,
}

impl UsageProfile {
    /// The paper's default: all inputs uniform over their domains.
    pub fn uniform(nvars: usize) -> UsageProfile {
        UsageProfile {
            dists: vec![Dist::Uniform; nvars],
        }
    }

    /// Replaces the marginal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_dist(mut self, var: usize, dist: Dist) -> UsageProfile {
        self.dists[var] = dist;
        self
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Returns `true` if the profile covers no variables.
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// Returns `true` when every marginal is [`Dist::Uniform`] — the
    /// paper's baseline profile, for which profile-aware machinery
    /// (stratum alignment, reweighting) is a no-op.
    pub fn is_uniform(&self) -> bool {
        self.dists.iter().all(|d| matches!(d, Dist::Uniform))
    }

    /// The marginal of variable `var`.
    pub fn dist(&self, var: usize) -> &Dist {
        &self.dists[var]
    }

    /// Re-validates every marginal (see [`Dist::validated`]), rebuilding
    /// the profile through the checked constructors.
    ///
    /// # Errors
    ///
    /// Returns `(variable index, description)` of the first invalid
    /// marginal.
    pub fn validated(&self) -> Result<UsageProfile, (usize, String)> {
        let mut out = UsageProfile::uniform(self.len());
        for (i, d) in self.dists.iter().enumerate() {
            out.dists[i] = d.validated().map_err(|e| (i, e))?;
        }
        Ok(out)
    }

    /// [`UsageProfile::validated`] plus the per-variable domain checks
    /// of [`Dist::validated_in`] — the validation every consumer that
    /// knows the input domain should use.
    ///
    /// # Errors
    ///
    /// Returns `(variable index, description)` of the first invalid
    /// marginal.
    ///
    /// # Panics
    ///
    /// Panics on profile/domain dimension mismatch.
    pub fn validated_in(&self, domain: &IntervalBox) -> Result<UsageProfile, (usize, String)> {
        assert_eq!(
            domain.ndim(),
            self.len(),
            "domain/profile dimension mismatch"
        );
        let mut out = UsageProfile::uniform(self.len());
        for (i, d) in self.dists.iter().enumerate() {
            out.dists[i] = d.validated_in(&domain[i]).map_err(|e| (i, e))?;
        }
        Ok(out)
    }

    /// Restricts the profile to the given variables (in that order),
    /// aligning it with a projected box.
    pub fn project(&self, vars: &[usize]) -> UsageProfile {
        UsageProfile {
            dists: vars.iter().map(|&i| self.dists[i].clone()).collect(),
        }
    }

    /// Probability that an input drawn from the profile lands in `boxed`,
    /// where `domain` is the full input box. Both boxes must have the same
    /// dimensionality as the profile.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn box_probability(&self, boxed: &IntervalBox, domain: &IntervalBox) -> f64 {
        assert_eq!(boxed.ndim(), self.len(), "box/profile dimension mismatch");
        assert_eq!(
            domain.ndim(),
            self.len(),
            "domain/profile dimension mismatch"
        );
        self.dists
            .iter()
            .enumerate()
            .map(|(i, d)| d.mass(&boxed[i], &domain[i]))
            .product()
    }

    /// Joint probability density at `point`, conditioned on `domain`
    /// (product of the per-variable [`Dist::density`] values).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn density(&self, point: &[f64], domain: &IntervalBox) -> f64 {
        assert_eq!(point.len(), self.len(), "point/profile dimension mismatch");
        assert_eq!(
            domain.ndim(),
            self.len(),
            "domain/profile dimension mismatch"
        );
        self.dists
            .iter()
            .enumerate()
            .map(|(i, d)| d.density(point[i], &domain[i]))
            .product()
    }

    /// Draws one sample from the profile conditioned on `boxed`, writing
    /// coordinates into `out`. Returns `false` if the conditional mass of
    /// the box is zero.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn sample_in(
        &self,
        boxed: &IntervalBox,
        domain: &IntervalBox,
        rng: &mut impl Rng,
        out: &mut [f64],
    ) -> bool {
        assert_eq!(boxed.ndim(), self.len(), "box/profile dimension mismatch");
        assert_eq!(out.len(), self.len(), "output/profile dimension mismatch");
        for (i, d) in self.dists.iter().enumerate() {
            match d.sample_in(&boxed[i], &domain[i], rng) {
                Some(v) => out[i] = v,
                None => return false,
            }
        }
        true
    }
}

/// Parses a textual profile specification into named marginals, e.g.
///
/// ```text
/// x ~ N(0, 1); y ~ Exp(2); z ~ TN(0.5, 0.1, 0, 1); w ~ U; v ~ H(0, 0.5, 1 | 3, 1)
/// ```
///
/// Entries are `name ~ dist` pairs separated by `;`. Distributions:
///
/// * `U` — uniform over the variable's domain,
/// * `N(mu, sigma)` — domain-conditioned Gaussian,
/// * `Exp(lambda)` — exponential anchored at the domain's lower bound,
/// * `TN(mu, sigma, lo, hi)` — Gaussian truncated to `[lo, hi]`,
/// * `H(e0, …, ek | w1, …, wk)` — histogram with `k+1` edges and `k`
///   weights (normalized).
///
/// Names are case-insensitive (`n`, `exp`, `tn`, `u`, `h`). Variables
/// not mentioned stay uniform.
///
/// # Errors
///
/// Returns a human-readable description of the first malformed entry.
pub fn parse_profile_spec(spec: &str) -> Result<Vec<(String, Dist)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, dist_src) = entry
            .split_once('~')
            .ok_or_else(|| format!("`{entry}`: expected `name ~ dist`"))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("`{entry}`: invalid variable name `{name}`"));
        }
        out.push((name.to_string(), parse_dist_spec(dist_src.trim())?));
    }
    if out.is_empty() {
        return Err("empty profile specification".to_string());
    }
    Ok(out)
}

/// Parses one distribution term of the [`parse_profile_spec`] grammar.
///
/// # Errors
///
/// Returns a human-readable description of the syntax error.
pub fn parse_dist_spec(src: &str) -> Result<Dist, String> {
    let src = src.trim();
    let lower = src.to_ascii_lowercase();
    if lower == "u" || lower == "uniform" {
        return Ok(Dist::Uniform);
    }
    let (func, rest) = src
        .split_once('(')
        .ok_or_else(|| format!("`{src}`: expected `U` or `fn(args)`"))?;
    let args = rest
        .strip_suffix(')')
        .ok_or_else(|| format!("`{src}`: missing closing parenthesis"))?;
    let func = func.trim().to_ascii_lowercase();
    let nums = |s: &str| -> Result<Vec<f64>, String> {
        s.split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("`{src}`: `{}` is not a number", t.trim()))
            })
            .collect()
    };
    let checked = |d: Result<Dist, String>| d.map_err(|e| format!("`{src}`: {e}"));
    match func.as_str() {
        "n" | "normal" => {
            let a = nums(args)?;
            if a.len() != 2 {
                return Err(format!("`{src}`: N takes (mu, sigma)"));
            }
            checked(
                Dist::Normal {
                    mu: a[0],
                    sigma: a[1],
                }
                .validated(),
            )
        }
        "exp" | "exponential" => {
            let a = nums(args)?;
            if a.len() != 1 {
                return Err(format!("`{src}`: Exp takes (lambda)"));
            }
            checked(Dist::Exponential { lambda: a[0] }.validated())
        }
        "tn" | "truncnormal" => {
            let a = nums(args)?;
            if a.len() != 4 {
                return Err(format!("`{src}`: TN takes (mu, sigma, lo, hi)"));
            }
            checked(
                Dist::TruncatedNormal {
                    mu: a[0],
                    sigma: a[1],
                    lo: a[2],
                    hi: a[3],
                }
                .validated(),
            )
        }
        "h" | "hist" | "histogram" => {
            let (edges, weights) = args
                .split_once('|')
                .ok_or_else(|| format!("`{src}`: H takes `edges | weights`"))?;
            checked(
                Dist::Piecewise {
                    edges: nums(edges)?,
                    weights: nums(weights)?,
                }
                .validated(),
            )
        }
        other => Err(format!("`{src}`: unknown distribution `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn uniform_mass_is_width_ratio() {
        let d = Dist::Uniform;
        assert_eq!(d.mass(&iv(0.0, 0.5), &iv(0.0, 1.0)), 0.5);
        assert_eq!(d.mass(&iv(0.0, 2.0), &iv(0.0, 1.0)), 1.0);
        assert_eq!(d.mass(&iv(2.0, 3.0), &iv(0.0, 1.0)), 0.0);
    }

    #[test]
    fn piecewise_mass() {
        // 75% mass on [0, 0.5], 25% on [0.5, 1].
        let d = Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]);
        let dom = iv(0.0, 1.0);
        assert!((d.mass(&iv(0.0, 0.5), &dom) - 0.75).abs() < 1e-12);
        assert!((d.mass(&iv(0.5, 1.0), &dom) - 0.25).abs() < 1e-12);
        assert!((d.mass(&iv(0.0, 1.0), &dom) - 1.0).abs() < 1e-12);
        // Half of the first segment: 0.375.
        assert!((d.mass(&iv(0.0, 0.25), &dom) - 0.375).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn piecewise_bad_edges_panics() {
        let _ = Dist::piecewise(vec![0.0, 0.0, 1.0], vec![1.0, 1.0]);
    }

    #[test]
    fn piecewise_weights_normalized() {
        let d = Dist::piecewise(vec![0.0, 1.0, 2.0], vec![2.0, 6.0]);
        if let Dist::Piecewise { weights, .. } = &d {
            assert!((weights[0] - 0.25).abs() < 1e-12);
            assert!((weights[1] - 0.75).abs() < 1e-12);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn std_normal_cdf_reference_values() {
        // Φ(0) = 0.5; Φ(1.96) ≈ 0.975; deep tails.
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((std_normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((std_normal_cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-14);
        assert!((std_normal_cdf(5.0) - 0.999_999_713_348_428).abs() < 1e-12);
        assert!(std_normal_cdf(-40.0) == 0.0);
        assert!(std_normal_cdf(40.0) == 1.0);
    }

    #[test]
    fn std_normal_quantile_inverts_cdf() {
        for p in [1e-10, 1e-4, 0.01, 0.2, 0.5, 0.7, 0.99, 1.0 - 1e-6] {
            let z = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-12 * p.max(1e-3),
                "p={p} z={z} cdf={}",
                std_normal_cdf(z)
            );
        }
        assert_eq!(std_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn normal_mass_matches_phi() {
        // N(0, 1) conditioned on [-1, 1]: mass of [0, 1] is exactly 1/2
        // by symmetry; mass of [-1, 0.5] is (Φ(.5)−Φ(−1))/(Φ(1)−Φ(−1)).
        let d = Dist::normal(0.0, 1.0);
        let dom = iv(-1.0, 1.0);
        assert!((d.mass(&iv(0.0, 1.0), &dom) - 0.5).abs() < 1e-14);
        let expect = (std_normal_cdf(0.5) - std_normal_cdf(-1.0))
            / (std_normal_cdf(1.0) - std_normal_cdf(-1.0));
        assert!((d.mass(&iv(-1.0, 0.5), &dom) - expect).abs() < 1e-14);
        assert!((d.mass(&dom, &dom) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn exponential_mass_closed_form() {
        // Exp(2) on [0, 1]: P[x < 0.5 | x < 1] = (1−e⁻¹)/(1−e⁻²).
        let d = Dist::exponential(2.0);
        let dom = iv(0.0, 1.0);
        let expect = (1.0 - (-1.0f64).exp()) / (1.0 - (-2.0f64).exp());
        assert!((d.mass(&iv(0.0, 0.5), &dom) - expect).abs() < 1e-14);
        // Anchored at dom.lo: shifting the domain shifts the law.
        let dom2 = iv(5.0, 6.0);
        assert!((d.mass(&iv(5.0, 5.5), &dom2) - expect).abs() < 1e-14);
        assert!((d.mass(&dom2, &dom2) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn truncated_normal_support_clips() {
        let d = Dist::truncated_normal(0.5, 0.1, 0.2, 0.8);
        let dom = iv(0.0, 1.0);
        // No mass outside the truncation interval.
        assert_eq!(d.mass(&iv(0.0, 0.2), &dom), 0.0);
        assert_eq!(d.mass(&iv(0.8, 1.0), &dom), 0.0);
        assert!((d.mass(&iv(0.2, 0.8), &dom) - 1.0).abs() < 1e-14);
        // Symmetric around the mean.
        assert!((d.mass(&iv(0.2, 0.5), &dom) - 0.5).abs() < 1e-14);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(d.sample_in(&iv(0.0, 0.2), &dom, &mut rng).is_none());
    }

    #[test]
    fn continuous_sampling_stays_in_interval_and_tracks_mass() {
        let cases: Vec<(Dist, Interval)> = vec![
            (Dist::normal(0.3, 0.2), iv(0.0, 1.0)),
            (Dist::exponential(3.0), iv(0.0, 2.0)),
            (Dist::truncated_normal(0.5, 0.15, 0.1, 0.9), iv(0.0, 1.0)),
        ];
        for (d, dom) in cases {
            let probe = iv(0.25, 0.75);
            let mid = iv(0.25, 0.5);
            let p_low = d.mass(&mid, &dom) / d.mass(&probe, &dom);
            let mut rng = SmallRng::seed_from_u64(17);
            let n = 20_000;
            let mut below = 0;
            for _ in 0..n {
                let v = d.sample_in(&probe, &dom, &mut rng).unwrap();
                assert!((0.25..=0.75).contains(&v), "{d:?} sampled {v}");
                if v < 0.5 {
                    below += 1;
                }
            }
            let frac = below as f64 / n as f64;
            assert!((frac - p_low).abs() < 0.015, "{d:?}: {frac} vs {p_low}");
        }
    }

    #[test]
    fn uniform_sampling_stays_in_box() {
        let d = Dist::Uniform;
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = d
                .sample_in(&iv(0.25, 0.5), &iv(0.0, 1.0), &mut rng)
                .unwrap();
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn piecewise_sampling_honors_conditioning() {
        let d = Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]);
        let dom = iv(0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        // Condition on [0.25, 0.75]: mass 0.375 below 0.5 vs 0.125 above
        // → 75% of samples should fall below 0.5.
        let n = 20_000;
        let mut below = 0;
        for _ in 0..n {
            let v = d.sample_in(&iv(0.25, 0.75), &dom, &mut rng).unwrap();
            assert!((0.25..0.75).contains(&v));
            if v < 0.5 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn sample_outside_support_returns_none() {
        let d = Dist::piecewise(vec![0.0, 1.0], vec![1.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(d
            .sample_in(&iv(2.0, 3.0), &iv(0.0, 1.0), &mut rng)
            .is_none());
    }

    /// The rejection-edge-case contract: zero-width intervals inside a
    /// wider domain, and intervals whose clipped mass underflows, return
    /// `None` deterministically — no looping, no panic, no RNG draw.
    #[test]
    fn zero_mass_sampling_is_deterministically_none() {
        let dom = iv(0.0, 1.0);
        let point = iv(0.5, 0.5);
        let dists = [
            Dist::Uniform,
            Dist::piecewise(vec![0.0, 0.5, 1.0], vec![1.0, 1.0]),
            Dist::normal(0.5, 0.1),
            Dist::exponential(2.0),
            Dist::truncated_normal(0.5, 0.1, 0.0, 1.0),
        ];
        for d in &dists {
            let mut rng = SmallRng::seed_from_u64(9);
            assert!(
                d.sample_in(&point, &dom, &mut rng).is_none(),
                "{d:?}: zero-width interval must sample None"
            );
            // The RNG must not have been consumed: the next draw equals a
            // fresh stream's first draw.
            let mut fresh = SmallRng::seed_from_u64(9);
            assert_eq!(
                rng.gen_range(0.0..1.0),
                fresh.gen_range(0.0..1.0),
                "{d:?}: None must not consume the RNG"
            );
        }
        // A tail so deep its CDF mass underflows: deterministic None.
        let d = Dist::normal(0.0, 1e-3);
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(
            d.sample_in(&iv(0.9, 1.0), &iv(-1.0, 1.0), &mut rng)
                .is_none(),
            "underflowed tail mass must sample None"
        );
        assert_eq!(d.mass(&iv(0.9, 1.0), &iv(-1.0, 1.0)), 0.0);
    }

    /// A zero-probability support falls back to uniform for both mass
    /// and sampling, keeping the domain mass at 1.
    #[test]
    fn degenerate_support_falls_back_to_uniform() {
        // N(0, σ) with the domain 40+σ away: raw mass underflows to 0.
        let d = Dist::normal(0.0, 1e-6);
        let dom = iv(1.0, 2.0);
        assert!((d.mass(&dom, &dom) - 1.0).abs() < 1e-15);
        assert!((d.mass(&iv(1.0, 1.5), &dom) - 0.5).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(5);
        let v = d.sample_in(&iv(1.0, 1.5), &dom, &mut rng).unwrap();
        assert!((1.0..1.5).contains(&v));
    }

    #[test]
    fn density_integrates_consistently_with_mass() {
        // Midpoint-rule integral of the density ≈ mass, per variant.
        let dom = iv(0.0, 1.0);
        for d in [
            Dist::Uniform,
            Dist::piecewise(vec![0.0, 0.25, 1.0], vec![1.0, 3.0]),
            Dist::normal(0.4, 0.2),
            Dist::exponential(1.5),
            Dist::truncated_normal(0.5, 0.2, 0.1, 0.9),
        ] {
            let probe = iv(0.3, 0.7);
            let n = 20_000;
            let h = probe.width() / n as f64;
            let integral: f64 = (0..n)
                .map(|i| d.density(probe.lo() + (i as f64 + 0.5) * h, &dom) * h)
                .sum();
            let mass = d.mass(&probe, &dom);
            assert!(
                (integral - mass).abs() < 1e-5,
                "{d:?}: ∫density {integral} vs mass {mass}"
            );
        }
    }

    #[test]
    fn validated_rejects_bad_parameters() {
        assert!(Dist::Normal {
            mu: 0.0,
            sigma: 0.0
        }
        .validated()
        .is_err());
        assert!(Dist::Normal {
            mu: f64::NAN,
            sigma: 1.0
        }
        .validated()
        .is_err());
        assert!(Dist::Exponential { lambda: -1.0 }.validated().is_err());
        assert!(Dist::TruncatedNormal {
            mu: 0.0,
            sigma: 1.0,
            lo: 1.0,
            hi: 1.0
        }
        .validated()
        .is_err());
        assert!(Dist::Piecewise {
            edges: vec![0.0, 0.0],
            weights: vec![1.0]
        }
        .validated()
        .is_err());
        assert!(Dist::normal(0.0, 1.0).validated().is_ok());
    }

    #[test]
    fn validated_in_rejects_domain_disjoint_truncations() {
        let dom = iv(0.0, 1.0);
        // Well-formed in isolation, but no mass can land in the domain:
        // accepted by validated(), rejected by validated_in().
        let d = Dist::truncated_normal(5.5, 0.5, 5.0, 6.0);
        assert!(d.validated().is_ok());
        let err = d.validated_in(&dom).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
        // Touching at a single point (zero-width support) is just as
        // unusable inside a wider domain.
        let point = Dist::truncated_normal(1.5, 0.5, 1.0, 2.0);
        assert!(point.validated_in(&dom).is_err());
        // Overlapping truncations and every other variant pass through.
        assert!(Dist::truncated_normal(0.5, 0.1, 0.25, 2.0)
            .validated_in(&dom)
            .is_ok());
        assert!(Dist::normal(5.0, 1.0).validated_in(&dom).is_ok());
        let profile =
            UsageProfile::uniform(2).with_dist(1, Dist::truncated_normal(5.5, 0.5, 5.0, 6.0));
        let dbox: IntervalBox = [iv(0.0, 1.0), iv(0.0, 1.0)].into_iter().collect();
        assert_eq!(profile.validated_in(&dbox).unwrap_err().0, 1);
    }

    #[test]
    fn profile_spec_parses_every_variant() {
        let spec = "x ~ N(0, 1); y~Exp(2) ;z ~ TN(0.5, 0.1, 0, 1); u ~ U; h ~ H(0, 0.5, 1 | 3, 1)";
        let named = parse_profile_spec(spec).unwrap();
        assert_eq!(named.len(), 5);
        assert_eq!(named[0], ("x".to_string(), Dist::normal(0.0, 1.0)));
        assert_eq!(named[1], ("y".to_string(), Dist::exponential(2.0)));
        assert_eq!(
            named[2],
            ("z".to_string(), Dist::truncated_normal(0.5, 0.1, 0.0, 1.0))
        );
        assert_eq!(named[3], ("u".to_string(), Dist::Uniform));
        assert_eq!(
            named[4],
            (
                "h".to_string(),
                Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0])
            )
        );
    }

    #[test]
    fn profile_spec_rejects_malformed_entries() {
        for bad in [
            "",
            "x N(0,1)",
            "x ~ N(0)",
            "x ~ N(0, -1)",
            "x ~ Q(1)",
            "x ~ H(0, 1)",
            "x ~ Exp(two)",
            "x! ~ U",
        ] {
            assert!(parse_profile_spec(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn profile_box_probability_is_product() {
        let p = UsageProfile::uniform(2);
        let dom: IntervalBox = [iv(0.0, 1.0), iv(0.0, 2.0)].into_iter().collect();
        let b: IntervalBox = [iv(0.0, 0.5), iv(0.0, 0.5)].into_iter().collect();
        assert!((p.box_probability(&b, &dom) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn profile_projection() {
        let p = UsageProfile::uniform(3).with_dist(2, Dist::piecewise(vec![0.0, 1.0], vec![1.0]));
        let q = p.project(&[2, 0]);
        assert_eq!(q.len(), 2);
        assert!(matches!(q.dist(0), Dist::Piecewise { .. }));
        assert!(matches!(q.dist(1), Dist::Uniform));
    }

    #[test]
    fn profile_sampling_fills_every_dim() {
        let p = UsageProfile::uniform(3).with_dist(1, Dist::normal(0.0, 0.5));
        let dom: IntervalBox = [iv(0.0, 1.0), iv(-1.0, 1.0), iv(5.0, 6.0)]
            .into_iter()
            .collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut out = [0.0; 3];
        assert!(p.sample_in(&dom, &dom, &mut rng, &mut out));
        assert!(dom.contains_point(&out));
    }

    #[test]
    fn degenerate_point_dimension() {
        let p = UsageProfile::uniform(1);
        let dom: IntervalBox = [iv(2.0, 2.0)].into_iter().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = [0.0];
        assert!(p.sample_in(&dom, &dom, &mut rng, &mut out));
        assert_eq!(out[0], 2.0);
        assert_eq!(p.box_probability(&dom, &dom), 1.0);
    }

    #[test]
    fn continuous_point_domain_is_exact() {
        // A zero-width domain carries all the mass at its single point,
        // for continuous variants too.
        let p = UsageProfile::uniform(1).with_dist(0, Dist::normal(0.0, 1.0));
        let dom: IntervalBox = [iv(2.0, 2.0)].into_iter().collect();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = [0.0];
        assert!(p.sample_in(&dom, &dom, &mut rng, &mut out));
        assert_eq!(out[0], 2.0);
        assert_eq!(p.box_probability(&dom, &dom), 1.0);
    }
}
