//! Paver-seeded adaptive importance sampling for rare-event factors.
//!
//! Stratified hit-or-miss sampling (the [`crate::sampler`] engine, §3.3
//! of the paper) collapses when the probability being estimated is tiny:
//! nearly every stratum reports zero hits, the per-stratum variance
//! model degenerates to `0 ± 0`, and variance-driven allocation has
//! nothing to steer by. This module implements the cross-entropy-style
//! adaptive importance-sampling (IS) estimator that the analyzer
//! switches to when a pilot round's hit rate falls below a threshold —
//! the approach of Luo et al., *Symbolic Parallel Adaptive Importance
//! Sampling for Probabilistic Program Analysis* (SYMPAIS), grounded in
//! this workspace's ICP paver instead of a general constraint solver.
//!
//! # How the proposal is built
//!
//! The ICP paver already computes where the satisfying set lives: the
//! *inner* boxes are certainly all-solutions (their probability mass is
//! exact) and the *boundary* boxes are the only places where sampling is
//! needed. The proposal distribution `q` is a mixture with one component
//! per boundary box. Each component splits its density between an
//! *adaptive* part — per dimension an independent truncated normal
//! ([`Dist::truncated_normal`]) centered on the box midpoint with scale
//! proportional to the box width — and two fixed *defensive* parts: the
//! usage profile itself truncated to the box (`π(x)/mass_j`), which
//! hard-bounds the importance weights
//! (`w ≤ mass_j/(weight_j·EXPLORE_PROFILE)` inside box `j`) and keeps
//! probing where the profile puts its mass, and a uniform share over
//! the box, which finds first hits on satisfying regions that sit where
//! the profile density is smallest — no matter where the normals drift
//! (the `EXPLORE_PROFILE`/`EXPLORE_UNIFORM` constants). Mixture weights
//! start proportional to each box's exact profile mass
//! ([`UsageProfile::box_probability`]).
//!
//! Each sample drawn from `q` is reweighted by the exact profile density
//! over the exact proposal density, `w(x) = π(x) / q(x)` (both sides
//! supplied by the [`Dist`] machinery). The accumulator tracks the
//! joint moments of `(t, w)` with `t = w·1[hit]`, which supports both
//! classical estimators:
//!
//! ```text
//! plain IS          p̂ = t̄                        (unbiased: q is exactly normalized)
//! self-normalized   p̂ = M_b · (t̄ / w̄)           M_b = exact π-mass of ∪ boundary boxes
//! ```
//!
//! [`IsEstimator::estimate`] reports the **plain** form. Every mixture
//! component integrates to exactly 1 over its box, so `E_q[w·1[hit]]`
//! *is* the boundary probability — no normalizing constant needs
//! estimating, which is precisely the situation where self-normalizing
//! hurts: the ratio's denominator `w̄` estimates `M_b` (already known
//! exactly!) and its variance explodes once adaptation tilts `q` toward
//! the conditional hit distribution rather than toward `π`. The plain
//! form's variance depends only on the hit terms and *shrinks* to zero
//! as `q` approaches `π·1[hit]/p`. The ratio form remains available as
//! [`SnisAccum::estimator`] (the estimate stays within `[0, M_b]` by
//! construction) with a delta-method variance over the joint second
//! moments.
//!
//! # Adaptation
//!
//! Between rounds the mixture is refit toward the hit population
//! (cross-entropy style): component weights move toward the share of
//! total hit weight each component produced, and component means/scales
//! move toward the weighted mean/spread of the hits it generated, with
//! exponential smoothing so no component's weight collapses to zero
//! while the estimate is still settling. Every round draws from the
//! mixture frozen at the round's start, so each round is conditionally
//! unbiased and all rounds merge into one sound accumulator.
//!
//! # Determinism
//!
//! Sampling follows the same counter-derived discipline as
//! [`crate::sampler::refine_plan_bulk`]: chunk `c` of the estimator's
//! stream always seeds its RNG with `mix_seed(plan.seed, c)`, chunk
//! results are reduced in chunk order, and the cross-entropy refit is a
//! pure function of chunk-ordered sufficient statistics — so serial and
//! parallel runs, and any re-partitioning of the same per-round budget
//! sequence, produce bit-identical estimates.

use crate::estimate::Estimate;
use crate::profile::{Dist, UsageProfile};
use crate::sampler::{mix_seed, BulkPred, SamplePlan};
use qcoral_interval::IntervalBox;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default rare-event threshold: a factor whose stratified pilot
/// *estimates* a probability below this switches from stratified
/// sampling to adaptive IS (overridable via the analyzer's `Options`).
pub const DEFAULT_IS_THRESHOLD: f64 = 0.01;

/// Exponential-smoothing factor of the cross-entropy refit: how far the
/// mixture moves toward the hit population each round.
const SMOOTHING: f64 = 0.7;

/// Defensive anchor of the mixture weights: component `j`'s weight
/// never drops below `WEIGHT_ANCHOR` times its initial profile-mass
/// share `mass_j/M_b`. Without it one lucky round can collapse the
/// refit onto the single box that happened to produce hits, leaving
/// every other box's contribution to be recovered by rare, huge-weight
/// draws that a finite run may simply never make (a confidently wrong
/// underestimate). With it every box keeps receiving draws in
/// proportion to its mass, and combined with [`EXPLORE_PROFILE`] the
/// importance weights obey one uniform hard bound across all boxes:
/// `w ≤ M_b / (WEIGHT_ANCHOR · EXPLORE_PROFILE)`.
const WEIGHT_ANCHOR: f64 = 0.3;

/// Component scales never shrink below this fraction of the box width,
/// so a refit toward a tight hit cluster cannot starve the box's tails.
const SIGMA_FLOOR: f64 = 0.05;

/// Fraction of each component's density reserved for the *profile*
/// defensive branch: the usage profile itself truncated to the box,
/// `π(x)/mass_j`. This hard-bounds the importance weights inside box
/// `j` — `q ≥ weight_j·EXPLORE_PROFILE·π/mass_j`, so
/// `w = π/q ≤ mass_j/(weight_j·EXPLORE_PROFILE)` — and it keeps probing
/// the regions of each box where the profile puts its mass, which is
/// where dominant hit contributions (`π·1[hit]`) live when `π` varies
/// by orders of magnitude across a coarse box (deep profile tails).
const EXPLORE_PROFILE: f64 = 0.2;

/// Fraction of each component's density reserved for the *uniform*
/// defensive branch, uniform over the box. This is the geometric
/// complement of [`EXPLORE_PROFILE`]: in a box straddling the
/// constraint surface the satisfying side can sit exactly where the
/// profile density is smallest (the profile branch rarely looks there),
/// but a uniform draw lands on it with probability proportional to its
/// volume — so first hits are found and the refit has data to adapt on.
const EXPLORE_UNIFORM: f64 = 0.2;

/// The adaptive share of each component's density (what the truncated
/// normals carry after both defensive branches take their cut).
const ADAPT: f64 = 1.0 - EXPLORE_PROFILE - EXPLORE_UNIFORM;

/// One mixture component, confined to a boundary box: an `ADAPT` share
/// of per-dimension truncated normals (the adaptive part) plus fixed
/// defensive shares of the box-truncated profile and of the uniform
/// distribution over the box.
#[derive(Clone, Debug)]
pub struct Component {
    /// The boundary box this component is truncated to.
    pub boxed: IntervalBox,
    /// Per-dimension location of the adaptive normals.
    pub mu: Vec<f64>,
    /// Per-dimension scale of the adaptive normals.
    pub sigma: Vec<f64>,
    /// Normalized mixture weight.
    pub weight: f64,
    /// Cached per-dimension truncated normals (rebuilt on refit).
    dists: Vec<Dist>,
    /// Cached reciprocal of the box's exact profile mass, the
    /// normalizer of the profile defensive share.
    inv_mass: f64,
    /// Cached uniform density over the box (1 / volume), the
    /// normalizer of the uniform defensive share.
    inv_vol: f64,
    /// The box's initial profile-mass share `mass_j / M_b` — the base
    /// of the [`WEIGHT_ANCHOR`] floor, fixed at seeding.
    mass_share: f64,
}

impl Component {
    fn new(
        boxed: IntervalBox,
        mu: Vec<f64>,
        sigma: Vec<f64>,
        weight: f64,
        inv_mass: f64,
    ) -> Component {
        let dists = boxed
            .dims()
            .iter()
            .zip(mu.iter().zip(&sigma))
            .map(|(iv, (&m, &s))| Dist::truncated_normal(m, s, iv.lo(), iv.hi()))
            .collect();
        let inv_vol = 1.0 / boxed.volume();
        Component {
            boxed,
            mu,
            sigma,
            weight,
            dists,
            inv_mass,
            inv_vol,
            mass_share: 0.0,
        }
    }

    /// Proposal density of this component at `point` (zero outside its
    /// box), given the profile's density `pi` at the same point; does
    /// not include the mixture weight.
    fn density(&self, point: &[f64], pi: f64) -> f64 {
        if !self.boxed.contains_point(point) {
            return 0.0;
        }
        let mut d = 1.0;
        for (dim, dist) in self.dists.iter().enumerate() {
            d *= dist.density(point[dim], &self.boxed[dim]);
        }
        EXPLORE_PROFILE * pi * self.inv_mass + EXPLORE_UNIFORM * self.inv_vol + ADAPT * d
    }

    /// Draws one point from the component into `point`. Returns `false`
    /// when a dimension's conditional mass underflows (the sample is
    /// then counted as a zero-weight miss by the caller).
    fn sample(
        &self,
        rng: &mut SmallRng,
        point: &mut [f64],
        profile: &UsageProfile,
        domain: &IntervalBox,
    ) -> bool {
        let u = rng.gen_range(0.0..1.0);
        if u < EXPLORE_PROFILE {
            return profile.sample_in(&self.boxed, domain, rng, point);
        }
        if u < EXPLORE_PROFILE + EXPLORE_UNIFORM {
            for (dim, iv) in self.boxed.dims().iter().enumerate() {
                point[dim] = iv.lo() + rng.gen_range(0.0..1.0) * iv.width();
            }
            return true;
        }
        for (dim, dist) in self.dists.iter().enumerate() {
            let iv = &self.boxed[dim];
            match dist.sample_in(iv, iv, rng) {
                Some(x) => point[dim] = x,
                None => return false,
            }
        }
        true
    }
}

/// A truncated-normal mixture proposal over the paver's boundary boxes.
#[derive(Clone, Debug)]
pub struct Mixture {
    /// The components, in boundary-box order (fixed for determinism).
    pub components: Vec<Component>,
}

impl Mixture {
    /// Seeds a mixture from the paver's boundary boxes: one component
    /// per box with positive profile mass, centered on the box midpoint,
    /// scaled to half the box width, weighted by the box's exact mass.
    ///
    /// Returns `None` when no usable component exists — no boundary
    /// boxes, every box carries zero profile mass, or a box/domain
    /// dimension is degenerate (zero width) — in which case the caller
    /// falls back to stratified sampling.
    pub fn seeded(
        boundary: &[IntervalBox],
        profile: &UsageProfile,
        domain: &IntervalBox,
    ) -> Option<Mixture> {
        if domain.dims().iter().any(|iv| iv.width() <= 0.0) {
            return None;
        }
        let mut components = Vec::new();
        for boxed in boundary {
            if boxed.dims().iter().any(|iv| iv.width() <= 0.0) {
                continue;
            }
            let mass = profile.box_probability(boxed, domain);
            if mass <= 0.0 || !mass.is_finite() {
                continue;
            }
            let mu = boxed.center();
            let sigma: Vec<f64> = boxed.dims().iter().map(|iv| 0.5 * iv.width()).collect();
            components.push(Component::new(boxed.clone(), mu, sigma, mass, 1.0 / mass));
        }
        if components.is_empty() {
            return None;
        }
        let total: f64 = components.iter().map(|c| c.weight).sum();
        for c in &mut components {
            c.weight /= total;
            c.mass_share = c.weight;
        }
        Some(Mixture { components })
    }

    /// Exact proposal density `q(point)`, given the profile's density
    /// `pi` at the same point: the weighted sum over every component
    /// whose box contains the point. Paver boxes are disjoint up to
    /// shared faces, so in practice at most one term is non-zero.
    pub fn density(&self, point: &[f64], pi: f64) -> f64 {
        self.components
            .iter()
            .map(|c| c.weight * c.density(point, pi))
            .sum()
    }

    /// Picks a component index by mixture weight with one uniform draw.
    fn pick(&self, rng: &mut SmallRng) -> usize {
        let mut u = rng.gen_range(0.0..1.0);
        for (k, c) in self.components.iter().enumerate() {
            if u < c.weight {
                return k;
            }
            u -= c.weight;
        }
        self.components.len() - 1
    }

    /// Cross-entropy refit toward the hit population: a pure function of
    /// the chunk-ordered sufficient statistics, smoothed so weights and
    /// scales never collapse. A round with no hits leaves the mixture
    /// untouched (the caller skips the call).
    fn refit(&mut self, ce: &CeStats) {
        let total_w: f64 = ce.sum_w.iter().sum();
        if total_w.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let k = self.components.len();
        let mut weights: Vec<f64> = Vec::with_capacity(k);
        for (i, c) in self.components.iter_mut().enumerate() {
            let target = ce.sum_w[i] / total_w;
            weights.push(SMOOTHING * target + (1.0 - SMOOTHING) * c.weight);
            if ce.sum_w[i] > 0.0 {
                let mut mu = Vec::with_capacity(c.mu.len());
                let mut sigma = Vec::with_capacity(c.mu.len());
                for d in 0..c.mu.len() {
                    let iv = &c.boxed[d];
                    let m_ce = (ce.sum_wx[i][d] / ce.sum_w[i]).clamp(iv.lo(), iv.hi());
                    let var_ce = (ce.sum_wx2[i][d] / ce.sum_w[i] - m_ce * m_ce).max(0.0);
                    let s_floor = SIGMA_FLOOR * iv.width();
                    let s_ce = var_ce.sqrt().max(s_floor);
                    mu.push(SMOOTHING * m_ce + (1.0 - SMOOTHING) * c.mu[d]);
                    sigma.push((SMOOTHING * s_ce + (1.0 - SMOOTHING) * c.sigma[d]).max(s_floor));
                }
                let mut tuned = Component::new(c.boxed.clone(), mu, sigma, 0.0, c.inv_mass);
                tuned.mass_share = c.mass_share;
                *c = tuned;
            }
        }
        // Defensive mixture of the weights: the adapted shares are
        // blended with the fixed profile-mass shares, so no box's
        // weight can collapse below `WEIGHT_ANCHOR · mass_share` on
        // the evidence of one lucky round.
        let total: f64 = weights.iter().sum();
        for (c, w) in self.components.iter_mut().zip(weights) {
            c.weight = WEIGHT_ANCHOR * c.mass_share + (1.0 - WEIGHT_ANCHOR) * w / total;
        }
    }
}

/// Jointly accumulated moments of the self-normalized IS estimator.
///
/// Per sample it pushes the pair `(t, w)` with `t = w·1[hit]`; the
/// estimate is the ratio `t̄ / w̄` scaled by the exact proposal-support
/// mass, with a delta-method variance over the joint second moments.
/// Accumulation is Welford-style and merging Chan-style — the same
/// discipline as [`crate::Moments`], extended with the cross term the
/// ratio variance needs — so chunk accumulators merged in chunk order
/// reproduce the serial stream bit for bit.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SnisAccum {
    n: u64,
    hits: u64,
    mean_t: f64,
    mean_w: f64,
    m2_t: f64,
    m2_w: f64,
    c_tw: f64,
}

impl SnisAccum {
    /// The state before any sampling.
    pub const EMPTY: SnisAccum = SnisAccum {
        n: 0,
        hits: 0,
        mean_t: 0.0,
        mean_w: 0.0,
        m2_t: 0.0,
        m2_w: 0.0,
        c_tw: 0.0,
    };

    /// Folds in one sample with importance weight `w` and hit flag.
    pub fn push(&mut self, w: f64, hit: bool) {
        let t = if hit { w } else { 0.0 };
        if hit {
            self.hits += 1;
        }
        self.n += 1;
        let n = self.n as f64;
        let dt = t - self.mean_t;
        let dw = w - self.mean_w;
        self.mean_t += dt / n;
        self.mean_w += dw / n;
        let dw2 = w - self.mean_w;
        self.m2_t += dt * (t - self.mean_t);
        self.m2_w += dw * dw2;
        self.c_tw += dt * dw2;
    }

    /// Merges another accumulator (Chan's parallel update). Order
    /// matters for bit-identity: callers merge in chunk/round order.
    pub fn merge(&mut self, other: &SnisAccum) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (n1, n2) = (self.n as f64, other.n as f64);
        let n = n1 + n2;
        let dt = other.mean_t - self.mean_t;
        let dw = other.mean_w - self.mean_w;
        self.m2_t += other.m2_t + dt * dt * n1 * n2 / n;
        self.m2_w += other.m2_w + dw * dw * n1 * n2 / n;
        self.c_tw += other.c_tw + dt * dw * n1 * n2 / n;
        self.mean_t += dt * n2 / n;
        self.mean_w += dw * n2 / n;
        self.n += other.n;
        self.hits += other.hits;
    }

    /// Samples accumulated so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Hits accumulated so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The plain (unbiased) IS estimate: mean `t̄`, variance
    /// `s²_t / n`, clamped to `[0, mass]`. Valid because the proposal
    /// mixture is exactly normalized over its support (see the module
    /// docs); this is the estimator [`IsEstimator::estimate`] reports.
    ///
    /// The reported variance carries a *coverage correction*: the
    /// weights satisfy `E_q[w] = mass` exactly (the profile mass of the
    /// proposal's support), so when the observed `w̄` sits significantly
    /// below `mass` the proposal has demonstrably not yet visited
    /// regions carrying profile mass — regions the sample variance of
    /// `t` is blind to. In that regime the variance is inflated by
    /// `(mass/w̄)²`, which keeps the standard error honest until the
    /// mixture adapts (and collapses back to the plain `s²_t/n` once
    /// `w̄` is statistically consistent with `mass`).
    pub fn unbiased(&self, mass: f64) -> Estimate {
        if self.n == 0 {
            return Estimate::ZERO;
        }
        let mean = self.mean_t.clamp(0.0, mass);
        let var = if self.n < 2 {
            0.0
        } else {
            let nf = self.n as f64;
            let base = (self.m2_t / (nf - 1.0) / nf).max(0.0);
            let se_w = (self.m2_w / (nf - 1.0) / nf).max(0.0).sqrt();
            let covered = self.mean_w + 3.0 * se_w;
            if self.mean_w > 0.0 && covered < mass {
                base * (mass / self.mean_w) * (mass / self.mean_w)
            } else {
                base
            }
        };
        Estimate::new(mean, var)
    }

    /// The self-normalized estimate scaled by `mass`, the exact profile
    /// mass of the proposal's support: mean `mass · t̄/w̄`, delta-method
    /// variance `mass² · (s²_t − 2ρ·s_tw + ρ²·s²_w) / (n·w̄²)`. Returns
    /// the exact `0 ± 0` before any weight has been observed. Kept for
    /// diagnostics and for targets whose normalization is *not* known —
    /// [`SnisAccum::unbiased`] dominates it here (module docs).
    pub fn estimator(&self, mass: f64) -> Estimate {
        if self.n == 0 || self.mean_w.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Estimate::ZERO;
        }
        let ratio = (self.mean_t / self.mean_w).clamp(0.0, 1.0);
        let var = if self.n < 2 {
            0.0
        } else {
            let nf = self.n as f64;
            let s_t = self.m2_t / (nf - 1.0);
            let s_w = self.m2_w / (nf - 1.0);
            let s_tw = self.c_tw / (nf - 1.0);
            let v =
                (s_t - 2.0 * ratio * s_tw + ratio * ratio * s_w) / (nf * self.mean_w * self.mean_w);
            v.max(0.0)
        };
        Estimate::new(mass * ratio, mass * mass * var)
    }
}

/// Chunk-ordered sufficient statistics of the hit population, per
/// component: total hit weight and weighted first/second coordinate
/// moments. Drives [`Mixture::refit`].
#[derive(Clone, Debug)]
struct CeStats {
    sum_w: Vec<f64>,
    sum_wx: Vec<Vec<f64>>,
    sum_wx2: Vec<Vec<f64>>,
}

impl CeStats {
    fn new(k: usize, ndim: usize) -> CeStats {
        CeStats {
            sum_w: vec![0.0; k],
            sum_wx: vec![vec![0.0; ndim]; k],
            sum_wx2: vec![vec![0.0; ndim]; k],
        }
    }

    fn add(&mut self, k: usize, w: f64, point: &[f64]) {
        self.sum_w[k] += w;
        for (d, &x) in point.iter().enumerate() {
            self.sum_wx[k][d] += w * x;
            self.sum_wx2[k][d] += w * x * x;
        }
    }

    fn merge(&mut self, other: &CeStats) {
        for k in 0..self.sum_w.len() {
            self.sum_w[k] += other.sum_w[k];
            for d in 0..self.sum_wx[k].len() {
                self.sum_wx[k][d] += other.sum_wx[k][d];
                self.sum_wx2[k][d] += other.sum_wx2[k][d];
            }
        }
    }
}

/// What one adaptation round drew and found.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Samples actually drawn (short of the request only on deadline
    /// expiry).
    pub drawn: u64,
    /// Samples that satisfied the predicate.
    pub hits: u64,
}

/// The per-factor adaptive importance-sampling estimator.
///
/// Seed it from the paver's boundary boxes, then call
/// [`IsEstimator::round`] once per adaptation round; every round draws
/// from the mixture frozen at the round's start, folds the
/// self-normalized contributions into the running [`SnisAccum`], and
/// refits the mixture toward the hits. [`IsEstimator::estimate`] is a
/// plain [`Estimate`], so the analyzer composes IS factors with
/// stratified ones through the unchanged Eq. 7–8 algebra.
#[derive(Clone, Debug)]
pub struct IsEstimator {
    /// The current proposal mixture.
    pub mixture: Mixture,
    accum: SnisAccum,
    next_chunk: u64,
    mass: f64,
    rounds: u32,
}

impl IsEstimator {
    /// Seeds the estimator from the paver's boundary boxes; `None` means
    /// no usable proposal exists and the caller must stay stratified.
    /// `mass` is computed exactly as the sum of the boxes' profile
    /// masses (paver boxes are disjoint).
    pub fn seeded(
        boundary: &[IntervalBox],
        profile: &UsageProfile,
        domain: &IntervalBox,
    ) -> Option<IsEstimator> {
        let mixture = Mixture::seeded(boundary, profile, domain)?;
        let mass = mixture
            .components
            .iter()
            .map(|c| profile.box_probability(&c.boxed, domain))
            .sum();
        Some(IsEstimator {
            mixture,
            accum: SnisAccum::EMPTY,
            next_chunk: 0,
            mass,
            rounds: 0,
        })
    }

    /// Runs one adaptation round of `add` samples under `plan`.
    ///
    /// Chunk `c` of the estimator's lifetime stream always seeds
    /// `mix_seed(plan.seed, c)` (the round merely advances the chunk
    /// cursor), chunk accumulators merge in chunk order, and the refit
    /// consumes chunk-ordered statistics — so the outcome is
    /// bit-identical serial vs parallel and depends only on the
    /// sequence of per-round budgets.
    pub fn round<P>(
        &mut self,
        pred: &P,
        profile: &UsageProfile,
        domain: &IntervalBox,
        add: u64,
        plan: SamplePlan,
    ) -> RoundReport
    where
        P: BulkPred + ?Sized,
    {
        if add == 0 {
            return RoundReport::default();
        }
        let chunk = plan.chunk.max(1);
        let nchunks = add.div_ceil(chunk);
        let ndim = domain.ndim();
        let k = self.mixture.components.len();
        let mixture = &self.mixture;
        let expired = || plan.deadline.is_some_and(|d| d.expired());
        let run_chunk = |j: u64, point: &mut Vec<f64>| -> (SnisAccum, CeStats, u64) {
            let mut acc = SnisAccum::EMPTY;
            let mut ce = CeStats::new(k, ndim);
            if expired() {
                return (acc, ce, 0);
            }
            let len = chunk.min(add - j * chunk);
            let mut rng = SmallRng::seed_from_u64(mix_seed(plan.seed, self.next_chunk + j));
            for _ in 0..len {
                let ki = mixture.pick(&mut rng);
                if !mixture.components[ki].sample(&mut rng, point, profile, domain) {
                    acc.push(0.0, false);
                    continue;
                }
                let pi = profile.density(point, domain);
                let q = mixture.density(point, pi);
                let w = if q > 0.0 && pi.is_finite() {
                    pi / q
                } else {
                    0.0
                };
                let hit = w > 0.0 && pred.holds(point);
                acc.push(w, hit);
                if hit {
                    ce.add(ki, w, point);
                }
            }
            (acc, ce, len)
        };
        let chunks: Vec<(SnisAccum, CeStats, u64)> = if plan.parallel && nchunks > 1 {
            (0..nchunks)
                .into_par_iter()
                .map_init(|| vec![0.0; ndim], |point, j| run_chunk(j, point))
                .collect()
        } else {
            let mut point = vec![0.0; ndim];
            let mut out = Vec::with_capacity(nchunks as usize);
            for j in 0..nchunks {
                if expired() {
                    break;
                }
                out.push(run_chunk(j, &mut point));
            }
            out
        };
        // Fixed reduction order: each chunk folds straight into the
        // lifetime accumulator in chunk-index order, exactly like the
        // stratified engine's integer sums. Folding chunks directly
        // (rather than via a per-round intermediate) keeps the merge
        // tree a pure left fold over the chunk stream, so splitting a
        // budget across rounds cannot perturb the float results.
        let mut ce = CeStats::new(k, ndim);
        let mut drawn = 0u64;
        let mut hits = 0u64;
        for (acc, stats, len) in &chunks {
            hits += acc.hits();
            self.accum.merge(acc);
            ce.merge(stats);
            drawn += len;
        }
        self.next_chunk += nchunks;
        self.rounds += 1;
        if hits > 0 {
            self.mixture.refit(&ce);
        }
        RoundReport { drawn, hits }
    }

    /// The current estimate of the *boundary* probability (the caller
    /// adds the exact inner-box mass on top): the plain unbiased IS
    /// form — see the module docs for why it dominates the
    /// self-normalized ratio here.
    pub fn estimate(&self) -> Estimate {
        self.accum.unbiased(self.mass)
    }

    /// Standard deviation of [`IsEstimator::estimate`].
    pub fn std_dev(&self) -> f64 {
        self.estimate().std_dev()
    }

    /// Exact profile mass of the proposal's support (∪ boundary boxes).
    pub fn support_mass(&self) -> f64 {
        self.mass
    }

    /// Samples drawn over all rounds.
    pub fn samples(&self) -> u64 {
        self.accum.count()
    }

    /// Hits observed over all rounds.
    pub fn hits(&self) -> u64 {
        self.accum.hits()
    }

    /// Adaptation rounds run.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::ScalarPred;
    use qcoral_interval::Interval;

    fn unit_box(n: usize) -> IntervalBox {
        (0..n).map(|_| Interval::new(0.0, 1.0)).collect()
    }

    fn tiny_corner() -> (IntervalBox, Vec<IntervalBox>, f64) {
        // P[x < 1e-4 ∧ y < 1e-4] over U[0,1]²: 1e-8 exactly.
        let domain = unit_box(2);
        let boundary = vec![[Interval::new(0.0, 2e-4), Interval::new(0.0, 2e-4)]
            .into_iter()
            .collect()];
        (domain, boundary, 1e-8)
    }

    #[test]
    fn snis_matches_plain_mean_on_constant_weights() {
        // With w ≡ 1 the self-normalized ratio is the plain hit rate.
        let mut acc = SnisAccum::EMPTY;
        for i in 0..1000 {
            acc.push(1.0, i % 10 == 0);
        }
        let est = acc.estimator(1.0);
        assert!((est.mean - 0.1).abs() < 1e-12);
        assert!(est.variance > 0.0);
    }

    #[test]
    fn snis_merge_matches_serial_pushes_bitwise() {
        let samples: Vec<(f64, bool)> = (0..500)
            .map(|i| (0.5 + (i % 7) as f64 * 0.1, i % 13 == 0))
            .collect();
        let mut serial = SnisAccum::EMPTY;
        for &(w, h) in &samples {
            serial.push(w, h);
        }
        let mut merged = SnisAccum::EMPTY;
        for chunk in samples.chunks(64) {
            let mut part = SnisAccum::EMPTY;
            for &(w, h) in chunk {
                part.push(w, h);
            }
            merged.merge(&part);
        }
        // Chan-merge is not bit-identical to the serial push stream in
        // general, but the *estimator* contract is: the engine always
        // merges the same chunk partition in the same order. Here we
        // check the merge math agrees to fp tolerance.
        let (a, b) = (serial.estimator(1.0), merged.estimator(1.0));
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.variance - b.variance).abs() < 1e-15);
    }

    #[test]
    fn estimator_recovers_rare_corner_probability() {
        let (domain, boundary, truth) = tiny_corner();
        let profile = UsageProfile::uniform(2);
        let mut is = IsEstimator::seeded(&boundary, &profile, &domain).expect("seedable");
        let pred = ScalarPred(|p: &[f64]| p[0] < 1e-4 && p[1] < 1e-4);
        let plan = SamplePlan::serial(42);
        for _ in 0..4 {
            is.round(&pred, &profile, &domain, 4096, plan);
        }
        let est = is.estimate();
        assert!(is.hits() > 100, "IS must concentrate on the corner");
        assert!(
            (est.mean - truth).abs() < 4.0 * est.std_dev() + 1e-12,
            "mean {} vs truth {truth} (σ {})",
            est.mean,
            est.std_dev()
        );
        assert!(est.mean > 0.0 && est.std_dev() < truth);
    }

    #[test]
    fn serial_and_parallel_rounds_are_bit_identical() {
        let (domain, boundary, _) = tiny_corner();
        let profile = UsageProfile::uniform(2);
        let pred = ScalarPred(|p: &[f64]| p[0] < 1e-4 && p[1] < 1e-4);
        let run = |parallel: bool| {
            let mut is = IsEstimator::seeded(&boundary, &profile, &domain).unwrap();
            let plan = SamplePlan {
                chunk: 512,
                ..if parallel {
                    SamplePlan::parallel(7)
                } else {
                    SamplePlan::serial(7)
                }
            };
            for _ in 0..3 {
                is.round(&pred, &profile, &domain, 3000, plan);
            }
            is.estimate()
        };
        let (s, p) = (run(false), run(true));
        assert_eq!(s.mean.to_bits(), p.mean.to_bits());
        assert_eq!(s.variance.to_bits(), p.variance.to_bits());
    }

    #[test]
    fn round_split_does_not_change_the_stream() {
        // 2 rounds of 1024 vs 1 round of 2048: the chunk streams visited
        // are identical, and with refits disabled by zero hits the
        // accumulators match bitwise.
        let domain = unit_box(1);
        let boundary = vec![unit_box(1)];
        let profile = UsageProfile::uniform(1);
        let pred = ScalarPred(|_: &[f64]| false);
        let plan = SamplePlan {
            chunk: 256,
            ..SamplePlan::serial(3)
        };
        let mut a = IsEstimator::seeded(&boundary, &profile, &domain).unwrap();
        a.round(&pred, &profile, &domain, 1024, plan);
        a.round(&pred, &profile, &domain, 1024, plan);
        let mut b = IsEstimator::seeded(&boundary, &profile, &domain).unwrap();
        b.round(&pred, &profile, &domain, 2048, plan);
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.accum, b.accum);
    }

    #[test]
    fn zero_mass_boundary_means_no_estimator() {
        let domain = unit_box(1);
        // Zero-width box: measure zero under the profile.
        let boundary = vec![[Interval::new(0.5, 0.5)].into_iter().collect()];
        let profile = UsageProfile::uniform(1);
        assert!(IsEstimator::seeded(&boundary, &profile, &domain).is_none());
        assert!(IsEstimator::seeded(&[], &profile, &domain).is_none());
    }

    #[test]
    fn refit_concentrates_weight_on_the_hitting_component() {
        let domain = unit_box(1);
        let boundary: Vec<IntervalBox> = vec![
            [Interval::new(0.0, 0.1)].into_iter().collect(),
            [Interval::new(0.9, 1.0)].into_iter().collect(),
        ];
        let profile = UsageProfile::uniform(1);
        let pred = ScalarPred(|p: &[f64]| p[0] < 0.05);
        let mut is = IsEstimator::seeded(&boundary, &profile, &domain).unwrap();
        let w0 = is.mixture.components[0].weight;
        let plan = SamplePlan::serial(11);
        for _ in 0..3 {
            is.round(&pred, &profile, &domain, 2048, plan);
        }
        assert!(
            is.mixture.components[0].weight > w0,
            "hitting component must gain weight: {} -> {}",
            w0,
            is.mixture.components[0].weight
        );
        let est = is.estimate();
        assert!((est.mean - 0.05).abs() < 4.0 * est.std_dev() + 1e-9);
    }
}
