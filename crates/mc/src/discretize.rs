//! Error-bounded discretization of continuous marginals, and
//! profile-aligned stratification.
//!
//! The paper's recipe for non-uniform usage profiles (attributed to
//! Filieri et al. \[11\]) is to *discretize* each continuous marginal
//! into a piecewise-uniform histogram. [`discretize`] does that
//! adaptively: a bin is bisected until the distribution's CDF deviates
//! from the bin's linear (i.e. uniform-within-bin) approximation by at
//! most `epsilon` — so bins are dense where the density curves (peaks,
//! knees) and coarse where it is flat, and the total approximation error
//! of treating the profile as uniform-per-bin is bounded per bin.
//!
//! The same bin edges drive *profile-aligned stratification*
//! ([`align_strata`]): ICP pavings split the domain by constraint
//! geometry only; slicing each boundary stratum along the marginals'
//! mass edges yields strata whose probability weights — which is what
//! proportional/Neyman allocation spends the sample budget by — track
//! the profile instead of box volume. Under a uniform profile both
//! functions are exact no-ops, preserving the paper's baseline behavior
//! bit for bit.

use qcoral_interval::{Interval, IntervalBox};

use crate::profile::{Dist, UsageProfile};
use crate::sampler::Stratum;

/// Hard ceiling on bins per marginal: `epsilon → 0` must not hang.
pub const MAX_BINS: usize = 1 << 10;

/// Relative bin-width floor: bins are never split below
/// `domain width × MIN_REL_WIDTH` (beyond it, f64 midpoints degenerate).
const MIN_REL_WIDTH: f64 = 1e-9;

/// Maximum CDF deviation of `dist` from the linear interpolation between
/// the bin's endpoint CDF values, probed at the quarter points — the
/// discretizer's per-bin mass-linearization error.
fn linearization_error(dist: &Dist, bin: &Interval, dom: &Interval) -> f64 {
    let (a, b) = (bin.lo(), bin.hi());
    let (fa, fb) = (dist.cdf(a, dom), dist.cdf(b, dom));
    let mut worst = 0.0f64;
    for t in [0.25, 0.5, 0.75] {
        let x = a + t * (b - a);
        let lin = fa + t * (fb - fa);
        worst = worst.max((dist.cdf(x, dom) - lin).abs());
    }
    worst
}

/// Discretizes a marginal over the domain interval `dom` into an
/// error-bounded adaptive histogram ([`Dist::Piecewise`]).
///
/// Bins are bisected until the per-bin mass-linearization error (the
/// worst CDF deviation from per-bin uniformity) is at most `epsilon`,
/// subject to the [`MAX_BINS`] ceiling. `Uniform` and `Piecewise`
/// marginals are returned unchanged — they are already exactly piecewise
/// uniform (zero linearization error). A [`Dist::TruncatedNormal`] whose
/// support is narrower than the domain contributes its support bounds as
/// edges, with explicit zero-weight bins outside (so edges still span
/// the domain, as `Piecewise` requires).
///
/// The result is *canonical*: a pure function of `(dist, dom, epsilon)`,
/// independent of evaluation order — which is what lets discretized
/// edges participate in cache keys and deterministic stratification.
pub fn discretize(dist: &Dist, dom: &Interval, epsilon: f64) -> Dist {
    match dist {
        Dist::Uniform | Dist::Piecewise { .. } => dist.clone(),
        _ => {
            let sup = dist.support(dom);
            if sup.is_empty() || sup.width() == 0.0 || dom.width() == 0.0 {
                return Dist::Uniform;
            }
            let epsilon = epsilon.max(1e-12);
            // In-order worklist bisection: bins come out sorted.
            let mut edges: Vec<f64> = vec![sup.lo()];
            let mut stack: Vec<Interval> = vec![sup];
            let min_width = dom.width() * MIN_REL_WIDTH;
            while let Some(bin) = stack.pop() {
                let splittable = edges.len() < MAX_BINS && bin.width() > min_width;
                if splittable && linearization_error(dist, &bin, dom) > epsilon {
                    let mid = bin.midpoint();
                    // Left half first so edges stay sorted; guard the
                    // pathological midpoint == endpoint case.
                    if mid > bin.lo() && mid < bin.hi() {
                        stack.push(Interval::new(mid, bin.hi()));
                        stack.push(Interval::new(bin.lo(), mid));
                        continue;
                    }
                }
                edges.push(bin.hi());
            }
            // Pad to the full domain with zero-weight bins so the
            // histogram spans `dom` (Piecewise requires spanning edges).
            let mut full_edges = Vec::with_capacity(edges.len() + 2);
            if dom.lo() < edges[0] {
                full_edges.push(dom.lo());
            }
            full_edges.extend(edges.iter().copied());
            if dom.hi() > *full_edges.last().expect("at least one edge") {
                full_edges.push(dom.hi());
            }
            let weights: Vec<f64> = full_edges
                .windows(2)
                .map(|w| dist.mass(&Interval::new(w[0], w[1]), dom))
                .collect();
            if weights.iter().sum::<f64>() <= 0.0 {
                return Dist::Uniform;
            }
            Dist::piecewise(full_edges, weights)
        }
    }
}

/// The marginal's mass edges strictly inside `within`, after
/// discretization at `epsilon`: the break points profile-aligned
/// stratification splits boxes at. Empty for `Uniform` (no alignment
/// needed — every stratum is already mass-proportional to volume).
pub fn mass_edges(dist: &Dist, dom: &Interval, epsilon: f64, within: &Interval) -> Vec<f64> {
    let discretized = discretize(dist, dom, epsilon);
    match discretized {
        Dist::Uniform => Vec::new(),
        Dist::Piecewise { edges, .. } => edges
            .into_iter()
            .filter(|&e| e > within.lo() && e < within.hi())
            .collect(),
        _ => unreachable!("discretize returns Uniform or Piecewise"),
    }
}

impl UsageProfile {
    /// The canonical discretized form of the profile over `domain`:
    /// every continuous marginal replaced by its [`discretize`]d
    /// histogram. Piecewise/uniform marginals pass through unchanged.
    ///
    /// # Panics
    ///
    /// Panics on profile/domain dimension mismatch.
    pub fn discretized(&self, domain: &IntervalBox, epsilon: f64) -> UsageProfile {
        assert_eq!(
            domain.ndim(),
            self.len(),
            "domain/profile dimension mismatch"
        );
        let mut out = UsageProfile::uniform(self.len());
        for i in 0..self.len() {
            out = out.with_dist(i, discretize(self.dist(i), &domain[i], epsilon));
        }
        out
    }
}

/// Splits each *boundary* stratum along the profile's discretized mass
/// edges, so strata align with probability mass instead of raw box
/// geometry. Inner (certain) strata are left whole: their contribution
/// is already the exact profile mass with zero variance.
///
/// Splitting is capped at `max_per_stratum` sub-boxes per input stratum
/// (dimensions processed in ascending order, edge lists truncated
/// per-dimension to stay under the cap), making the fan-out deterministic
/// and bounded. Under a uniform profile this returns the input unchanged
/// (no marginal has mass edges), so the paper's baseline sample streams
/// are untouched.
///
/// The output preserves input stratum order (each input stratum maps to
/// a contiguous run of sub-strata), so downstream per-stratum RNG
/// sub-streams remain a pure function of `(profile, epsilon, paving)`.
pub fn align_strata(
    strata: Vec<Stratum>,
    profile: &UsageProfile,
    domain: &IntervalBox,
    epsilon: f64,
    max_per_stratum: usize,
) -> Vec<Stratum> {
    if profile.is_uniform() || max_per_stratum <= 1 {
        return strata;
    }
    // Discretize each marginal once; per-stratum we only filter edges.
    let discretized: Vec<Vec<f64>> = (0..profile.len())
        .map(|d| match discretize(profile.dist(d), &domain[d], epsilon) {
            Dist::Piecewise { edges, .. } => edges,
            _ => Vec::new(),
        })
        .collect();
    if discretized.iter().all(Vec::is_empty) {
        return strata;
    }
    let mut out = Vec::with_capacity(strata.len());
    for stratum in strata {
        if stratum.certain {
            out.push(stratum);
            continue;
        }
        let mut boxes: Vec<IntervalBox> = vec![stratum.boxed.clone()];
        for (d, all_edges) in discretized.iter().enumerate() {
            if boxes.len() >= max_per_stratum {
                break;
            }
            let iv = &stratum.boxed[d];
            let mut edges: Vec<f64> = all_edges
                .iter()
                .copied()
                .filter(|&e| e > iv.lo() && e < iv.hi())
                .collect();
            if edges.is_empty() {
                continue;
            }
            // Budget for this dimension: splitting k times multiplies the
            // box count by k+1. Thin the edge list evenly (keeping every
            // n-th edge) rather than truncating one side.
            let budget = max_per_stratum / boxes.len();
            if budget < 2 {
                continue;
            }
            if edges.len() + 1 > budget {
                let keep = budget - 1;
                let step = edges.len() as f64 / keep as f64;
                edges = (0..keep)
                    .map(|i| edges[((i as f64 + 0.5) * step) as usize])
                    .collect();
                edges.dedup();
            }
            let mut next = Vec::with_capacity(boxes.len() * (edges.len() + 1));
            for b in boxes {
                let mut lo = b[d].lo();
                for &e in &edges {
                    let mut piece = b.clone();
                    *piece.dim_mut(d) = Interval::new(lo, e);
                    next.push(piece);
                    lo = e;
                }
                let mut piece = b;
                *piece.dim_mut(d) = Interval::new(lo, piece[d].hi());
                next.push(piece);
            }
            boxes = next;
        }
        out.extend(boxes.into_iter().map(Stratum::boundary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn uniform_and_piecewise_pass_through() {
        let dom = iv(0.0, 1.0);
        assert_eq!(discretize(&Dist::Uniform, &dom, 1e-3), Dist::Uniform);
        let h = Dist::piecewise(vec![0.0, 0.5, 1.0], vec![3.0, 1.0]);
        assert_eq!(discretize(&h, &dom, 1e-3), h);
    }

    #[test]
    fn discretization_error_is_bounded() {
        let dom = iv(0.0, 1.0);
        for dist in [
            Dist::normal(0.5, 0.1),
            Dist::exponential(4.0),
            Dist::truncated_normal(0.3, 0.05, 0.1, 0.9),
        ] {
            for eps in [1e-2, 1e-3, 1e-4] {
                let Dist::Piecewise { edges, weights } = discretize(&dist, &dom, eps) else {
                    panic!("continuous dist must discretize to a histogram");
                };
                assert!(edges.len() <= MAX_BINS + 2);
                assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                // Every bin inside the support respects the error bound
                // (bins at MAX_BINS/width floors are exempt by design; at
                // these epsilons the caps are far from binding).
                for w in edges.windows(2) {
                    let err = linearization_error(&dist, &iv(w[0], w[1]), &dom);
                    assert!(
                        err <= eps * 1.000_001,
                        "{dist:?} eps={eps}: bin [{}, {}] err {err}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn finer_epsilon_means_more_bins() {
        let dom = iv(0.0, 1.0);
        let dist = Dist::normal(0.5, 0.1);
        let bins = |eps: f64| match discretize(&dist, &dom, eps) {
            Dist::Piecewise { weights, .. } => weights.len(),
            _ => 0,
        };
        assert!(bins(1e-4) > bins(1e-2));
    }

    #[test]
    fn discretized_mass_approximates_continuous_mass() {
        let dom = iv(0.0, 1.0);
        let dist = Dist::normal(0.4, 0.15);
        let hist = discretize(&dist, &dom, 1e-3);
        for (a, b) in [(0.0, 0.3), (0.2, 0.6), (0.55, 1.0)] {
            let exact = dist.mass(&iv(a, b), &dom);
            let approx = hist.mass(&iv(a, b), &dom);
            // Interval endpoints cut at most two bins, each off by ≤ ε.
            assert!(
                (exact - approx).abs() <= 2.5e-3,
                "[{a}, {b}]: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn truncated_support_pads_zero_weight_bins() {
        let dom = iv(0.0, 1.0);
        let Dist::Piecewise { edges, weights } =
            discretize(&Dist::truncated_normal(0.5, 0.1, 0.25, 0.75), &dom, 1e-2)
        else {
            panic!("expected histogram");
        };
        assert_eq!(edges[0], 0.0);
        assert_eq!(*edges.last().unwrap(), 1.0);
        assert!(edges.contains(&0.25) && edges.contains(&0.75));
        assert_eq!(weights[0], 0.0, "mass below the truncation is zero");
        assert_eq!(*weights.last().unwrap(), 0.0);
    }

    #[test]
    fn mass_edges_are_interior_and_epsilon_scaled() {
        let dom = iv(0.0, 1.0);
        let d = Dist::normal(0.5, 0.1);
        let edges = mass_edges(&d, &dom, 1e-3, &iv(0.3, 0.7));
        assert!(!edges.is_empty());
        assert!(edges.iter().all(|&e| e > 0.3 && e < 0.7));
        assert!(mass_edges(&Dist::Uniform, &dom, 1e-3, &dom).is_empty());
    }

    #[test]
    fn align_is_identity_for_uniform_profiles() {
        let domain: IntervalBox = [iv(0.0, 1.0), iv(0.0, 1.0)].into_iter().collect();
        let strata = vec![
            Stratum::boundary(domain.clone()),
            Stratum::inner(domain.clone()),
        ];
        let before: Vec<_> = strata.iter().map(|s| s.boxed.clone()).collect();
        let out = align_strata(strata, &UsageProfile::uniform(2), &domain, 1e-3, 64);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].boxed, before[0]);
        assert_eq!(out[1].boxed, before[1]);
    }

    #[test]
    fn align_splits_boundary_strata_and_preserves_mass() {
        let domain: IntervalBox = [iv(0.0, 1.0), iv(0.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(2).with_dist(0, Dist::normal(0.5, 0.12));
        let strata = vec![
            Stratum::boundary(domain.clone()),
            Stratum::inner(
                [iv(0.0, 0.5), iv(0.0, 0.5)]
                    .into_iter()
                    .collect::<IntervalBox>(),
            ),
        ];
        let out = align_strata(strata, &profile, &domain, 1e-2, 64);
        assert!(out.len() > 2, "boundary stratum must split");
        assert!(out.len() <= 64 + 1);
        // Inner stratum untouched, in place.
        assert_eq!(out.iter().filter(|s| s.certain).count(), 1);
        // The split is a partition: masses sum to the original stratum's.
        let total: f64 = out
            .iter()
            .filter(|s| !s.certain)
            .map(|s| profile.box_probability(&s.boxed, &domain))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "masses must sum: {total}");
        // Boxes tile without overlap along dim 0: widths sum to 1.
        let width: f64 = out
            .iter()
            .filter(|s| !s.certain && s.boxed[1].lo() == 0.0)
            .map(|s| s.boxed[0].width())
            .sum();
        assert!((width - 1.0).abs() < 1e-9);
    }

    #[test]
    fn align_respects_the_cap() {
        let domain: IntervalBox = [iv(0.0, 1.0), iv(0.0, 1.0), iv(0.0, 1.0)]
            .into_iter()
            .collect();
        let profile = UsageProfile::uniform(3)
            .with_dist(0, Dist::normal(0.5, 0.05))
            .with_dist(1, Dist::normal(0.5, 0.05))
            .with_dist(2, Dist::exponential(6.0));
        let strata = vec![Stratum::boundary(domain.clone())];
        for cap in [1, 2, 8, 32] {
            let out = align_strata(strata.clone(), &profile, &domain, 1e-3, cap);
            assert!(
                out.len() <= cap.max(1),
                "cap {cap} produced {} strata",
                out.len()
            );
            let total: f64 = out
                .iter()
                .map(|s| profile.box_probability(&s.boxed, &domain))
                .sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn align_is_deterministic() {
        let domain: IntervalBox = [iv(0.0, 2.0), iv(-1.0, 1.0)].into_iter().collect();
        let profile = UsageProfile::uniform(2)
            .with_dist(0, Dist::exponential(2.0))
            .with_dist(1, Dist::normal(0.0, 0.4));
        let strata = || {
            vec![
                Stratum::boundary([iv(0.0, 1.0), iv(-1.0, 0.0)].into_iter().collect()),
                Stratum::boundary([iv(1.0, 2.0), iv(0.0, 1.0)].into_iter().collect()),
            ]
        };
        let a = align_strata(strata(), &profile, &domain, 1e-3, 32);
        let b = align_strata(strata(), &profile, &domain, 1e-3, 32);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.boxed, y.boxed);
            assert_eq!(x.certain, y.certain);
        }
    }
}
