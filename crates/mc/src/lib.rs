//! Monte Carlo engine for the qCORAL reproduction.
//!
//! Implements the statistical machinery of the paper:
//!
//! * [`Estimate`] — an estimator summarized by its mean and variance, with
//!   the composition algebra of §4: disjoint-sum (Eq. 5–6, Theorem 1) and
//!   independent-product (Eq. 7–8).
//! * [`UsageProfile`] — the probabilistic characterization of the inputs
//!   (§3). Uniform profiles match the paper's implementation; piecewise-
//!   uniform (histogram) profiles implement the discretization extension
//!   the paper attributes to Filieri et al. \[11\].
//! * [`hit_or_miss`] — the Hit-or-Miss Monte Carlo estimator (§3.2,
//!   Eq. 2).
//! * [`stratified`] — stratified sampling over an ICP paving (§3.3,
//!   Eq. 3).
//! * [`IsEstimator`] — paver-seeded adaptive importance sampling for
//!   rare-event factors (the [`is`] module), following SYMPAIS.
//!
//! # Example
//!
//! ```
//! use qcoral_interval::{Interval, IntervalBox};
//! use qcoral_mc::{hit_or_miss, UsageProfile};
//! use rand::SeedableRng;
//!
//! let boxed: IntervalBox = [Interval::new(0.0, 1.0)].into_iter().collect();
//! let profile = UsageProfile::uniform(1);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! // P[x < 0.25] over U[0, 1]
//! let est = hit_or_miss(&mut |p| p[0] < 0.25, &boxed, &profile, 10_000, &mut rng);
//! assert!((est.mean - 0.25).abs() < 0.02);
//! ```

#![warn(missing_docs)]

pub mod discretize;
pub mod estimate;
pub mod is;
pub mod profile;
pub mod sampler;

pub use discretize::{align_strata, discretize, mass_edges, MAX_BINS};
pub use estimate::{Estimate, Moments};
pub use is::{IsEstimator, Mixture, RoundReport, SnisAccum, DEFAULT_IS_THRESHOLD};
pub use profile::{
    parse_dist_spec, parse_profile_spec, std_normal_cdf, std_normal_quantile, Dist, UsageProfile,
};
pub use sampler::{
    hit_or_miss, hit_or_miss_plan, hit_or_miss_plan_bulk, initial_allocation, mix_seed,
    neyman_allocation, proportional_split, refine_plan, refine_plan_bulk, stratified,
    stratified_plan, stratified_plan_bulk, Allocation, BulkPred, Deadline, SamplePlan, ScalarPred,
    Stratum, StratumAccum, COLUMN_BLOCK,
};
