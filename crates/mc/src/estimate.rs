//! Statistical estimates and the paper's composition algebra.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A statistical estimator summarized by its expected value and variance.
///
/// Produced by hit-or-miss sampling (Eq. 2) and composed with the rules of
/// §4: [`Estimate::sum`] for disjoint path conditions (Eq. 5–6) and
/// [`Estimate::product`] for independent conjuncts (Eq. 7–8).
///
/// # Example
///
/// ```
/// use qcoral_mc::Estimate;
///
/// let a = Estimate::from_hits(550, 1000);
/// let b = Estimate::from_hits(190, 1000);
/// let both = a.sum(b); // disjoint events
/// assert!((both.mean - 0.74).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Expected value of the estimator.
    pub mean: f64,
    /// Variance of the estimator (an upper bound after disjoint-sum
    /// composition, per Theorem 1).
    pub variance: f64,
}

impl Estimate {
    /// The zero estimate (probability 0, no uncertainty).
    pub const ZERO: Estimate = Estimate {
        mean: 0.0,
        variance: 0.0,
    };

    /// The unit estimate (probability 1, no uncertainty) — the value of an
    /// ICP *inner* box, where sampling is unnecessary (§3.3).
    pub const ONE: Estimate = Estimate {
        mean: 1.0,
        variance: 0.0,
    };

    /// Creates an estimate with the given mean and variance.
    ///
    /// # Panics
    ///
    /// Panics if the variance is negative or either value is NaN.
    pub fn new(mean: f64, variance: f64) -> Estimate {
        assert!(
            !mean.is_nan() && !variance.is_nan() && variance >= 0.0,
            "invalid estimate (mean {mean}, variance {variance})"
        );
        Estimate { mean, variance }
    }

    /// The hit-or-miss estimator of Eq. 2: mean `hits/n`, variance
    /// `x̄(1−x̄)/n` (binomial).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hits > n`.
    pub fn from_hits(hits: u64, n: u64) -> Estimate {
        assert!(n > 0, "hit-or-miss needs at least one sample");
        assert!(hits <= n, "more hits than samples");
        let mean = hits as f64 / n as f64;
        Estimate {
            mean,
            variance: mean * (1.0 - mean) / n as f64,
        }
    }

    /// Standard deviation `sqrt(variance)` — the paper reports σ, which is
    /// in the same unit scale as the estimate (§6.2).
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Composition for *disjoint* events (paper Eq. 4–6, Theorem 1): the
    /// means add exactly; the summed variance is a sound *upper bound*
    /// because the covariance of indicator estimators of disjoint events
    /// is non-positive.
    ///
    /// The same formula is exact when the two estimators are independent,
    /// which is how stratified sampling combines strata (Eq. 3, with the
    /// weights already folded in by [`Estimate::scale`]).
    pub fn sum(self, other: Estimate) -> Estimate {
        Estimate {
            mean: self.mean + other.mean,
            variance: self.variance + other.variance,
        }
    }

    /// Composition for *independent* events (paper Eq. 7–8): used for the
    /// conjunction of constraints over disjoint variable sets.
    ///
    /// `E[XY] = E[X]E[Y]`,
    /// `Var[XY] = E[X]²Var[Y] + E[Y]²Var[X] + Var[X]Var[Y]`.
    pub fn product(self, other: Estimate) -> Estimate {
        Estimate {
            mean: self.mean * other.mean,
            variance: self.mean * self.mean * other.variance
                + other.mean * other.mean * self.variance
                + self.variance * other.variance,
        }
    }

    /// Scales the estimator by a constant weight: `E[wX] = w·E[X]`,
    /// `Var[wX] = w²·Var[X]`. Used to weight strata by their relative size
    /// (Eq. 3).
    pub fn scale(self, w: f64) -> Estimate {
        Estimate {
            mean: w * self.mean,
            variance: w * w * self.variance,
        }
    }

    /// A Chebyshev confidence interval: the estimated quantity lies in
    /// the returned `(lo, hi)` with probability at least `confidence`
    /// (the paper suggests exactly this use of the variance: "such
    /// uncertainty could be used to quantify the probability the real
    /// value belongs to an interval, for example by using Chebyshev's
    /// inequality", §6.2). Ends are clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn chebyshev_interval(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        // P(|X − μ| ≥ kσ) ≤ 1/k² ⇒ choose k = 1/√(1 − confidence).
        let k = (1.0 / (1.0 - confidence)).sqrt();
        let r = k * self.std_dev();
        ((self.mean - r).max(0.0), (self.mean + r).min(1.0))
    }

    /// Clamps the mean into `[0, 1]`. Composition of many estimates can
    /// push the mean slightly outside the unit interval (the paper's VOL
    /// subject reports an estimate `> 1`, §6.2); reports may clamp for
    /// presentation.
    pub fn clamped(self) -> Estimate {
        Estimate {
            mean: self.mean.clamp(0.0, 1.0),
            variance: self.variance,
        }
    }
}

impl Default for Estimate {
    /// The default estimate is [`Estimate::ZERO`].
    fn default() -> Estimate {
        Estimate::ZERO
    }
}

/// Mergeable running moments: Welford's online algorithm in the
/// parallel-merge form of Chan et al., tracking count, mean and the sum
/// of squared deviations `M2`.
///
/// Partial aggregates built independently — per chunk, per round, per
/// thread — combine with [`Moments::merge`] into the same moments a
/// single sequential pass would produce (up to floating-point rounding;
/// merge in a **fixed order** when bit-reproducibility matters, exactly
/// like the samplers reduce strata in index order).
///
/// This is the general mergeable form for real-valued observations —
/// used by the statistical-soundness harness to aggregate run
/// dispersions, and the shape any future non-Bernoulli estimator slots
/// into. The adaptive sampler itself refines hit-or-miss strata with
/// the *integer* degenerate case of this algebra
/// (`StratumAccum` in the sampler module: for 0/1 data the Welford
/// merge collapses to summing hit counts, [`Moments::from_hits`] being
/// the exact closed form), which is what keeps cross-round refinement
/// bit-exact rather than merely rounding-stable.
///
/// # Example
///
/// ```
/// use qcoral_mc::Moments;
///
/// let mut left = Moments::default();
/// let mut right = Moments::default();
/// for x in [1.0, 2.0] { left.push(x); }
/// for x in [3.0, 4.0] { right.push(x); }
/// let all = left.merge(right);
/// assert_eq!(all.count(), 4);
/// assert!((all.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// The empty aggregate (merging it is the identity).
    pub const EMPTY: Moments = Moments {
        n: 0,
        mean: 0.0,
        m2: 0.0,
    };

    /// Folds one observation in (Welford's update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Combines two partial aggregates (Chan et al. parallel merge).
    pub fn merge(self, other: Moments) -> Moments {
        if self.n == 0 {
            return other;
        }
        if other.n == 0 {
            return self;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * (other.n as f64 / n as f64);
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64 / n as f64);
        Moments { n, mean, m2 }
    }

    /// The exact moments of `hits` ones and `n − hits` zeros:
    /// mean `p = hits/n`, `M2 = n·p(1−p)`.
    ///
    /// # Panics
    ///
    /// Panics if `hits > n`.
    pub fn from_hits(hits: u64, n: u64) -> Moments {
        assert!(hits <= n, "more hits than samples");
        if n == 0 {
            return Moments::EMPTY;
        }
        let p = hits as f64 / n as f64;
        Moments {
            n,
            mean: p,
            m2: n as f64 * p * (1.0 - p),
        }
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance `M2/(n−1)` (0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Population variance `M2/n` (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// The estimator of the mean: `mean ± sample_variance/n` — the same
    /// shape hit-or-miss sampling reports (Eq. 2 uses the population
    /// variance; for Bernoulli data at realistic `n` the two agree to
    /// within `1/n`).
    pub fn estimator(&self) -> Estimate {
        if self.n == 0 {
            return Estimate::ZERO;
        }
        Estimate::new(self.mean, self.sample_variance() / self.n as f64)
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} (σ {:.3e})", self.mean, self.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hits_matches_eq2() {
        let e = Estimate::from_hits(2577, 10_000);
        assert!((e.mean - 0.2577).abs() < 1e-12);
        let expected_var = 0.2577 * (1.0 - 0.2577) / 10_000.0;
        assert!((e.variance - expected_var).abs() < 1e-15);
    }

    #[test]
    fn from_hits_extremes_have_zero_variance() {
        assert_eq!(Estimate::from_hits(0, 100).variance, 0.0);
        assert_eq!(Estimate::from_hits(100, 100).variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn from_hits_zero_samples_panics() {
        let _ = Estimate::from_hits(0, 0);
    }

    #[test]
    #[should_panic(expected = "more hits")]
    fn from_hits_overflow_panics() {
        let _ = Estimate::from_hits(5, 3);
    }

    #[test]
    fn sum_adds_means_and_variances() {
        let a = Estimate::new(0.55, 0.0);
        let b = Estimate::new(0.188089, 1.64094e-6);
        let s = a.sum(b);
        assert!((s.mean - 0.738089).abs() < 1e-9);
        assert!((s.variance - 1.64094e-6).abs() < 1e-12);
    }

    #[test]
    fn product_matches_eq7_eq8() {
        // The paper's §4.4 worked example: X̂2,1 (mean .45, var 0) times
        // X̂2,2 (mean .417975, var 8.103406e-6) = X̂2 with mean .188089,
        // var 1.64094e-6.
        let x21 = Estimate::new(0.45, 0.0);
        let x22 = Estimate::new(0.417975, 8.103406e-6);
        let x2 = x21.product(x22);
        assert!((x2.mean - 0.18808875).abs() < 1e-8, "{}", x2.mean);
        assert!((x2.variance - 0.45 * 0.45 * 8.103406e-6).abs() < 1e-12);
    }

    #[test]
    fn product_full_variance_term() {
        let a = Estimate::new(0.5, 0.01);
        let b = Estimate::new(0.25, 0.04);
        let p = a.product(b);
        let expected = 0.25 * 0.04 + 0.0625 * 0.01 + 0.01 * 0.04;
        assert!((p.variance - expected).abs() < 1e-15);
        assert!((p.mean - 0.125).abs() < 1e-15);
    }

    #[test]
    fn scale_squares_variance() {
        let e = Estimate::new(0.5, 0.25).scale(0.5);
        assert_eq!(e.mean, 0.25);
        assert_eq!(e.variance, 0.0625);
    }

    #[test]
    fn clamp_behaviour() {
        let e = Estimate::new(1.0005, 1e-6).clamped();
        assert_eq!(e.mean, 1.0);
        let f = Estimate::new(-0.001, 1e-6).clamped();
        assert_eq!(f.mean, 0.0);
    }

    #[test]
    fn identities() {
        let e = Estimate::new(0.3, 0.01);
        assert_eq!(e.sum(Estimate::ZERO), e);
        assert_eq!(e.product(Estimate::ONE), e);
        assert_eq!(e.product(Estimate::ZERO), Estimate::ZERO);
    }

    #[test]
    fn chebyshev_interval_widens_with_confidence() {
        let e = Estimate::new(0.5, 0.0001); // σ = 0.01
        let (l90, h90) = e.chebyshev_interval(0.9);
        let (l99, h99) = e.chebyshev_interval(0.99);
        assert!(l99 < l90 && h99 > h90);
        assert!(l90 < 0.5 && h90 > 0.5);
        // k = √10 ≈ 3.162 at 90%: radius ≈ 0.0316.
        assert!((h90 - 0.5 - 0.0316).abs() < 1e-3);
        // Zero-variance estimates collapse to a point.
        let exact = Estimate::new(0.25, 0.0);
        assert_eq!(exact.chebyshev_interval(0.999), (0.25, 0.25));
        // Clamping to the unit interval.
        let near_one = Estimate::new(0.999, 0.01);
        assert_eq!(near_one.chebyshev_interval(0.9).1, 1.0);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn chebyshev_rejects_bad_confidence() {
        let _ = Estimate::new(0.5, 0.1).chebyshev_interval(1.0);
    }

    #[test]
    fn display_shows_mean_and_sigma() {
        let s = Estimate::new(0.25, 0.0001).to_string();
        assert!(s.contains("0.250000"));
        assert!(s.contains("1.000e-2"));
    }

    #[test]
    fn moments_merge_matches_sequential() {
        let xs = [0.5, -1.25, 3.0, 0.0, 2.5, -0.75, 1.0];
        let mut seq = Moments::default();
        for &x in &xs {
            seq.push(x);
        }
        let (a, b) = xs.split_at(3);
        let mut left = Moments::default();
        let mut right = Moments::default();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        let merged = left.merge(right);
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn moments_merge_identity_and_empty() {
        let mut m = Moments::default();
        m.push(2.0);
        m.push(4.0);
        assert_eq!(m.merge(Moments::EMPTY), m);
        assert_eq!(Moments::EMPTY.merge(m), m);
        assert_eq!(Moments::EMPTY.estimator(), Estimate::ZERO);
    }

    #[test]
    fn moments_from_hits_is_exact() {
        // 3 ones and 5 zeros, pushed one by one, equals the closed form.
        let mut seq = Moments::default();
        for _ in 0..3 {
            seq.push(1.0);
        }
        for _ in 0..5 {
            seq.push(0.0);
        }
        let closed = Moments::from_hits(3, 8);
        assert_eq!(closed.count(), 8);
        assert!((closed.mean() - seq.mean()).abs() < 1e-12);
        assert!((closed.population_variance() - seq.population_variance()).abs() < 1e-12);
        // And refinement merges exactly: (3/8) ⊕ (2/4) = 5/12.
        let merged = closed.merge(Moments::from_hits(2, 4));
        let direct = Moments::from_hits(5, 12);
        assert_eq!(merged.count(), direct.count());
        assert!((merged.mean() - direct.mean()).abs() < 1e-12);
        assert!((merged.population_variance() - direct.population_variance()).abs() < 1e-12);
    }

    #[test]
    fn moments_estimator_tracks_hit_or_miss_shape() {
        let m = Moments::from_hits(2500, 10_000);
        let e = m.estimator();
        assert!((e.mean - 0.25).abs() < 1e-12);
        // Sample variance /n vs Eq. 2's population variance /n: equal to
        // within the n/(n−1) correction.
        let eq2 = Estimate::from_hits(2500, 10_000);
        assert!((e.variance - eq2.variance).abs() < eq2.variance / 1000.0);
    }
}
