//! Statistical estimates and the paper's composition algebra.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A statistical estimator summarized by its expected value and variance.
///
/// Produced by hit-or-miss sampling (Eq. 2) and composed with the rules of
/// §4: [`Estimate::sum`] for disjoint path conditions (Eq. 5–6) and
/// [`Estimate::product`] for independent conjuncts (Eq. 7–8).
///
/// # Example
///
/// ```
/// use qcoral_mc::Estimate;
///
/// let a = Estimate::from_hits(550, 1000);
/// let b = Estimate::from_hits(190, 1000);
/// let both = a.sum(b); // disjoint events
/// assert!((both.mean - 0.74).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Expected value of the estimator.
    pub mean: f64,
    /// Variance of the estimator (an upper bound after disjoint-sum
    /// composition, per Theorem 1).
    pub variance: f64,
}

impl Estimate {
    /// The zero estimate (probability 0, no uncertainty).
    pub const ZERO: Estimate = Estimate {
        mean: 0.0,
        variance: 0.0,
    };

    /// The unit estimate (probability 1, no uncertainty) — the value of an
    /// ICP *inner* box, where sampling is unnecessary (§3.3).
    pub const ONE: Estimate = Estimate {
        mean: 1.0,
        variance: 0.0,
    };

    /// Creates an estimate with the given mean and variance.
    ///
    /// # Panics
    ///
    /// Panics if the variance is negative or either value is NaN.
    pub fn new(mean: f64, variance: f64) -> Estimate {
        assert!(
            !mean.is_nan() && !variance.is_nan() && variance >= 0.0,
            "invalid estimate (mean {mean}, variance {variance})"
        );
        Estimate { mean, variance }
    }

    /// The hit-or-miss estimator of Eq. 2: mean `hits/n`, variance
    /// `x̄(1−x̄)/n` (binomial).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hits > n`.
    pub fn from_hits(hits: u64, n: u64) -> Estimate {
        assert!(n > 0, "hit-or-miss needs at least one sample");
        assert!(hits <= n, "more hits than samples");
        let mean = hits as f64 / n as f64;
        Estimate {
            mean,
            variance: mean * (1.0 - mean) / n as f64,
        }
    }

    /// Standard deviation `sqrt(variance)` — the paper reports σ, which is
    /// in the same unit scale as the estimate (§6.2).
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Composition for *disjoint* events (paper Eq. 4–6, Theorem 1): the
    /// means add exactly; the summed variance is a sound *upper bound*
    /// because the covariance of indicator estimators of disjoint events
    /// is non-positive.
    ///
    /// The same formula is exact when the two estimators are independent,
    /// which is how stratified sampling combines strata (Eq. 3, with the
    /// weights already folded in by [`Estimate::scale`]).
    pub fn sum(self, other: Estimate) -> Estimate {
        Estimate {
            mean: self.mean + other.mean,
            variance: self.variance + other.variance,
        }
    }

    /// Composition for *independent* events (paper Eq. 7–8): used for the
    /// conjunction of constraints over disjoint variable sets.
    ///
    /// `E[XY] = E[X]E[Y]`,
    /// `Var[XY] = E[X]²Var[Y] + E[Y]²Var[X] + Var[X]Var[Y]`.
    pub fn product(self, other: Estimate) -> Estimate {
        Estimate {
            mean: self.mean * other.mean,
            variance: self.mean * self.mean * other.variance
                + other.mean * other.mean * self.variance
                + self.variance * other.variance,
        }
    }

    /// Scales the estimator by a constant weight: `E[wX] = w·E[X]`,
    /// `Var[wX] = w²·Var[X]`. Used to weight strata by their relative size
    /// (Eq. 3).
    pub fn scale(self, w: f64) -> Estimate {
        Estimate {
            mean: w * self.mean,
            variance: w * w * self.variance,
        }
    }

    /// A Chebyshev confidence interval: the estimated quantity lies in
    /// the returned `(lo, hi)` with probability at least `confidence`
    /// (the paper suggests exactly this use of the variance: "such
    /// uncertainty could be used to quantify the probability the real
    /// value belongs to an interval, for example by using Chebyshev's
    /// inequality", §6.2). Ends are clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    pub fn chebyshev_interval(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        // P(|X − μ| ≥ kσ) ≤ 1/k² ⇒ choose k = 1/√(1 − confidence).
        let k = (1.0 / (1.0 - confidence)).sqrt();
        let r = k * self.std_dev();
        ((self.mean - r).max(0.0), (self.mean + r).min(1.0))
    }

    /// Clamps the mean into `[0, 1]`. Composition of many estimates can
    /// push the mean slightly outside the unit interval (the paper's VOL
    /// subject reports an estimate `> 1`, §6.2); reports may clamp for
    /// presentation.
    pub fn clamped(self) -> Estimate {
        Estimate {
            mean: self.mean.clamp(0.0, 1.0),
            variance: self.variance,
        }
    }
}

impl Default for Estimate {
    /// The default estimate is [`Estimate::ZERO`].
    fn default() -> Estimate {
        Estimate::ZERO
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} (σ {:.3e})", self.mean, self.std_dev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_hits_matches_eq2() {
        let e = Estimate::from_hits(2577, 10_000);
        assert!((e.mean - 0.2577).abs() < 1e-12);
        let expected_var = 0.2577 * (1.0 - 0.2577) / 10_000.0;
        assert!((e.variance - expected_var).abs() < 1e-15);
    }

    #[test]
    fn from_hits_extremes_have_zero_variance() {
        assert_eq!(Estimate::from_hits(0, 100).variance, 0.0);
        assert_eq!(Estimate::from_hits(100, 100).variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn from_hits_zero_samples_panics() {
        let _ = Estimate::from_hits(0, 0);
    }

    #[test]
    #[should_panic(expected = "more hits")]
    fn from_hits_overflow_panics() {
        let _ = Estimate::from_hits(5, 3);
    }

    #[test]
    fn sum_adds_means_and_variances() {
        let a = Estimate::new(0.55, 0.0);
        let b = Estimate::new(0.188089, 1.64094e-6);
        let s = a.sum(b);
        assert!((s.mean - 0.738089).abs() < 1e-9);
        assert!((s.variance - 1.64094e-6).abs() < 1e-12);
    }

    #[test]
    fn product_matches_eq7_eq8() {
        // The paper's §4.4 worked example: X̂2,1 (mean .45, var 0) times
        // X̂2,2 (mean .417975, var 8.103406e-6) = X̂2 with mean .188089,
        // var 1.64094e-6.
        let x21 = Estimate::new(0.45, 0.0);
        let x22 = Estimate::new(0.417975, 8.103406e-6);
        let x2 = x21.product(x22);
        assert!((x2.mean - 0.18808875).abs() < 1e-8, "{}", x2.mean);
        assert!((x2.variance - 0.45 * 0.45 * 8.103406e-6).abs() < 1e-12);
    }

    #[test]
    fn product_full_variance_term() {
        let a = Estimate::new(0.5, 0.01);
        let b = Estimate::new(0.25, 0.04);
        let p = a.product(b);
        let expected = 0.25 * 0.04 + 0.0625 * 0.01 + 0.01 * 0.04;
        assert!((p.variance - expected).abs() < 1e-15);
        assert!((p.mean - 0.125).abs() < 1e-15);
    }

    #[test]
    fn scale_squares_variance() {
        let e = Estimate::new(0.5, 0.25).scale(0.5);
        assert_eq!(e.mean, 0.25);
        assert_eq!(e.variance, 0.0625);
    }

    #[test]
    fn clamp_behaviour() {
        let e = Estimate::new(1.0005, 1e-6).clamped();
        assert_eq!(e.mean, 1.0);
        let f = Estimate::new(-0.001, 1e-6).clamped();
        assert_eq!(f.mean, 0.0);
    }

    #[test]
    fn identities() {
        let e = Estimate::new(0.3, 0.01);
        assert_eq!(e.sum(Estimate::ZERO), e);
        assert_eq!(e.product(Estimate::ONE), e);
        assert_eq!(e.product(Estimate::ZERO), Estimate::ZERO);
    }

    #[test]
    fn chebyshev_interval_widens_with_confidence() {
        let e = Estimate::new(0.5, 0.0001); // σ = 0.01
        let (l90, h90) = e.chebyshev_interval(0.9);
        let (l99, h99) = e.chebyshev_interval(0.99);
        assert!(l99 < l90 && h99 > h90);
        assert!(l90 < 0.5 && h90 > 0.5);
        // k = √10 ≈ 3.162 at 90%: radius ≈ 0.0316.
        assert!((h90 - 0.5 - 0.0316).abs() < 1e-3);
        // Zero-variance estimates collapse to a point.
        let exact = Estimate::new(0.25, 0.0);
        assert_eq!(exact.chebyshev_interval(0.999), (0.25, 0.25));
        // Clamping to the unit interval.
        let near_one = Estimate::new(0.999, 0.01);
        assert_eq!(near_one.chebyshev_interval(0.9).1, 1.0);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn chebyshev_rejects_bad_confidence() {
        let _ = Estimate::new(0.5, 0.1).chebyshev_interval(1.0);
    }

    #[test]
    fn display_shows_mean_and_sigma() {
        let s = Estimate::new(0.25, 0.0001).to_string();
        assert!(s.contains("0.250000"));
        assert!(s.contains("1.000e-2"));
    }
}
