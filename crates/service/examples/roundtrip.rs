//! In-process server/client round trip, showing the cross-run factor
//! cache at work: the same query answered cold, then warm (zero new
//! pavings, zero new samples, bit-identical estimate).
//!
//! Run with `cargo run -p qcoral-service --example roundtrip`.

use qcoral::Options;
use qcoral_service::{Client, Server, ServiceConfig};

fn main() {
    let server = Server::start(ServiceConfig::default()).expect("bind loopback");
    println!("server on {}", server.addr());
    let mut client = Client::connect(server.addr()).expect("connect");

    let source = "var altitude in [0, 20000];
                  var headFlap in [-10, 10];
                  var tailFlap in [-10, 10];
                  pc altitude > 9000;
                  pc altitude <= 9000 && sin(headFlap * tailFlap) > 0.25;";
    let options = Options::default().with_samples(20_000);

    let cold = client
        .analyze_system(source, options.clone(), None)
        .expect("cold query");
    println!(
        "cold: mean={:.6} pavings={} samples={} store_hits={}",
        cold.report.estimate.mean,
        cold.report.stats.pavings,
        cold.report.stats.samples_drawn,
        cold.report.stats.factor_store_hits,
    );

    let warm = client
        .analyze_system(source, options, None)
        .expect("warm query");
    println!(
        "warm: mean={:.6} pavings={} samples={} store_hits={}",
        warm.report.estimate.mean,
        warm.report.stats.pavings,
        warm.report.stats.samples_drawn,
        warm.report.stats.factor_store_hits,
    );

    assert_eq!(cold.report.estimate, warm.report.estimate);
    assert_eq!(warm.report.stats.pavings, 0);
    assert_eq!(warm.report.stats.samples_drawn, 0);

    let status = client.status().expect("status");
    println!(
        "status: served={} store_entries={} hits={}",
        status.requests_served, status.store_entries, status.store_hits
    );
    server.shutdown();
}
