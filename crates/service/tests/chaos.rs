//! Deterministic chaos suite: drives loopback servers (and the bare
//! scheduler/store) through injected faults and asserts the service's
//! core promises hold under every one of them:
//!
//! * no fault sequence yields a torn snapshot that loads;
//! * a recovered warm answer is bit-for-bit identical to recomputation;
//! * deadline-exceeded requests come back as *flagged partial reports*,
//!   not errors or hangs;
//! * the server neither deadlocks nor leaks a worker.
//!
//! Compiled only under `--features failpoints`; the failpoint registry
//! is process-global, so every test serializes through [`lock`] and
//! starts from a clean registry.

#![cfg(feature = "failpoints")]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use qcoral::Options;
use qcoral_failpoints::{configure, reset, stats, Plan};
use qcoral_service::scheduler::Scheduler;
use qcoral_service::store::wal_path;
use qcoral_service::{Client, PersistentStore, RetryPolicy, Server, ServiceConfig};

/// Serializes tests (the failpoint registry and the WAL failure counter
/// are process-global) and guarantees each starts with no planted
/// faults. The guard resets again on drop so a panicking test cannot
/// leak armed failpoints into the next one.
fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    reset();
    guard
}

struct ResetOnDrop;
impl Drop for ResetOnDrop {
    fn drop(&mut self) {
        reset();
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qcoral-chaos-{tag}-{}.json", std::process::id()))
}

fn clean(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(wal_path(path));
    let _ = std::fs::remove_file(path.with_extension("tmp"));
}

fn start(cfg: ServiceConfig) -> (Server, Client) {
    let server = Server::start(cfg).expect("server starts");
    let client = Client::connect(server.addr()).expect("client connects");
    (server, client)
}

const SOURCE: &str = "var x in [0, 1]; var y in [0, 1]; pc x < 0.5 && sin(y) > 0.25;";

fn opts() -> Options {
    Options::default().with_samples(4_000)
}

/// A crash between the WAL append and the next snapshot: the snapshot
/// rename is made to fail, the process "dies" (server dropped without a
/// graceful save), and a fresh server must recover the estimates from
/// the WAL — bit-identically.
#[test]
fn snapshot_rename_failure_recovers_from_wal_bit_identically() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let snapshot = temp_path("rename-fail");
    clean(&snapshot);

    // Every snapshot attempt fails at the rename; only the WAL persists.
    configure("store.snapshot.rename", Plan::FirstK(u64::MAX));
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg.clone());
    let cold = client
        .analyze_system(SOURCE, opts(), None)
        .expect("cold query");
    assert!(cold.report.stats.samples_drawn > 0, "cold run samples");
    // Graceful shutdown tries a final save — injected to fail too.
    server.shutdown();
    assert!(
        !snapshot.exists(),
        "no snapshot should have survived the injected rename failures"
    );
    assert!(
        wal_path(&snapshot).exists(),
        "the WAL is the only persisted artifact"
    );

    // Restart without faults: recovery must replay the WAL.
    reset();
    let (server2, mut client2) = start(cfg);
    let health = client2.health().expect("health");
    assert!(
        health.factor_store_recovered,
        "WAL replay counts as recovery"
    );
    assert!(health.recovery.wal_replayed_entries > 0, "entries replayed");
    assert_eq!(health.recovery.wal_corrupt_entries, 0, "clean WAL, no loss");
    assert_eq!(health.recovery.snapshot_entries, 0, "no snapshot existed");
    let warm = client2.analyze_system(SOURCE, opts(), None).expect("warm");
    assert_eq!(warm.report.stats.samples_drawn, 0, "fully warm from WAL");
    assert_eq!(
        warm.report.estimate, cold.report.estimate,
        "recovered answer is bit-identical"
    );
    server2.shutdown();
    clean(&snapshot);
}

/// WAL appends failing must not corrupt anything: the snapshot path
/// still persists every estimate, and the failure count is surfaced.
#[test]
fn wal_append_failures_degrade_to_snapshot_only_durability() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let snapshot = temp_path("wal-fail");
    clean(&snapshot);

    configure("store.wal.append", Plan::FirstK(u64::MAX));
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg.clone());
    let cold = client
        .analyze_system(SOURCE, opts(), None)
        .expect("cold query");
    let health = client.health().expect("health");
    assert!(health.wal_append_failures > 0, "append failures surfaced");
    server.shutdown();
    assert!(snapshot.exists(), "graceful shutdown snapshot still lands");

    reset();
    let (server2, mut client2) = start(cfg);
    let health = client2.health().expect("health");
    assert!(health.factor_store_recovered);
    assert!(health.recovery.snapshot_entries > 0, "snapshot recovered");
    assert!(!health.recovery.lossy(), "nothing was silently dropped");
    let warm = client2.analyze_system(SOURCE, opts(), None).expect("warm");
    assert_eq!(warm.report.stats.samples_drawn, 0);
    assert_eq!(warm.report.estimate, cold.report.estimate);
    server2.shutdown();
    clean(&snapshot);
}

/// Flipping bytes in a stored snapshot must never yield a loadable torn
/// state: per-entry checksums skip (and count) exactly the damaged
/// entries, and the server keeps working either way.
#[test]
fn corrupted_snapshots_salvage_surviving_entries_never_crash() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let snapshot = temp_path("corrupt");
    clean(&snapshot);
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg.clone());
    client
        .analyze_system(SOURCE, opts(), None)
        .expect("seed the snapshot");
    server.shutdown();
    let pristine = std::fs::read_to_string(&snapshot).expect("snapshot exists");

    // Damage the document at many byte positions (JSON structure breaks,
    // checksum mismatches, truncations): every variant must either
    // salvage per-entry or start cold — never crash, never load garbage.
    let variants: Vec<String> = vec![
        pristine.replace("\"crc\":", "\"crc\": 1, \"x\":"),
        pristine[..pristine.len() / 2].to_string(),
        pristine.replace(['1', '3'], "2"),
        format!("{pristine}garbage"),
        "{\"version\": 2, \"entries\": [".to_string(),
    ];
    for (i, text) in variants.iter().enumerate() {
        std::fs::write(&snapshot, text).unwrap();
        let store = PersistentStore::open(Some(snapshot.clone()), 4096);
        let report = store.recovery_report();
        let salvaged = report.snapshot_entries;
        let dropped = report.snapshot_corrupt_entries;
        // Whatever was salvaged must be usable; re-attach via a server
        // and confirm it still answers.
        drop(store);
        let (server, mut client) = start(cfg.clone());
        let r = client
            .analyze_system(SOURCE, opts(), None)
            .unwrap_or_else(|e| panic!("variant {i}: server broken after corruption: {e}"));
        assert!(
            r.report.estimate.mean.is_finite(),
            "variant {i}: estimate must stay finite (salvaged {salvaged}, dropped {dropped})"
        );
        server.shutdown();
    }
    clean(&snapshot);
}

/// A torn WAL tail (crash mid-append) is truncated; intact lines before
/// it still replay.
#[test]
fn torn_wal_tail_is_truncated_and_prefix_replays() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let snapshot = temp_path("torn-wal");
    clean(&snapshot);

    // Build a WAL by failing all snapshots, then tear its tail.
    configure("store.snapshot.rename", Plan::FirstK(u64::MAX));
    let cfg = ServiceConfig {
        snapshot: Some(snapshot.clone()),
        ..ServiceConfig::default()
    };
    let (server, mut client) = start(cfg.clone());
    let cold = client.analyze_system(SOURCE, opts(), None).expect("cold");
    server.shutdown();
    reset();

    let wal = wal_path(&snapshot);
    let mut bytes = std::fs::read(&wal).expect("wal exists");
    let intact_lines = bytes.iter().filter(|&&b| b == b'\n').count();
    assert!(intact_lines > 0, "need at least one complete WAL line");
    // Simulate a crash mid-append: half of another record, no newline.
    bytes.extend_from_slice(b"{\"entry\": {\"opts_fp\": 12");
    std::fs::write(&wal, &bytes).unwrap();

    let store = PersistentStore::open(Some(snapshot.clone()), 4096);
    let report = store.recovery_report().clone();
    assert!(report.wal_torn_tail, "torn tail detected");
    assert_eq!(report.wal_replayed_entries as usize, intact_lines);
    assert_eq!(report.wal_corrupt_entries, 0, "prefix fully intact");
    let truncated = std::fs::read(&wal).unwrap();
    assert_eq!(
        truncated.last().copied(),
        Some(b'\n'),
        "tail physically truncated to a record boundary"
    );
    drop(store);

    // The recovered prefix answers warm and bit-identically.
    let (server2, mut client2) = start(cfg);
    let warm = client2.analyze_system(SOURCE, opts(), None).expect("warm");
    assert_eq!(warm.report.stats.samples_drawn, 0);
    assert_eq!(warm.report.estimate, cold.report.estimate);
    server2.shutdown();
    clean(&snapshot);
}

/// Mid-batch worker panics: the pool must survive, count the blow-ups,
/// and keep executing everything else. (Driven at the scheduler level —
/// the injected panic fires before the job body, so a wire request
/// would never get its response written.)
#[test]
fn worker_panics_mid_batch_do_not_stall_or_leak_workers() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    // Every 3rd job evaluation panics.
    configure("worker.job", Plan::EveryNth(3));
    let sched = Scheduler::start(4, 64, 8, |_| {});
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..30 {
        let done = Arc::clone(&done);
        sched
            .submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("admitted");
    }
    for _ in 0..400 {
        if sched.metrics().served == 30 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let m = sched.metrics();
    // Shutdown returning proves no worker deadlocked on the batch
    // barrier despite panics landing mid-batch.
    sched.shutdown();
    assert_eq!(m.served, 30, "every job accounted for (no hang)");
    assert_eq!(m.panicked, 10, "every 3rd injection panicked");
    assert_eq!(done.load(Ordering::SeqCst), 20, "surviving jobs ran");
    let fired: u64 = stats()
        .iter()
        .filter(|s| s.name == "worker.job")
        .map(|s| s.fired)
        .sum();
    assert_eq!(fired, 10, "failpoint accounting agrees");
}

/// A stuttering transport: the server's response writes keep failing
/// intermittently, severing the connection. The client's seeded-backoff
/// retry must reconnect, resend, and land a bit-identical answer.
#[test]
fn stuttering_socket_is_healed_by_client_retry_bit_identically() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let (server, mut plain) = start(ServiceConfig::default());
    // Baseline without faults.
    let want = plain
        .analyze_system(SOURCE, opts(), None)
        .expect("baseline");

    // Every 2nd response write is dropped and the connection severed.
    configure("wire.write", Plan::EveryNth(2));
    let policy = RetryPolicy {
        retries: 6,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        seed: 7,
    };
    let mut retrying = Client::connect_with(server.addr(), policy).expect("connect");
    for i in 0..4 {
        let got = retrying
            .analyze_system(SOURCE, opts(), None)
            .unwrap_or_else(|e| panic!("attempt {i}: retry should heal the wire: {e}"));
        assert_eq!(
            got.report.estimate, want.report.estimate,
            "attempt {i}: resent request must be bit-identical"
        );
    }
    reset();
    server.shutdown();
}

/// An overload flood against a tiny queue: every request is answered
/// (served or rejected-with-error), nothing hangs, and the server still
/// serves afterwards.
#[test]
fn overload_flood_rejects_fast_and_never_hangs() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 2,
        max_batch: 1,
        ..ServiceConfig::default()
    };
    let (server, _probe) = start(cfg);
    let addr = server.addr();
    let flood: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                // Heavier than the probe so the queue actually fills.
                c.analyze_system(SOURCE, Options::default().with_samples(60_000), None)
            })
        })
        .collect();
    let mut served = 0usize;
    let mut rejected = 0usize;
    for t in flood {
        match t.join().expect("no client panic") {
            Ok(r) => {
                assert!(r.report.estimate.mean.is_finite());
                served += 1;
            }
            Err(e) => {
                assert!(
                    e.to_string().contains("overloaded"),
                    "only overload rejections expected, got: {e}"
                );
                rejected += 1;
            }
        }
    }
    assert_eq!(served + rejected, 8, "every flooded request was answered");
    assert!(served >= 1, "some requests must get through");
    // The server still works after the flood — no leaked/hung worker.
    let mut after = Client::connect(addr).expect("connect after flood");
    let r = after.analyze_system(SOURCE, opts(), None).expect("healthy");
    assert!(r.report.estimate.mean.is_finite());
    let status = after.status().expect("status");
    assert_eq!(status.requests_rejected, rejected as u64);
    server.shutdown();
}

/// Deadline expiry — both while queued (shed by the dispatcher) and
/// mid-analysis (cooperative cancellation) — returns flagged partial
/// reports, never errors, and partial results never poison the store.
#[test]
fn expired_deadlines_yield_flagged_partial_reports() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let (server, mut client) = start(ServiceConfig::default());
    // A deadline of zero expires before any sampling round starts.
    let expired = client
        .analyze_system(SOURCE, opts().with_deadline_ms(0), None)
        .expect("partial report, not an error");
    assert!(expired.report.stats.deadline_exceeded, "flagged partial");
    assert_eq!(expired.report.stats.samples_drawn, 0, "no budget charged");

    // The partial result must not have been cached: a full-budget rerun
    // computes from scratch and matches a never-deadlined baseline.
    let full = client
        .analyze_system(SOURCE, opts(), None)
        .expect("full run");
    assert!(!full.report.stats.deadline_exceeded);
    assert!(
        full.report.stats.samples_drawn > 0,
        "store was not poisoned"
    );
    let (server2, mut client2) = start(ServiceConfig::default());
    let baseline = client2.analyze_system(SOURCE, opts(), None).expect("ref");
    assert_eq!(full.report.estimate, baseline.report.estimate);
    server2.shutdown();

    // A generous deadline is bit-invisible.
    let relaxed = client
        .analyze_system(SOURCE, opts().with_deadline_ms(600_000), None)
        .expect("relaxed");
    assert!(!relaxed.report.stats.deadline_exceeded);
    assert_eq!(relaxed.report.estimate, baseline.report.estimate);
    server.shutdown();
}

/// Queue-level shedding over the wire: with the single worker pinned,
/// zero-deadline requests behind it must be shed by the dispatcher and
/// answered as flagged partials (not hangs, not errors), while an
/// undeadlined request still completes.
#[test]
fn queued_requests_past_deadline_are_shed_with_partial_reports() {
    let _gate = lock();
    let _cleanup = ResetOnDrop;
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 16,
        max_batch: 2,
        ..ServiceConfig::default()
    };
    let (server, _probe) = start(cfg);
    let addr = server.addr();
    // Pin the worker with a slow request.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.analyze_system(SOURCE, Options::default().with_samples(200_000), None)
    });
    std::thread::sleep(Duration::from_millis(50));
    // These expire in the queue while the worker is busy.
    let shed: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.analyze_system(SOURCE, opts().with_deadline_ms(1), None)
            })
        })
        .collect();
    for t in shed {
        let r = t.join().expect("no panic").expect("partial, not error");
        assert!(r.report.stats.deadline_exceeded, "shed → flagged partial");
        assert_eq!(r.report.stats.samples_drawn, 0, "never touched a worker");
    }
    let slow = slow.join().expect("no panic").expect("slow completes");
    assert!(!slow.report.stats.deadline_exceeded);
    let mut c = Client::connect(addr).expect("connect");
    let status = c.status().expect("status");
    assert_eq!(status.requests_shed, 3, "dispatcher counted the sheds");
    server.shutdown();
}
