//! Wire-protocol properties: encode→decode is the identity on every
//! request/response shape, and malformed frames are rejected with
//! errors, never panics or desynchronization.

use std::time::Duration;

use proptest::prelude::*;

use qcoral::{Estimate, Options, Report, Stats};
use qcoral_icp::PaverConfig;
use qcoral_mc::{Allocation, Dist, UsageProfile};
use qcoral_service::wire::{
    decode_request, decode_response, encode_request, encode_response, salvage_id,
};
use qcoral_service::{AnalysisResponse, Op, Outcome, Request, Response, ServerStatus};

/// Characters that stress JSON escaping: quotes, backslashes, control
/// characters, non-ASCII, and syntax the parser must not trip over.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '\n', '\r', '\t', '{', '}', '[', ']', ':', ',', 'é', '😀',
    '\u{7}', ';', '<',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..32)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn arb_options() -> impl Strategy<Value = Options> {
    (
        1u64..1_000_000,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u64..u64::MAX,
        (1usize..64, 0u32..9, 0u64..10_000, 1usize..16),
    )
        .prop_map(
            |(samples, stratified, partition, parallel, seed, (boxes, digits, millis, passes))| {
                let mut o = Options::default().with_samples(samples).with_seed(seed);
                o.stratified = stratified;
                o.partition = partition;
                o.cache = partition;
                o.parallel = parallel;
                o.allocation = match samples % 3 {
                    0 => Allocation::EqualPerStratum,
                    1 => Allocation::Proportional,
                    _ => Allocation::ImportanceAdaptive,
                };
                o.paver = PaverConfig {
                    max_boxes: boxes,
                    precision_digits: digits,
                    time_budget: Duration::from_millis(millis),
                    max_passes: passes,
                };
                o
            },
        )
}

fn arb_profile() -> impl Strategy<Value = Option<UsageProfile>> {
    (0usize..6, -1.0f64..1.0).prop_map(|(n, skew)| match n {
        0 => None,
        1 => Some(UsageProfile::uniform(2)),
        2 => Some(UsageProfile::uniform(2).with_dist(1, Dist::normal(skew, 0.5 + skew.abs()))),
        3 => Some(UsageProfile::uniform(2).with_dist(0, Dist::exponential(1.0 + skew.abs()))),
        4 => Some(
            UsageProfile::uniform(2).with_dist(1, Dist::truncated_normal(skew, 0.25, -2.0, 2.0)),
        ),
        _ => Some(UsageProfile::uniform(2).with_dist(
            1,
            Dist::piecewise(vec![0.0, 0.5, 1.0], vec![1.0 + skew.abs(), 1.0]),
        )),
    })
}

fn arb_named_profile() -> impl Strategy<Value = Option<Vec<qcoral_service::NamedDist>>> {
    (arb_profile(), arb_string()).prop_map(|(p, name)| {
        p.map(|p| {
            (0..p.len())
                .map(|i| qcoral_service::NamedDist {
                    var: format!("{name}_{i}"),
                    dist: p.dist(i).clone(),
                })
                .collect()
        })
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    (
        0u8..3,
        arb_string(),
        arb_options(),
        (arb_profile(), arb_named_profile()),
        0u64..200,
    )
        .prop_map(
            |(kind, source, options, (profile, named), depth)| match kind {
                0 => Op::Status,
                1 => Op::Program {
                    source,
                    options,
                    max_depth: (depth % 2 == 0).then_some(depth),
                    profile: named,
                },
                _ => Op::System {
                    source,
                    options,
                    profile,
                },
            },
        )
}

fn arb_estimate() -> impl Strategy<Value = Estimate> {
    (0.0f64..1.0, 0.0f64..0.1).prop_map(|(mean, variance)| Estimate { mean, variance })
}

fn arb_outcome() -> impl Strategy<Value = Outcome> {
    (
        0u8..3,
        arb_estimate(),
        prop::collection::vec(arb_estimate(), 0..4),
        arb_string(),
        (0u64..999, 0u64..99, 0u64..9_999_999),
    )
        .prop_map(
            |(kind, estimate, per_pc, message, (a, b, nanos))| match kind {
                0 => Outcome::Error { message },
                1 => Outcome::Status(ServerStatus {
                    protocol_version: 1,
                    workers: a,
                    queue_cap: b,
                    max_batch: a % 16,
                    store_entries: b * 3,
                    store_capacity: a + b,
                    store_hits: a,
                    store_misses: b,
                    requests_served: a,
                    requests_rejected: b,
                    requests_shed: b % 7,
                    jobs_panicked: a % 3,
                    batches_dispatched: a / 2,
                    queue_depth: b % 5,
                    inflight: a % 5,
                    backend: if a % 2 == 0 { "bulk" } else { "jit" }.to_string(),
                }),
                _ => Outcome::Report(AnalysisResponse {
                    report: Report {
                        estimate,
                        per_pc,
                        stats: Stats {
                            cache_hits: a,
                            cache_misses: b,
                            samples_drawn: a * b,
                            ..Stats::default()
                        },
                        wall: Duration::new(a, (nanos % 1_000_000_000) as u32),
                        trace: None,
                    },
                    bound_mass: (a % 2 == 0).then_some(estimate),
                    confidence: (b % 2 == 0).then_some(0.75),
                    paths: Some(a),
                    cut_paths: Some(b),
                }),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn requests_round_trip(id in 0u64..u64::MAX, op in arb_op()) {
        let request = Request { id, op };
        let frame = encode_request(&request);
        prop_assert!(frame.ends_with('\n'));
        prop_assert_eq!(frame.matches('\n').count(), 1, "one frame, one line");
        let back = decode_request(&frame).expect("round trip decodes");
        prop_assert_eq!(back, request);
    }

    #[test]
    fn responses_round_trip(id in 0u64..u64::MAX, outcome in arb_outcome()) {
        let response = Response { id, outcome };
        let frame = encode_response(&response);
        prop_assert!(frame.ends_with('\n'));
        prop_assert_eq!(frame.matches('\n').count(), 1, "one frame, one line");
        let back = decode_response(&frame).expect("round trip decodes");
        prop_assert_eq!(back, response);
    }

    /// Mutilating a valid frame must produce an error, not a panic.
    #[test]
    fn truncated_frames_error_not_panic(op in arb_op(), cut in 0usize..200) {
        let frame = encode_request(&Request { id: 1, op });
        let mut cut = cut.min(frame.len().saturating_sub(1));
        while !frame.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = decode_request(&frame[..cut]); // must not panic
    }
}

#[test]
fn malformed_frames_are_rejected() {
    for bad in [
        "",
        "\n",
        "not json\n",
        "{}\n",
        "{\"id\":1}\n",                        // missing op
        "{\"id\":\"x\",\"op\":\"Status\"}\n",  // id not a number
        "{\"id\":1,\"op\":\"Nonsense\"}\n",    // unknown op
        "{\"id\":1,\"op\":{\"System\":{}}}\n", // missing fields
        "[1,2,3]\n",                           // wrong shape
        "{\"id\":1,\"op\":\"Status\"",         // unterminated
    ] {
        assert!(decode_request(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn oversized_frames_are_rejected() {
    let huge = format!(
        "{{\"id\":1,\"op\":{{\"System\":{{\"source\":\"{}\"}}}}}}\n",
        "x".repeat(qcoral_service::wire::MAX_FRAME_BYTES)
    );
    assert!(decode_request(&huge).is_err());
}

#[test]
fn read_frame_reassembles_multibyte_utf8_split_across_chunks() {
    use qcoral_service::wire::{read_frame, FrameRead};
    use std::io::BufReader;
    // A tiny BufReader capacity forces fill_buf boundaries inside the
    // multi-byte characters; the frame must come out intact.
    let frame = "{\"id\":1,\"source\":\"héllo 😀 wörld\"}\nnext";
    for cap in [1, 2, 3, 5] {
        let mut reader = BufReader::with_capacity(cap, std::io::Cursor::new(frame.as_bytes()));
        let mut line = String::new();
        let read = read_frame(&mut reader, &mut line).unwrap();
        assert_eq!(
            line, "{\"id\":1,\"source\":\"héllo 😀 wörld\"}\n",
            "cap {cap}"
        );
        assert_eq!(read, FrameRead::Frame(line.len()));
        // And the stream is positioned after the newline.
        let mut rest = String::new();
        assert_eq!(
            read_frame(&mut reader, &mut rest).unwrap(),
            FrameRead::Frame(4)
        );
        assert_eq!(rest, "next");
        assert_eq!(read_frame(&mut reader, &mut rest).unwrap(), FrameRead::Eof);
    }
}

#[test]
fn read_frame_rejects_invalid_utf8_without_desyncing() {
    use qcoral_service::wire::{read_frame, FrameRead};
    use std::io::BufReader;
    // 0xFF can never appear in UTF-8. The frame must be reported as
    // invalid — not lossily replaced, which would let it parse as JSON
    // with corrupted string content — and the next frame must still
    // decode: the bad line was consumed through its newline.
    let mut stream = b"{\"id\":1,\"source\":\"a\xFFb\"}\n".to_vec();
    stream.extend_from_slice(b"{\"id\":2,\"op\":\"Status\"}\n");
    let mut reader = BufReader::new(std::io::Cursor::new(stream));
    let mut line = String::new();
    assert_eq!(
        read_frame(&mut reader, &mut line).unwrap(),
        FrameRead::NotUtf8
    );
    assert!(line.is_empty(), "no text produced for an invalid frame");
    assert_eq!(
        read_frame(&mut reader, &mut line).unwrap(),
        FrameRead::Frame(line.len())
    );
    let request = decode_request(&line).expect("next frame still decodes");
    assert_eq!(request.id, 2);
}

#[test]
fn salvage_id_recovers_what_it_can() {
    assert_eq!(salvage_id("{\"id\":42,\"op\":\"Nonsense\"}\n"), 42);
    assert_eq!(salvage_id("garbage\n"), 0);
    assert_eq!(salvage_id("{\"op\":\"Status\"}\n"), 0);
}

#[test]
fn unknown_status_fields_do_not_break_decoding() {
    // Forward compatibility: extra fields are ignored, so a newer server
    // can add counters without breaking old clients.
    let line = "{\"id\":7,\"outcome\":{\"Error\":{\"message\":\"m\",\"extra\":[1,2]}}}\n";
    let r = decode_response(line).expect("decodes despite extra field");
    assert_eq!(r.id, 7);
    assert_eq!(
        r.outcome,
        Outcome::Error {
            message: "m".to_string()
        }
    );
}
